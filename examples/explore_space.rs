//! Full design-space exploration with Pareto analysis: evaluate every
//! feasible `(W, code, wake)` configuration of a FIFO in parallel, then
//! print the (area, latency) Pareto front and a balanced recommendation.
//!
//! ```text
//! cargo run --release -p scanguard-explore --example explore_space [design] [threads]
//! ```

use scanguard_explore::{explore, front_of, knee_point, DesignSpec, Objective, SpaceSpec};

fn main() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let design = DesignSpec::parse(&args.next().unwrap_or_else(|| "fifo16x16".into()))?;
    let threads: usize = args
        .next()
        .map(|s| s.parse().map_err(|_| "bad thread count"))
        .transpose()?
        .unwrap_or(4);

    let spec = SpaceSpec::paper(design);
    println!(
        "exploring {} ({} flops): {} points on {threads} threads",
        design.label(),
        design.ff_count(),
        spec.enumerate().len()
    );
    let report = explore(&spec, threads)?;
    println!(
        "{} points evaluated; {} unique builds, {} shared via the cache\n",
        report.points.len(),
        report.cache.misses,
        report.cache.hits
    );

    let objectives = [Objective::AreaOverheadPct, Objective::LatencyNs];
    let front = front_of(&report.points, &objectives);
    println!("(area, latency) Pareto front — the Fig. 9 trade-off curve:");
    for &i in &front {
        let p = &report.points[i];
        println!(
            "  {:<16} W={:<4} {:<14} area +{:>5.1}%  latency {:>6.0} ns  residual {:.3}",
            p.code, p.chains, p.wake, p.area_overhead_pct, p.latency_ns, p.residual_upset_prob
        );
    }

    // A balanced pick across cost *and* reliability axes.
    let all = [
        Objective::AreaOverheadPct,
        Objective::LatencyNs,
        Objective::EnergyNj,
        Objective::ResidualUpsetProb,
    ];
    let full_front = front_of(&report.points, &all);
    if let Some(k) = knee_point(&report.points, &full_front, &all, &[1.0; 4]) {
        let p = &report.points[k];
        println!(
            "\nbalanced recommendation: {} with W={} and {} wake \
             (+{:.1}% area, {:.0} ns, residual {:.3})",
            p.code, p.chains, p.wake, p.area_overhead_pct, p.latency_ns, p.residual_upset_prob
        );
    }
    Ok(())
}
