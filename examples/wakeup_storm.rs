//! The physics end of the story: wake a power-gated domain under
//! different switch activation strategies, watch the RLC rush transient
//! bounce the shared rail, upset retention latches, and see what each
//! mitigation — rush-current reduction (refs [7,8]) vs. the paper's
//! state monitoring — leaves behind.
//!
//! ```text
//! cargo run --release -p scanguard-harness --example wakeup_storm [trials]
//! ```

use scanguard_harness::{ablation_rush, print_table};
use scanguard_power::{PowerNetwork, WakeStrategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(200);

    // Show the raw transients first.
    let net = PowerNetwork::default_120nm();
    println!("wake transients over the default 120nm-class network:");
    for (name, strategy) in [
        ("full bank", WakeStrategy::FullBank),
        ("staggered x8", WakeStrategy::Staggered { groups: 8 }),
        (
            "slow ramp x20",
            WakeStrategy::SlowRamp { ramp_factor: 20.0 },
        ),
    ] {
        let e = strategy.wake(&net);
        println!(
            "  {name:<14} peak rush {:.3} A, rail bounce {:.3} V, wake {:.1} ns",
            e.steps.iter().map(|t| t.peak_current_a).fold(0.0, f64::max),
            e.peak_bounce_v,
            e.wake_time_s * 1e9
        );
    }

    // Then the outcome table over Monte-Carlo wake events on the
    // paper's 80x13 retention array.
    println!("\n{trials} wake events on an 80x13 retention array:");
    let rows = ablation_rush(80, 13, trials, 0x57_0B);
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{:<32} {:>7.3} {:>7} {:>8.2} {:>9.2}",
                r.strategy, r.peak_bounce_v, r.wake_cycles, r.upset_prob, r.residual_prob
            )
        })
        .collect();
    print_table(
        "wake strategy ablation (E7)",
        &format!(
            "{:<32} {:>7} {:>7} {:>8} {:>9}",
            "strategy", "bounceV", "cycles", "upsetP", "residualP"
        ),
        &rendered,
    );
    println!("\nrush-current reduction lowers the upset probability but cannot");
    println!("repair what still flips; the scan-based monitor corrects it.");
    Ok(())
}
