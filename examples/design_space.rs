//! Design-space exploration: sweep the scan-chain count and code choice
//! on a FIFO and print the paper-style cost table (the trade-off the
//! paper's Sec. V analyses).
//!
//! ```text
//! cargo run --release -p scanguard-harness --example design_space [depth] [width]
//! ```

use scanguard_core::{cost_header, CodeChoice};
use scanguard_harness::{cost_sweep, print_table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let depth: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(16);
    let width: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(16);
    let sweep = [4usize, 8, 16];

    for code in [
        CodeChoice::crc16(),
        CodeChoice::hamming7_4(),
        CodeChoice::ExtendedHamming { m: 3 },
    ] {
        let rows = cost_sweep(depth, width, code, &sweep);
        let rendered: Vec<String> = rows.iter().map(ToString::to_string).collect();
        print_table(
            &format!("{depth}x{width} FIFO, {}", code.name()),
            &cost_header(),
            &rendered,
        );
        println!();
    }

    println!("reading guide: latency t = l x T falls as W grows; energy");
    println!("follows latency; area and power climb as more monitor blocks");
    println!("are instantiated — the trade-off of the paper's Fig. 9.");
    Ok(())
}
