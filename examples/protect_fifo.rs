//! The paper's case study end-to-end: the 32x32 FIFO with 80 scan
//! chains of 13 flops (Sec. IV), run through the Fig. 8 testbench with
//! single-error and burst injection.
//!
//! ```text
//! cargo run --release -p scanguard-harness --example protect_fifo [sequences]
//! ```

use scanguard_core::CodeChoice;
use scanguard_harness::{FifoTestbench, InjectionMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sequences: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(20);

    println!("building protected 32x32 FIFO (1040 flops, 80 chains x 13) ...");
    let tb = FifoTestbench::new(32, 32, 80, CodeChoice::hamming7_4())?;
    println!(
        "area: baseline {:.0} um^2, protected {:.0} um^2 (+{:.1}%)",
        tb.design().baseline.total_area_um2,
        tb.design().protected.total_area_um2,
        tb.design().area_overhead_pct()
    );

    println!("\nexperiment 1: one random retention upset per sequence");
    let single = tb.run(sequences, InjectionMode::Single, 0x51);
    println!(
        "  {} sequences: {} reported, {} corrected, {} comparator mismatches",
        single.sequences,
        single.errors_reported,
        single.sequences_recovered,
        single.comparator_mismatches
    );

    println!("\nexperiment 2: clustered burst upsets (2..=4 adjacent chains)");
    let burst = tb.run(sequences, InjectionMode::Burst { max_span: 4 }, 0xB2);
    println!(
        "  {} sequences: {} reported, {} corrected, {} comparator mismatches",
        burst.sequences,
        burst.errors_reported,
        burst.sequences_recovered,
        burst.comparator_mismatches
    );

    println!("\npaper Sec. IV: singles 100% corrected; bursts detected, not corrected.");
    assert_eq!(single.sequences_recovered, single.sequences);
    assert_eq!(single.comparator_mismatches, 0);
    assert!(burst.sequences_recovered < burst.sequences);
    println!("reproduced.");
    Ok(())
}
