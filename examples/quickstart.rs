//! Quickstart: protect a register bank against wake-up corruption.
//!
//! ```text
//! cargo run --release -p scanguard-harness --example quickstart
//! ```
//!
//! Builds a 64-flop design, runs it through the reliability-aware
//! synthesizer (scan insertion + Hamming(7,4) state monitoring), then
//! executes a power-gating sleep/wake sequence in which the rush current
//! flips one retention latch — and shows the monitor detecting and
//! correcting it.

use scanguard_core::{CodeChoice, Synthesizer};
use scanguard_netlist::NetlistBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A conventional design: a 64-bit register bank.
    let mut b = NetlistBuilder::new("bank64");
    for i in 0..64 {
        let d = b.input(&format!("d[{i}]"));
        let (q, _) = b.dff(&format!("r{i}"), d);
        b.output(&format!("q[{i}]"), q);
    }
    let netlist = b.finish()?;

    // 2. The reliability-aware synthesis flow (paper Fig. 4).
    let design = Synthesizer::new(netlist)
        .chains(8)
        .code(CodeChoice::hamming7_4())
        .test_width(4)
        .build()?;
    println!(
        "protected design: {} chains x {} flops",
        design.chains.width(),
        design.chain_len()
    );
    println!(
        "monitor: {} blocks, {} parity-store bits, area overhead {:.1}%",
        design.monitor.groups.len(),
        design.monitor.store_bits,
        design.area_overhead_pct()
    );

    // 3. Sleep, get hit by rush current, wake, recover (paper Fig. 3b).
    let mut rt = design.runtime();
    rt.load_random_state(2024);
    let report = rt.sleep_wake(|sim, chains| {
        // The wake-up transient flips one retention latch.
        sim.flip_retention(chains.chains[3].cells[5]);
        1
    });
    println!(
        "upsets injected: {}, error reported: {}, state recovered: {}",
        report.upsets,
        report.error_observed,
        report.state_intact()
    );
    println!(
        "encode: {:.2} mW over {} cycles; decode: {:.2} mW over {} cycles",
        report.encode.power_mw(design.clock_mhz),
        report.encode.cycles,
        report.decode.power_mw(design.clock_mhz),
        report.decode.cycles
    );
    assert!(report.error_observed && report.state_intact());
    println!("OK: the flipped retention bit was detected and corrected.");
    Ok(())
}
