//! The paper's Sec. V alternative, live: **CRC-16 detection with
//! software recovery** on a computational datapath. The accumulator
//! machine runs a program, checkpoints through a scan dump, sleeps,
//! takes a burst of retention upsets that CRC can only *detect* — and
//! firmware reloads the checkpoint through the manufacturing-test pins,
//! after which the program continues as if nothing happened.
//!
//! ```text
//! cargo run --release -p scanguard-harness --example checkpoint_restore
//! ```

use scanguard_core::{checkpoint, restore, CodeChoice, Synthesizer};
use scanguard_designs::{Datapath, DatapathModel};
use scanguard_netlist::Logic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 8-register, 16-bit accumulator datapath, protected by the
    // cheapest monitor (CRC-16 detection only) + test access for reload.
    let dp = Datapath::generate(8, 16);
    let reg_cells = dp.reg_cells.clone();
    let design = Synthesizer::new(dp.netlist)
        .chains(8)
        .code(CodeChoice::crc16())
        .test_width(4)
        .build()?;
    println!(
        "datapath protected: {:.1}% monitor overhead (CRC-16), {} chains x {}",
        design.area_overhead_pct(),
        design.chains.width(),
        design.chain_len()
    );

    let mut rt = design.runtime();
    let mut model = DatapathModel::new(8, 16);
    // Zero the register file (as a boot loader would).
    for &cell in &reg_cells {
        rt.sim_mut().force_ff(cell, Logic::Zero);
    }
    let drive = |rt: &mut scanguard_core::ProtectedRuntime<'_>,
                 we: bool,
                 li: bool,
                 din: u64,
                 op: u8,
                 addr: usize| {
        let sim = rt.sim_mut();
        sim.set_port_bool("rst", false).unwrap();
        sim.set_port_bool("we", we).unwrap();
        sim.set_port_bool("li", li).unwrap();
        for i in 0..16 {
            sim.set_port_bool(&format!("din[{i}]"), (din >> i) & 1 == 1)
                .unwrap();
        }
        for i in 0..2 {
            sim.set_port_bool(&format!("op[{i}]"), (op >> i) & 1 == 1)
                .unwrap();
        }
        for i in 0..3 {
            sim.set_port_bool(&format!("addr[{i}]"), (addr >> i) & 1 == 1)
                .unwrap();
        }
        rt.functional_step();
    };
    let read_acc = |rt: &mut scanguard_core::ProtectedRuntime<'_>| -> u64 {
        let sim = rt.sim_mut();
        sim.settle();
        (0..16)
            .filter(|i| sim.port_value(&format!("acc[{i}]")).unwrap() == Logic::One)
            .fold(0, |a, i| a | (1 << i))
    };

    // Phase 1: run a little program (accumulate a pattern).
    rt.sim_mut().set_port_bool("rst", true)?;
    rt.functional_step();
    // (we, li, din, op, addr)
    let program: [(bool, bool, u64, u8, usize); 6] = [
        (false, true, 0x1234, 0, 0), // acc <- 0x1234
        (true, false, 0, 0, 1),      // r1 <- acc
        (false, true, 0x0F0F, 0, 0), // acc <- 0x0F0F
        (false, false, 0, 1, 1),     // acc += r1
        (true, false, 0, 0, 2),      // r2 <- acc
        (false, false, 0, 2, 1),     // acc ^= r1
    ];
    for &(we, li, din, op, addr) in &program {
        drive(&mut rt, we, li, din, op, addr);
        model.tick(false, we, li, din, op, addr);
    }
    let acc_before = read_acc(&mut rt);
    assert_eq!(acc_before, model.acc(), "netlist tracks golden model");
    println!("program ran: acc = {acc_before:#06x}");

    // Phase 2: checkpoint, sleep, get hit by a burst.
    let cp = checkpoint(&mut rt);
    println!(
        "checkpoint: {} cycles, {:.2} nJ",
        cp.dump_cycles,
        cp.dump_energy.energy_nj()
    );
    let rep = rt.sleep_wake(|sim, chains| {
        for c in 2..5 {
            sim.flip_retention(chains.chains[c].cells[3]);
        }
        3
    });
    println!(
        "wake-up: {} upsets, detected = {}, state intact = {}",
        rep.upsets,
        rep.error_observed,
        rep.state_intact()
    );
    assert!(rep.error_observed && !rep.state_intact());

    // Phase 3: firmware reloads the checkpoint through the test pins.
    let rr = restore(&mut rt, &cp);
    println!(
        "software reload: {} cycles, {:.2} nJ",
        rr.cycles,
        rr.energy.energy_nj()
    );
    let acc_after = read_acc(&mut rt);
    assert_eq!(acc_after, acc_before, "state fully restored");

    // Phase 4: the program continues correctly.
    drive(&mut rt, false, false, 0, 1, 2);
    model.tick(false, false, false, 0, 1, 2);
    assert_eq!(read_acc(&mut rt), model.acc(), "execution resumes cleanly");
    println!("program resumed: acc = {:#06x}. recovered.", model.acc());
    Ok(())
}
