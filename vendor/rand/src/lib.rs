//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace ships its own tiny `rand`: a [`SmallRng`]
//! (splitmix64-seeded xorshift64*), the [`Rng`]/[`SeedableRng`] traits,
//! uniform `gen_range` over integer and float ranges, and `gen` for the
//! primitive types the workspace samples. The streams are deterministic
//! per seed, which is all the experiments require (they never compare
//! streams against upstream `rand`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampling of a primitive from raw generator bits (the subset of
/// `rand`'s `Standard` distribution the workspace uses).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + v) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (low as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let u = f64::sample(rng);
        low + u * (high - low)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_range(rng, low, f64::max(high, low + f64::EPSILON))
    }
}

/// Range argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`StandardSample`] type.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xorshift64* over a
    /// splitmix64-initialised state). Statistically adequate for
    /// Monte-Carlo experiments; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let mut state = super::splitmix64(&mut s);
            if state == 0 {
                state = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
