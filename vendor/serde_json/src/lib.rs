//! Offline JSON subset of the `serde_json` API, over the local
//! mini-serde [`Value`] model: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and [`to_value`]/[`from_value`].
//!
//! Rendering is deterministic: struct members appear in declaration
//! order (objects are ordered association lists), map members in sorted
//! key order, and float formatting is Rust's shortest round-trip
//! `Display`. Byte-identical output for equal inputs is a documented
//! guarantee the workspace's determinism tests rely on.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
pub use serde::{Number, Value};

/// Encoding/decoding failure.
pub type Error = serde::Error;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns [`Error`] for values outside the JSON data model
/// (non-finite floats).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] for values outside the JSON data model.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Lowers any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

/// Parses JSON text into any deserializable value.
///
/// # Errors
///
/// Returns [`Error`] for malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// --------------------------------------------------------------- writing

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, n)?,
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) -> Result<(), Error> {
    match *n {
        Number::U(u) => {
            let _ = write!(out, "{u}");
        }
        Number::I(i) => {
            let _ = write!(out, "{i}");
        }
        Number::F(f) => {
            if !f.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            if f == f.trunc() && f.abs() < 1e15 {
                // Match serde_json's integral-float rendering ("1.0").
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at offset {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::custom("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(entries)),
                _ => return Err(Error::custom("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                                .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                        } else {
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error::custom("invalid escape")),
                },
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::custom("truncated \\u"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a\"b".into())),
            ("n".into(), Value::Num(Number::U(42))),
            ("f".into(), Value::Num(Number::F(1.5))),
            (
                "arr".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let s = to_string(&Value::Num(Number::F(40.0))).unwrap();
        assert_eq!(s, "40.0");
    }

    #[test]
    fn pretty_has_indentation() {
        let v = Value::Object(vec![("a".into(), Value::Num(Number::U(1)))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn typed_roundtrip() {
        let rows: Vec<(String, u32)> = vec![("x".into(), 1), ("y".into(), 2)];
        let s = to_string(&rows).unwrap();
        let back: Vec<(String, u32)> = from_str(&s).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#""aA\n\t\"\\ é""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\n\t\"\\ é");
    }
}
