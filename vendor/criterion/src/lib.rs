//! Offline subset of the `criterion` API.
//!
//! The build environment has no registry access, so this workspace ships
//! a miniature benchmark harness with criterion's surface: groups,
//! `bench_function`, `iter` / `iter_batched`, throughput annotation, and
//! the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! simple calibrated loop (median of a few samples), printed as
//! time/iteration plus derived throughput — adequate for relative
//! comparisons, with none of criterion's statistics.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(120);
/// Samples per benchmark (median reported).
const SAMPLES: usize = 5;

/// How `iter_batched` groups setup outputs (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit the target time?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = throughput.map_or(String::new(), |t| match t {
        Throughput::Elements(n) => {
            format!("  ({:.2} Melem/s)", n as f64 / ns * 1e3)
        }
        Throughput::Bytes(n) => {
            format!("  ({:.2} MiB/s)", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
    });
    println!("{name:<48} {:>12}/iter{rate}", human_time(ns));
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, b.ns_per_iter, None);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility (sampling here is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(
            &format!("{}/{name}", self.name),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function over `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(1)).sample_size(10);
        g.bench_function("noop", |b| b.iter(|| 1u32 + 1));
        g.finish();
    }
}
