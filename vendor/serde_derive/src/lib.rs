//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace's local mini-serde.
//!
//! The build environment has no registry access, so `syn`/`quote` are
//! unavailable; this macro parses the `proc_macro::TokenStream` by hand.
//! It supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields, tuple structs (newtype and wider), unit
//!   structs;
//! * enums whose variants are unit, named-field, or tuple-shaped,
//!   serialized with serde's externally-tagged representation.
//!
//! `#[serde(...)]` attributes are not supported (none are used in this
//! workspace); generic parameters are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

#[derive(Debug)]
struct Input {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (value-model based).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-model based).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    // Skip outer attributes and visibility until the `struct` / `enum`
    // keyword.
    let kind = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                let _ = it.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub` (possibly followed by a `(crate)` group) or other
                // modifiers: skip; the `(...)` group is consumed by the
                // next loop turn only if it is a Group, so peek.
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = it.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => panic!("derive input without struct/enum keyword"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    // Reject generics: none of the workspace's serde types are generic.
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("mini serde_derive does not support generic types ({name})");
        }
    }
    let shape = if kind == "struct" {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            _ => Shape::Struct(Fields::Unit),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, got {other:?}"),
        }
    };
    Input { name, shape }
}

/// Parses `name: Type, ...` field lists, skipping attributes and
/// visibility, and commas nested inside `<...>` generic arguments.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip leading attributes / visibility.
        let name = loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = it.next();
                }
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s == "pub" {
                        if let Some(TokenTree::Group(g)) = it.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                let _ = it.next();
                            }
                        }
                        continue;
                    }
                    break Some(s);
                }
                Some(other) => panic!("unexpected token in field list: {other:?}"),
                None => break None,
            }
        };
        let Some(name) = name else { break };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field {name}, got {other:?}"),
        }
        fields.push(name);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle: i32 = 0;
        for tok in it.by_ref() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Counts tuple-struct fields: top-level commas (outside `<...>`) plus
/// one, zero for an empty stream.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut any = false;
    let mut angle: i32 = 0;
    for tok in stream {
        any = true;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => count += 1,
                _ => {}
            }
        }
    }
    if !any {
        0
    } else {
        count + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip attributes (e.g. `#[default]`).
        let name = loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    let _ = it.next();
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => panic!("unexpected token in enum body: {other:?}"),
                None => break None,
            }
        };
        let Some(name) = name else { break };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                let _ = it.next();
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                let _ = it.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Skip an optional discriminant and the trailing comma.
        for tok in it.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_owned(),
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(x0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{items}]))]),",
                            items = items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Unit) => format!("Ok({name})"),
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if arr.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::obj_field(obj, \"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 Ok({name} {{ {items} }})",
                items = items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(v, fields)| match fields {
                    Fields::Tuple(1) => format!(
                        "\"{v}\" => return Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                    ),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        format!(
                            "\"{v}\" => {{\n\
                                 let arr = inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{v}\"))?;\n\
                                 if arr.len() != {n} {{ return Err(::serde::Error::custom(\"wrong arity for {name}::{v}\")); }}\n\
                                 return Ok({name}::{v}({items}));\n\
                             }}",
                            items = items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::obj_field(obj, \"{f}\"))?"
                                )
                            })
                            .collect();
                        format!(
                            "\"{v}\" => {{\n\
                                 let obj = inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}::{v}\"))?;\n\
                                 return Ok({name}::{v} {{ {items} }});\n\
                             }}",
                            items = items.join(", ")
                        )
                    }
                    Fields::Unit => unreachable!(),
                })
                .collect();
            format!(
                "if let Some(s) = v.as_str() {{\n\
                     match s {{ {unit_arms} _ => return Err(::serde::Error::custom(\"unknown variant of {name}\")), }}\n\
                 }}\n\
                 if let Some(obj) = v.as_object() {{\n\
                     if obj.len() == 1 {{\n\
                         let (tag, inner) = (&obj[0].0, &obj[0].1);\n\
                         match tag.as_str() {{ {tagged_arms} _ => return Err(::serde::Error::custom(\"unknown variant of {name}\")), }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::Error::custom(\"bad enum encoding for {name}\"))",
                unit_arms = unit_arms.join(" "),
                tagged_arms = tagged_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
