//! Offline subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace ships
//! this miniature property-testing harness: the [`Strategy`] trait with
//! `prop_map`, range / tuple / [`Just`] / oneof / `collection::vec`
//! strategies, the [`proptest!`] macro (deterministically seeded case
//! loop), and the `prop_assert*` macros. There is **no shrinking** —
//! a failing case panics with its inputs' debug representation instead.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Test-runner configuration (`cases` is the only supported knob).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// A uniform union of the given strategies.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].gen_value(rng)
    }
}

// ------------------------------------------------------------- integers

/// Integer types whose ranges are strategies.
pub trait UniformValue: Copy + 'static {
    /// Uniform draw from `[low, high)`.
    fn draw(rng: &mut TestRng, low: Self, high: Self) -> Self;
    /// Uniform draw over the full domain.
    fn draw_any(rng: &mut TestRng) -> Self;
    /// Greatest value of the domain.
    fn max_value() -> Self;
}

macro_rules! impl_uniform_value {
    ($($t:ty),*) => {$(
        impl UniformValue for $t {
            fn draw(rng: &mut TestRng, low: Self, high: Self) -> Self {
                rng.gen_range(low..high)
            }
            fn draw_any(rng: &mut TestRng) -> Self {
                rng.gen()
            }
            fn max_value() -> Self {
                <$t>::MAX
            }
        }
    )*};
}
impl_uniform_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformValue> Strategy for Range<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::draw(rng, self.start, self.end)
    }
}

impl<T: UniformValue + PartialOrd + std::ops::Add<Output = T> + From<u8>> Strategy
    for RangeInclusive<T>
{
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        if hi < T::max_value() {
            T::draw(rng, lo, hi + T::from(1u8))
        } else {
            T::draw_any(rng)
        }
    }
}

impl<T: UniformValue> Strategy for RangeFrom<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::draw(rng, self.start, T::max_value())
    }
}

// ---------------------------------------------------------------- any()

/// Types with a full-domain default strategy.
pub trait Arbitrary: Sized + 'static {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ------------------------------------------------------------ collection

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A size specification: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Everything a property test module imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

// Top-level re-exports mirroring proptest's layout (`proptest::prop_oneof`
// etc. via `use proptest::prelude::*`).
pub use test_runner::ProptestConfig;

/// Builds the seed for a named property's case loop: deterministic, but
/// distinct per property name.
#[must_use]
pub fn case_seed(name: &str) -> u64 {
    // FNV-1a over the name, offset so seed 0 never occurs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h | 1
}

/// Runs `cases` iterations of a property, feeding each a fresh
/// deterministic RNG. The property receives the RNG and draws its own
/// inputs (the [`proptest!`] macro wires this up).
pub fn run_property<F: FnMut(&mut TestRng)>(name: &str, cases: u32, mut body: F) {
    let base = case_seed(name);
    for case in 0..u64::from(cases) {
        let mut rng = TestRng::seed_from_u64(base ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        body(&mut rng);
    }
}

/// Declares deterministic property tests.
///
/// Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn prop(x in 0usize..8, y in any::<u64>()) { prop_assert!(x < 8); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::run_property(stringify!($name), config.cases, |__rng| {
                    $(let $arg = $crate::Strategy::gen_value(&($strategy), __rng);)*
                    $body
                });
            }
        )*
    };
    ($($tt:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($tt)*
        }
    };
}

/// Asserts inside a property (panics with the failing expression; no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 1u32..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths(v in collection::vec(any::<bool>(), 2..5), w in collection::vec(0u8..4, 3)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1u8), Just(2u8)], y in (0u16..4).prop_map(|v| v * 2)) {
            prop_assert!(x == 1 || x == 2);
            prop_assert!(y % 2 == 0 && y < 8);
            prop_assume!(x == 1);
            prop_assert_ne!(x, 2);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        crate::run_property("p", 5, |rng| {
            first.push(crate::Strategy::gen_value(&(0u64..100), rng))
        });
        let mut second = Vec::new();
        crate::run_property("p", 5, |rng| {
            second.push(crate::Strategy::gen_value(&(0u64..100), rng))
        });
        assert_eq!(first, second);
    }
}
