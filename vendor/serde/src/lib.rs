//! Offline value-model subset of the `serde` API.
//!
//! The build environment has no registry access, so the workspace ships
//! its own mini-serde. Instead of serde's visitor architecture, both
//! traits go through one dynamic [`Value`] tree (the same model
//! `serde_json::Value` exposes): [`Serialize`] lowers a type into a
//! `Value`, [`Deserialize`] rebuilds it from one. The companion
//! `serde_json` crate renders and parses that tree as JSON, and
//! `serde_derive` generates the impls for workspace types.
//!
//! Field order is preserved (objects are association lists, not maps),
//! so struct serialization order is declaration order — which keeps
//! JSON reports byte-stable across runs and thread counts. `HashMap`
//! entries are sorted by key on serialization for the same reason.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialized tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(Number),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered association list of key/value pairs.
    Object(Vec<(String, Value)>),
}

/// A JSON number, keeping integer identity where possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Float.
    F(f64),
}

impl Number {
    /// The value as f64 (lossy for huge integers).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The value as u64 if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as i64 if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }
}

impl Value {
    /// Borrows the string payload.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the bool payload.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as f64.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as u64.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as i64.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Borrows the array payload.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutably borrows the array payload.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the object payload (an ordered association list).
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Mutably borrows the object payload.
    pub fn as_object_mut(&mut self) -> Option<&mut Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up an object member by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Mutable member lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut()
            .and_then(|o| o.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Shared null, for missing-member lookups.
pub static NULL: Value = Value::Null;

/// Looks up `key` in an object body, yielding `&Value::Null` when the
/// member is absent (so `Option<T>` fields default to `None`).
#[must_use]
pub fn obj_field<'a>(obj: &'a [(String, Value)], key: &str) -> &'a Value {
    obj.iter().find(|(k, _)| k == key).map_or(&NULL, |(_, v)| v)
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let obj = self
            .as_object_mut()
            .expect("cannot index non-object Value by string");
        if let Some(i) = obj.iter().position(|(k, _)| k == key) {
            return &mut obj[i].1;
        }
        obj.push((key.to_owned(), Value::Null));
        let last = obj.len() - 1;
        &mut obj[last].1
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().map_or(&NULL, |a| a.get(i).unwrap_or(&NULL))
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, i: usize) -> &mut Value {
        &mut self
            .as_array_mut()
            .expect("cannot index non-array Value by position")[i]
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error with a free-form message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Lowers a value into the dynamic [`Value`] tree.
pub trait Serialize {
    /// The serialized form.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the dynamic [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses from a serialized form.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `v` does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------ primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Num(Number::U(i as u64))
                } else {
                    Value::Num(Number::I(i))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::F(f64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom("expected number"))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($n),+].len();
                if arr.len() != expected {
                    return Err(Error::custom("wrong tuple arity"));
                }
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Turns a serialized map key into an object key string.
fn key_to_string(v: &Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::Num(Number::U(u)) => Ok(u.to_string()),
        Value::Num(Number::I(i)) => Ok(i.to_string()),
        Value::Num(Number::F(f)) => Ok(f.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        _ => Err(Error::custom("map key must serialize to a scalar")),
    }
}

/// Rebuilds a map key from an object key string: tries the string
/// itself, then integer and float readings.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(u) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::U(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::I(i))) {
            return Ok(k);
        }
    }
    if let Ok(f) = key.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::Num(Number::F(f))) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot reconstruct map key {key:?}")))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value()).expect("serializable map key");
                (key, v.to_value())
            })
            .collect();
        // HashMap iteration order is nondeterministic; sort for stable
        // output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(&k.to_value()).expect("serializable map key");
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_index_and_field_lookup() {
        let mut v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(v["a"], Value::Bool(true));
        assert_eq!(v["missing"], Value::Null);
        v["b"] = Value::Num(Number::U(3));
        assert_eq!(v.get("b").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn option_roundtrip() {
        let some = Some(5u32).to_value();
        assert_eq!(Option::<u32>::from_value(&some).unwrap(), Some(5));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn hashmap_sorts_keys() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u32);
        m.insert("a".to_string(), 2u32);
        let v = m.to_value();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a");
        assert_eq!(obj[1].0, "b");
        let back: HashMap<String, u32> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn integer_keyed_map_roundtrips() {
        let mut m = HashMap::new();
        m.insert(7u32, (1.5f64, 2.5f64));
        let v = m.to_value();
        let back: HashMap<u32, (f64, f64)> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
