//! Property-based tests for the code substrate.

use proptest::prelude::*;
use scanguard_codes::{BlockCode, Crc, Decoded, ExtendedHamming, Hamming, SequenceCodec};

fn any_hamming() -> impl Strategy<Value = Hamming> {
    (2u32..=6).prop_map(|m| Hamming::new(m).expect("orders 2..=6 are supported"))
}

proptest! {
    #[test]
    fn hamming_roundtrip_is_clean(code in any_hamming(), raw in any::<u64>()) {
        let data = raw & ((1u64 << code.k()) - 1);
        let parity = code.encode(data);
        prop_assert_eq!(code.decode(data, parity), Decoded::Clean);
    }

    #[test]
    fn hamming_corrects_any_single_data_error(
        code in any_hamming(),
        raw in any::<u64>(),
        bit_sel in any::<u32>(),
    ) {
        let data = raw & ((1u64 << code.k()) - 1);
        let bit = bit_sel % code.k();
        let parity = code.encode(data);
        let (fixed, outcome) = code.correct(data ^ (1u64 << bit), parity);
        prop_assert_eq!(fixed, data);
        prop_assert_eq!(outcome, Decoded::Corrected { bit });
    }

    #[test]
    fn hamming_never_reports_clean_on_double_error(
        code in any_hamming(),
        raw in any::<u64>(),
        b1 in any::<u32>(),
        b2 in any::<u32>(),
    ) {
        let k = code.k();
        let (b1, b2) = (b1 % k, b2 % k);
        prop_assume!(b1 != b2);
        let data = raw & ((1u64 << k) - 1);
        let parity = code.encode(data);
        let corrupt = data ^ (1u64 << b1) ^ (1u64 << b2);
        prop_assert_ne!(code.decode(corrupt, parity), Decoded::Clean);
    }

    #[test]
    fn extended_hamming_flags_every_double_error_as_detected(
        code in any_hamming(),
        raw in any::<u64>(),
        b1 in any::<u32>(),
        b2 in any::<u32>(),
    ) {
        let k = code.k();
        let (b1, b2) = (b1 % k, b2 % k);
        prop_assume!(b1 != b2);
        let data = raw & ((1u64 << k) - 1);
        let ext = ExtendedHamming::new(code);
        let parity = ext.encode(data);
        let corrupt = data ^ (1u64 << b1) ^ (1u64 << b2);
        prop_assert_eq!(ext.decode(corrupt, parity), Decoded::Detected);
    }

    #[test]
    fn crc_detects_any_single_flip(
        bits in proptest::collection::vec(any::<bool>(), 1..512),
        idx in any::<usize>(),
    ) {
        let crc = Crc::crc16_ccitt();
        let sig = crc.checksum_bits(&bits);
        let mut flipped = bits.clone();
        let i = idx % bits.len();
        flipped[i] = !flipped[i];
        prop_assert_ne!(crc.checksum_bits(&flipped), sig);
    }

    #[test]
    fn crc_detects_any_burst_up_to_width(
        bits in proptest::collection::vec(any::<bool>(), 64..256),
        start in any::<usize>(),
        pattern in 1u16..,
    ) {
        let crc = Crc::crc16_ccitt();
        let sig = crc.checksum_bits(&bits);
        let len = bits.len();
        let start = start % (len - 16);
        let mut flipped = bits.clone();
        for i in 0..16 {
            if (pattern >> i) & 1 == 1 {
                flipped[start + i] = !flipped[start + i];
            }
        }
        prop_assert_ne!(crc.checksum_bits(&flipped), sig);
    }

    #[test]
    fn sequence_codec_repairs_scattered_singles(
        seed in any::<u64>(),
        len in 64usize..512,
    ) {
        // One error per word at most: all must be repaired.
        let codec = SequenceCodec::new(Box::new(Hamming::h7_4()));
        let bits: Vec<bool> = (0..len).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let parities = codec.protect(&bits);
        let mut corrupted = bits.clone();
        let k = 4;
        let mut injected = 0;
        for w in 0..(len / k) {
            if w % 3 == 0 {
                let bit = w * k + (seed as usize + w) % k;
                corrupted[bit] = !corrupted[bit];
                injected += 1;
            }
        }
        let rep = codec.recover(&mut corrupted, &parities);
        prop_assert_eq!(&corrupted, &bits);
        prop_assert_eq!(rep.corrections, injected);
    }

    #[test]
    fn parity_store_sizes_scale_with_redundancy(len in 100usize..4000) {
        let small = SequenceCodec::new(Box::new(Hamming::h63_57()));
        let large = SequenceCodec::new(Box::new(Hamming::h7_4()));
        prop_assert!(large.parity_storage_bits(len) >= small.parity_storage_bits(len));
    }
}
