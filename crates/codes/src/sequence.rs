//! Protecting long bit sequences word-by-word — the software model of the
//! paper's Fig. 10 experiment ("a test sequence of 1000 bits, therefore
//! emulating 1000 flip-flops, passed through the 4 types of Hamming code
//! implementation").
//!
//! A sequence of `L` bits is split into `ceil(L / k)` data words of `k`
//! bits (the final word zero-padded); each word is encoded independently
//! and its parity stored in the (always-on, hence uncorruptible) parity
//! store. Recovery decodes word by word, applying corrections — including
//! the miscorrections a real decoder cannot avoid — and reports both the
//! decoder's view and the ground-truth outcome.

use crate::{BlockCode, Decoded};

/// Word-wise protection of an arbitrary-length bit sequence with a
/// [`BlockCode`].
///
/// # Examples
///
/// ```
/// use scanguard_codes::{Hamming, SequenceCodec};
///
/// let codec = SequenceCodec::new(Box::new(Hamming::h7_4()));
/// let data = vec![true; 20];
/// let parities = codec.protect(&data);
/// let mut corrupted = data.clone();
/// corrupted[9] = false;
/// let report = codec.recover(&mut corrupted, &parities);
/// assert_eq!(corrupted, data);
/// assert_eq!(report.corrections, 1);
/// ```
#[derive(Debug)]
pub struct SequenceCodec {
    code: Box<dyn BlockCode>,
}

/// Decoder-side statistics from one [`SequenceCodec::recover`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct RecoveryReport {
    /// Words that decoded clean.
    pub clean_words: usize,
    /// Words where the decoder applied a (possibly mis-)correction.
    pub corrections: usize,
    /// Words flagged detected-uncorrectable.
    pub detected_words: usize,
}

impl RecoveryReport {
    /// `true` when any word reported an error (corrected or detected).
    #[must_use]
    pub fn any_error(&self) -> bool {
        self.corrections > 0 || self.detected_words > 0
    }
}

impl SequenceCodec {
    /// Wraps a block code.
    #[must_use]
    pub fn new(code: Box<dyn BlockCode>) -> Self {
        SequenceCodec { code }
    }

    /// The wrapped code.
    #[must_use]
    pub fn code(&self) -> &dyn BlockCode {
        self.code.as_ref()
    }

    /// Number of words needed for a sequence of `len` bits.
    #[must_use]
    pub fn word_count(&self, len: usize) -> usize {
        len.div_ceil(self.code.k() as usize)
    }

    /// Total parity storage in bits for a sequence of `len` bits — the
    /// quantity that drives the Table III area ordering.
    #[must_use]
    pub fn parity_storage_bits(&self, len: usize) -> usize {
        self.word_count(len) * self.code.parity_width() as usize
    }

    /// Encodes the sequence, returning one parity word per data word.
    #[must_use]
    pub fn protect(&self, bits: &[bool]) -> Vec<u64> {
        let k = self.code.k() as usize;
        bits.chunks(k)
            .map(|chunk| self.code.encode(pack(chunk)))
            .collect()
    }

    /// Decodes the sequence in place against stored parities, applying
    /// every correction the decoder believes in.
    ///
    /// # Panics
    ///
    /// Panics if `parities.len()` does not match
    /// [`word_count`](Self::word_count) of the sequence.
    pub fn recover(&self, bits: &mut [bool], parities: &[u64]) -> RecoveryReport {
        let k = self.code.k() as usize;
        assert_eq!(
            parities.len(),
            self.word_count(bits.len()),
            "parity store does not match sequence length"
        );
        let mut report = RecoveryReport::default();
        for (chunk, &parity) in bits.chunks_mut(k).zip(parities) {
            let word = pack(chunk);
            let (fixed, outcome) = self.code.correct(word, parity);
            match outcome {
                Decoded::Clean => report.clean_words += 1,
                Decoded::Corrected { .. } => {
                    report.corrections += 1;
                    unpack(fixed, chunk);
                }
                Decoded::Detected => report.detected_words += 1,
            }
        }
        report
    }

    /// Decodes without correcting (detection-only pass): returns the
    /// report a pure-detection monitor (e.g. CRC with software recovery)
    /// would produce.
    ///
    /// # Panics
    ///
    /// Panics if `parities.len()` does not match the sequence length.
    #[must_use]
    pub fn check(&self, bits: &[bool], parities: &[u64]) -> RecoveryReport {
        let k = self.code.k() as usize;
        assert_eq!(parities.len(), self.word_count(bits.len()));
        let mut report = RecoveryReport::default();
        for (chunk, &parity) in bits.chunks(k).zip(parities) {
            match self.code.decode(pack(chunk), parity) {
                Decoded::Clean => report.clean_words += 1,
                Decoded::Corrected { .. } => report.corrections += 1,
                Decoded::Detected => report.detected_words += 1,
            }
        }
        report
    }
}

fn pack(chunk: &[bool]) -> u64 {
    chunk
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

fn unpack(word: u64, chunk: &mut [bool]) {
    for (i, b) in chunk.iter_mut().enumerate() {
        *b = (word >> i) & 1 == 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hamming;

    fn pattern(len: usize) -> Vec<bool> {
        (0..len).map(|i| (i * 31 + 7) % 3 == 0).collect()
    }

    #[test]
    fn roundtrip_without_errors_is_clean() {
        for code in Hamming::paper_family() {
            let codec = SequenceCodec::new(Box::new(code));
            let bits = pattern(1000);
            let parities = codec.protect(&bits);
            let mut copy = bits.clone();
            let rep = codec.recover(&mut copy, &parities);
            assert_eq!(copy, bits);
            assert!(!rep.any_error());
            assert_eq!(rep.clean_words, codec.word_count(1000));
        }
    }

    #[test]
    fn single_error_anywhere_is_repaired() {
        let codec = SequenceCodec::new(Box::new(Hamming::h7_4()));
        let bits = pattern(100);
        let parities = codec.protect(&bits);
        for i in 0..100 {
            let mut corrupted = bits.clone();
            corrupted[i] = !corrupted[i];
            let rep = codec.recover(&mut corrupted, &parities);
            assert_eq!(corrupted, bits, "flip at {i}");
            assert_eq!(rep.corrections, 1);
        }
    }

    #[test]
    fn errors_in_different_words_all_repaired() {
        let codec = SequenceCodec::new(Box::new(Hamming::h15_11()));
        let bits = pattern(110); // 10 words of 11 bits
        let parities = codec.protect(&bits);
        let mut corrupted = bits.clone();
        for w in 0..10 {
            corrupted[w * 11 + (w % 11)] ^= true;
        }
        let rep = codec.recover(&mut corrupted, &parities);
        assert_eq!(corrupted, bits);
        assert_eq!(rep.corrections, 10);
    }

    #[test]
    fn two_errors_in_same_word_are_not_repaired() {
        let codec = SequenceCodec::new(Box::new(Hamming::h7_4()));
        let bits = pattern(28);
        let parities = codec.protect(&bits);
        let mut corrupted = bits.clone();
        corrupted[0] = !corrupted[0];
        corrupted[2] = !corrupted[2];
        let rep = codec.recover(&mut corrupted, &parities);
        assert_ne!(corrupted, bits, "double error must not silently heal");
        assert!(rep.any_error(), "but it must be noticed");
    }

    #[test]
    fn parity_storage_matches_redundancy() {
        // 1040 FFs protected by (7,4): 260 words x 3 = 780 parity bits —
        // the dominant term of Table II's ~70-87% area overhead.
        let codec = SequenceCodec::new(Box::new(Hamming::h7_4()));
        assert_eq!(codec.parity_storage_bits(1040), 780);
        let codec = SequenceCodec::new(Box::new(Hamming::h63_57()));
        assert_eq!(codec.parity_storage_bits(1040), 19 * 6);
    }

    #[test]
    fn check_reports_without_mutating() {
        let codec = SequenceCodec::new(Box::new(Hamming::h7_4()));
        let bits = pattern(50);
        let parities = codec.protect(&bits);
        let mut corrupted = bits.clone();
        corrupted[3] = !corrupted[3];
        let snapshot = corrupted.clone();
        let rep = codec.check(&corrupted, &parities);
        assert_eq!(corrupted, snapshot);
        assert_eq!(rep.corrections, 1);
    }

    #[test]
    #[should_panic(expected = "parity store")]
    fn mismatched_parity_length_panics() {
        let codec = SequenceCodec::new(Box::new(Hamming::h7_4()));
        let mut bits = pattern(28);
        codec.recover(&mut bits, &[0u64; 3]);
    }
}
