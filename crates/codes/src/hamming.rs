//! Hamming codes — the correcting codes evaluated by the paper
//! (Table III / Fig. 10): (7,4), (15,11), (31,26) and (63,57) — plus the
//! extended SEC-DED variants.

use crate::{BlockCode, CodeError, Decoded};

/// A systematic Hamming `(2^m - 1, 2^m - 1 - m)` single-error-correcting
/// code, `m` in `2..=6`.
///
/// Layout follows the classic construction: codeword positions are
/// numbered `1..=n`; parity bits sit at power-of-two positions; data bits
/// fill the rest in ascending order. The stored parity word equals the
/// syndrome contribution of the data bits, so that at decode time
/// `syndrome = stored_parity XOR recomputed_parity` is directly the
/// 1-based position of a single corrupted bit.
///
/// In the paper's architecture the parity word lives in the **always-on**
/// monitor domain, so only the `k` data bits (which travel through the
/// power-gated scan chains) are exposed to wake-up corruption. `decode`
/// therefore interprets a syndrome pointing at a parity position as
/// [`Decoded::Detected`] rather than correcting the (clean) parity store.
///
/// # Examples
///
/// ```
/// use scanguard_codes::{BlockCode, Decoded, Hamming};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let code = Hamming::new(3)?; // (7,4)
/// let parity = code.encode(0b1011);
/// assert_eq!(code.decode(0b1011, parity), Decoded::Clean);
///
/// // Flip one data bit: located and corrected.
/// let (fixed, outcome) = code.correct(0b1011 ^ 0b0100, parity);
/// assert_eq!(fixed, 0b1011);
/// assert_eq!(outcome, Decoded::Corrected { bit: 2 });
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Hamming {
    m: u32,
    n: u32,
    k: u32,
    /// 1-based codeword position of each data bit, ascending; length `k`.
    data_pos: Vec<u32>,
    /// Inverse map: `data_bit_of[pos - 1] = Some(data index)` for data
    /// positions, `None` for parity positions.
    data_bit_of: Vec<Option<u32>>,
}

impl Hamming {
    /// Builds the Hamming code with `m` parity bits.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::UnsupportedHammingOrder`] unless `2 <= m <= 6`
    /// (the range that keeps data words within `u64` and covers every code
    /// the paper evaluates).
    pub fn new(m: u32) -> Result<Self, CodeError> {
        if !(2..=6).contains(&m) {
            return Err(CodeError::UnsupportedHammingOrder { m });
        }
        let n = (1u32 << m) - 1;
        let k = n - m;
        let mut data_pos = Vec::with_capacity(k as usize);
        let mut data_bit_of = vec![None; n as usize];
        for pos in 1..=n {
            if !pos.is_power_of_two() {
                data_bit_of[(pos - 1) as usize] = Some(data_pos.len() as u32);
                data_pos.push(pos);
            }
        }
        Ok(Hamming {
            m,
            n,
            k,
            data_pos,
            data_bit_of,
        })
    }

    /// The (7,4) code — best correction capability in Fig. 10.
    #[must_use]
    pub fn h7_4() -> Self {
        Hamming::new(3).expect("m=3 is supported")
    }

    /// The (15,11) code.
    #[must_use]
    pub fn h15_11() -> Self {
        Hamming::new(4).expect("m=4 is supported")
    }

    /// The (31,26) code.
    #[must_use]
    pub fn h31_26() -> Self {
        Hamming::new(5).expect("m=5 is supported")
    }

    /// The (63,57) code — smallest area overhead in Table III.
    #[must_use]
    pub fn h63_57() -> Self {
        Hamming::new(6).expect("m=6 is supported")
    }

    /// All four codes evaluated by the paper, largest redundancy first
    /// (the order of Table III).
    #[must_use]
    pub fn paper_family() -> Vec<Hamming> {
        vec![
            Hamming::h7_4(),
            Hamming::h15_11(),
            Hamming::h31_26(),
            Hamming::h63_57(),
        ]
    }

    /// Number of parity bits `m`.
    #[must_use]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// 1-based codeword positions of the data bits.
    #[must_use]
    pub fn data_positions(&self) -> &[u32] {
        &self.data_pos
    }

    /// XOR of the 1-based positions of all set data bits — the syndrome
    /// contribution of the data, which doubles as the stored parity word.
    fn data_syndrome(&self, data: u64) -> u64 {
        debug_assert!(
            self.k == 64 || data >> self.k == 0,
            "data word wider than k={}",
            self.k
        );
        let mut syn = 0u64;
        let mut rest = data;
        while rest != 0 {
            let bit = rest.trailing_zeros();
            syn ^= u64::from(self.data_pos[bit as usize]);
            rest &= rest - 1;
        }
        syn
    }
}

impl BlockCode for Hamming {
    fn n(&self) -> u32 {
        self.n
    }

    fn k(&self) -> u32 {
        self.k
    }

    fn parity_width(&self) -> u32 {
        self.m
    }

    fn encode(&self, data: u64) -> u64 {
        self.data_syndrome(data)
    }

    fn decode(&self, data: u64, parity: u64) -> Decoded {
        let syn = self.data_syndrome(data) ^ parity;
        if syn == 0 {
            return Decoded::Clean;
        }
        if syn <= u64::from(self.n) {
            if let Some(bit) = self.data_bit_of[(syn - 1) as usize] {
                return Decoded::Corrected { bit };
            }
        }
        // Syndrome points at a (clean, always-on) parity position or
        // outside the codeword: must be a multi-bit pattern.
        Decoded::Detected
    }

    fn name(&self) -> String {
        format!("Hamming({},{})", self.n, self.k)
    }
}

/// Extended Hamming code (SEC-DED): the base code plus one overall parity
/// bit over the data word, giving single-error correction *and* reliable
/// double-error detection (no miscorrection on double errors).
///
/// The paper discusses plain Hamming's inability to handle clustered
/// multi-errors (Sec. IV); the SEC-DED variant is the classical fix and
/// is benchmarked against it in the `ablation_secded` experiment.
///
/// # Examples
///
/// ```
/// use scanguard_codes::{BlockCode, Decoded, ExtendedHamming, Hamming};
///
/// let secded = ExtendedHamming::new(Hamming::h7_4());
/// let parity = secded.encode(0b0110);
/// // A double error is *detected*, never miscorrected.
/// assert_eq!(secded.decode(0b0110 ^ 0b0011, parity), Decoded::Detected);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ExtendedHamming {
    inner: Hamming,
}

impl ExtendedHamming {
    /// Wraps a base Hamming code with an overall parity bit.
    #[must_use]
    pub fn new(inner: Hamming) -> Self {
        ExtendedHamming { inner }
    }

    /// The underlying Hamming code.
    #[must_use]
    pub fn base(&self) -> &Hamming {
        &self.inner
    }
}

impl BlockCode for ExtendedHamming {
    fn n(&self) -> u32 {
        self.inner.n + 1
    }

    fn k(&self) -> u32 {
        self.inner.k
    }

    fn parity_width(&self) -> u32 {
        self.inner.m + 1
    }

    fn encode(&self, data: u64) -> u64 {
        let syn = self.inner.data_syndrome(data);
        let overall = u64::from(data.count_ones() & 1);
        syn | (overall << self.inner.m)
    }

    fn decode(&self, data: u64, parity: u64) -> Decoded {
        let stored_syn = parity & ((1u64 << self.inner.m) - 1);
        let stored_overall = (parity >> self.inner.m) & 1;
        let syn = self.inner.data_syndrome(data) ^ stored_syn;
        let overall = u64::from(data.count_ones() & 1) ^ stored_overall;
        match (syn, overall) {
            (0, 0) => Decoded::Clean,
            (0, _) => Decoded::Detected, // odd multi-error aliasing to 0
            (_, 0) => Decoded::Detected, // even error count: classic DED
            (s, _) => {
                if s <= u64::from(self.inner.n) {
                    if let Some(bit) = self.inner.data_bit_of[(s - 1) as usize] {
                        return Decoded::Corrected { bit };
                    }
                }
                Decoded::Detected
            }
        }
    }

    fn name(&self) -> String {
        format!("ExtHamming({},{})", self.n(), self.k())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_parameters_match_paper_family() {
        let expect = [(3, 7, 4), (4, 15, 11), (5, 31, 26), (6, 63, 57)];
        for (m, n, k) in expect {
            let c = Hamming::new(m).unwrap();
            assert_eq!(c.n(), n);
            assert_eq!(c.k(), k);
            assert_eq!(c.parity_width(), m);
        }
        assert!(Hamming::new(1).is_err());
        assert!(Hamming::new(7).is_err());
    }

    #[test]
    fn redundancy_and_capability_match_table3() {
        // Table III cap(%) column: 14.3, 6.67, 3.23, 1.59.
        let caps: Vec<f64> = Hamming::paper_family()
            .iter()
            .map(BlockCode::correction_capability_pct)
            .collect();
        assert!((caps[0] - 14.29).abs() < 0.01);
        assert!((caps[1] - 6.67).abs() < 0.01);
        assert!((caps[2] - 3.23).abs() < 0.01);
        assert!((caps[3] - 1.59).abs() < 0.01);
        // Redundancy strictly decreasing.
        let reds: Vec<f64> = Hamming::paper_family()
            .iter()
            .map(BlockCode::redundancy)
            .collect();
        assert!(reds.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn clean_roundtrip_all_words_h7_4() {
        let c = Hamming::h7_4();
        for data in 0u64..16 {
            let p = c.encode(data);
            assert_eq!(c.decode(data, p), Decoded::Clean, "data {data:04b}");
        }
    }

    #[test]
    fn every_single_error_is_corrected_exhaustive() {
        for c in Hamming::paper_family() {
            // Sample data words (exhaustive for small k).
            let samples: Vec<u64> = if c.k() <= 11 {
                (0..(1u64 << c.k())).collect()
            } else {
                (0..2048u64)
                    .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << c.k()) - 1))
                    .collect()
            };
            for data in samples {
                let p = c.encode(data);
                for bit in 0..c.k() {
                    let corrupt = data ^ (1u64 << bit);
                    let (fixed, outcome) = c.correct(corrupt, p);
                    assert_eq!(fixed, data, "{} data={data:b} bit={bit}", c.name());
                    assert_eq!(outcome, Decoded::Corrected { bit });
                }
            }
        }
    }

    #[test]
    fn double_error_never_decodes_clean() {
        let c = Hamming::h7_4();
        for data in 0u64..16 {
            let p = c.encode(data);
            for b1 in 0..4 {
                for b2 in (b1 + 1)..4 {
                    let corrupt = data ^ (1 << b1) ^ (1 << b2);
                    assert_ne!(c.decode(corrupt, p), Decoded::Clean);
                }
            }
        }
    }

    #[test]
    fn double_errors_usually_miscorrect_in_plain_hamming() {
        // The mechanism behind the paper's Sec. IV observation: clustered
        // multi-errors defeat plain Hamming. With only data positions
        // corruptible, a double error's syndrome may alias onto a third
        // data bit (miscorrection) or a parity position (detection).
        let c = Hamming::h7_4();
        let mut miscorrections = 0;
        let mut detections = 0;
        for data in 0u64..16 {
            let p = c.encode(data);
            for b1 in 0..4 {
                for b2 in (b1 + 1)..4 {
                    let corrupt = data ^ (1 << b1) ^ (1 << b2);
                    match c.decode(corrupt, p) {
                        Decoded::Corrected { .. } => miscorrections += 1,
                        Decoded::Detected => detections += 1,
                        Decoded::Clean => unreachable!(),
                    }
                }
            }
        }
        assert!(
            miscorrections > 0,
            "plain hamming must miscorrect sometimes"
        );
        assert!(
            detections > 0,
            "syndromes hitting parity positions are detections"
        );
    }

    #[test]
    fn extended_hamming_detects_all_double_errors() {
        for base in Hamming::paper_family() {
            let k = base.k();
            let c = ExtendedHamming::new(base);
            let data: u64 = 0x5A5A_5A5A_5A5A_5A5A & ((1u64 << k) - 1);
            let p = c.encode(data);
            for b1 in 0..k {
                for b2 in (b1 + 1)..k {
                    let corrupt = data ^ (1u64 << b1) ^ (1u64 << b2);
                    assert_eq!(
                        c.decode(corrupt, p),
                        Decoded::Detected,
                        "{} bits {b1},{b2}",
                        c.name()
                    );
                }
            }
        }
    }

    #[test]
    fn extended_hamming_still_corrects_singles() {
        let c = ExtendedHamming::new(Hamming::h15_11());
        let data = 0b101_1100_1010;
        let p = c.encode(data);
        for bit in 0..11 {
            let (fixed, out) = c.correct(data ^ (1 << bit), p);
            assert_eq!(fixed, data);
            assert_eq!(out, Decoded::Corrected { bit });
        }
    }

    #[test]
    fn names_render() {
        assert_eq!(Hamming::h7_4().name(), "Hamming(7,4)");
        assert_eq!(
            ExtendedHamming::new(Hamming::h7_4()).name(),
            "ExtHamming(8,4)"
        );
    }

    #[test]
    fn works_as_trait_object() {
        let codes: Vec<Box<dyn BlockCode>> = vec![
            Box::new(Hamming::h7_4()),
            Box::new(ExtendedHamming::new(Hamming::h7_4())),
        ];
        for c in &codes {
            let p = c.encode(0b1010);
            assert_eq!(c.decode(0b1010, p), Decoded::Clean);
        }
    }
}

/// Even-parity code over `k`-bit words: the cheapest possible detector —
/// one parity bit per word, catching every odd-weight error and nothing
/// else. Included as the lower anchor of the detection design space the
/// paper's Sec. V explores (parity store grows with the state size,
/// where CRC's is flat — the two cross over).
///
/// # Examples
///
/// ```
/// use scanguard_codes::{BlockCode, Decoded, EvenParity};
///
/// let p = EvenParity::new(4);
/// let parity = p.encode(0b1011);
/// assert_eq!(p.decode(0b1011, parity), Decoded::Clean);
/// assert_eq!(p.decode(0b1010, parity), Decoded::Detected);
/// // A double flip is invisible to parity:
/// assert_eq!(p.decode(0b1011 ^ 0b0011, parity), Decoded::Clean);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EvenParity {
    k: u32,
}

impl EvenParity {
    /// A parity code over `k`-bit data words.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= 64`.
    #[must_use]
    pub fn new(k: u32) -> Self {
        assert!((1..=64).contains(&k), "k must be 1..=64");
        EvenParity { k }
    }
}

impl BlockCode for EvenParity {
    fn n(&self) -> u32 {
        self.k + 1
    }

    fn k(&self) -> u32 {
        self.k
    }

    fn parity_width(&self) -> u32 {
        1
    }

    fn encode(&self, data: u64) -> u64 {
        u64::from(data.count_ones() & 1)
    }

    fn decode(&self, data: u64, parity: u64) -> Decoded {
        if self.encode(data) == parity & 1 {
            Decoded::Clean
        } else {
            Decoded::Detected
        }
    }

    fn correction_capability_pct(&self) -> f64 {
        0.0
    }

    fn name(&self) -> String {
        format!("Parity({},{})", self.n(), self.k)
    }
}

#[cfg(test)]
mod parity_tests {
    use super::*;

    #[test]
    fn detects_all_odd_misses_all_even() {
        let p = EvenParity::new(8);
        let data = 0b1100_0101u64;
        let parity = p.encode(data);
        for weight in 1..=8u32 {
            // A canonical error of the given weight.
            let error = (1u64 << weight) - 1;
            let outcome = p.decode(data ^ error, parity);
            if weight % 2 == 1 {
                assert_eq!(outcome, Decoded::Detected, "weight {weight}");
            } else {
                assert_eq!(outcome, Decoded::Clean, "weight {weight}");
            }
        }
    }

    #[test]
    fn never_corrects() {
        let p = EvenParity::new(4);
        let parity = p.encode(0b1111);
        let (out, verdict) = p.correct(0b1110, parity);
        assert_eq!(out, 0b1110, "parity must not touch data");
        assert_eq!(verdict, Decoded::Detected);
        assert_eq!(p.correction_capability_pct(), 0.0);
    }

    #[test]
    fn redundancy_is_one_over_k() {
        let p = EvenParity::new(4);
        assert!((p.redundancy() - 0.25).abs() < 1e-12);
        assert_eq!(p.name(), "Parity(5,4)");
    }
}
