//! Error types for code construction and use.

use std::fmt;

/// Errors raised when constructing or applying a code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// The requested Hamming order is outside the supported range.
    UnsupportedHammingOrder {
        /// The requested number of parity bits `m`.
        m: u32,
    },
    /// A data word wider than the code's data width `k` was supplied.
    DataTooWide {
        /// Bits provided.
        got: u32,
        /// Maximum data width of the code.
        k: u32,
    },
    /// A CRC width outside `1..=32` was requested.
    InvalidCrcWidth {
        /// The requested width.
        width: u32,
    },
    /// The polynomial does not fit in the requested CRC width.
    PolynomialTooWide {
        /// The requested width.
        width: u32,
    },
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::UnsupportedHammingOrder { m } => {
                write!(f, "unsupported hamming order m={m} (supported: 2..=6)")
            }
            CodeError::DataTooWide { got, k } => {
                write!(f, "data word of {got} bits exceeds code data width k={k}")
            }
            CodeError::InvalidCrcWidth { width } => {
                write!(f, "crc width {width} outside supported range 1..=32")
            }
            CodeError::PolynomialTooWide { width } => {
                write!(f, "polynomial does not fit in {width} bits")
            }
        }
    }
}

impl std::error::Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert_eq!(
            CodeError::UnsupportedHammingOrder { m: 9 }.to_string(),
            "unsupported hamming order m=9 (supported: 2..=6)"
        );
        assert_eq!(
            CodeError::InvalidCrcWidth { width: 0 }.to_string(),
            "crc width 0 outside supported range 1..=32"
        );
    }

    #[test]
    fn is_send_sync_error() {
        fn check<E: std::error::Error + Send + Sync + 'static>() {}
        check::<CodeError>();
    }
}
