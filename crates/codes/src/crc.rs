//! Cyclic redundancy checks — the detection-only codes of the paper
//! (Table I uses CRC-16).
//!
//! The engine is bit-serial, mirroring the LFSR the state monitoring block
//! implements in hardware: one shift per scan cycle per chain. A
//! word-parallel update is provided for the behavioural fast path and is
//! tested to be bit-exact against the serial LFSR.

use crate::CodeError;

/// Specification of a CRC: width, polynomial and initial register value.
///
/// Polynomials are given MSB-first without the implicit top bit (the
/// conventional representation: CRC-16/CCITT is `0x1021`).
///
/// # Examples
///
/// ```
/// use scanguard_codes::Crc;
///
/// let crc = Crc::crc16_ccitt();
/// let sig = crc.checksum_bits(&[true, false, true, true]);
/// assert_ne!(sig, crc.checksum_bits(&[true, false, true, false]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Crc {
    width: u32,
    poly: u32,
    init: u32,
}

impl Crc {
    /// Builds a CRC spec.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::InvalidCrcWidth`] for widths outside `1..=32`
    /// and [`CodeError::PolynomialTooWide`] if `poly` has bits at or above
    /// `width`.
    pub fn new(width: u32, poly: u32, init: u32) -> Result<Self, CodeError> {
        if !(1..=32).contains(&width) {
            return Err(CodeError::InvalidCrcWidth { width });
        }
        if width < 32 && (poly >> width) != 0 {
            return Err(CodeError::PolynomialTooWide { width });
        }
        Ok(Crc { width, poly, init })
    }

    /// CRC-16/CCITT (polynomial `x^16 + x^12 + x^5 + 1`), the detection
    /// code used throughout the paper's Table I.
    #[must_use]
    pub fn crc16_ccitt() -> Self {
        Crc {
            width: 16,
            poly: 0x1021,
            init: 0xFFFF,
        }
    }

    /// CRC-16/IBM (polynomial `0x8005`).
    #[must_use]
    pub fn crc16_ibm() -> Self {
        Crc {
            width: 16,
            poly: 0x8005,
            init: 0x0000,
        }
    }

    /// CRC-32 (IEEE 802.3 polynomial, non-reflected form).
    #[must_use]
    pub fn crc32() -> Self {
        Crc {
            width: 32,
            poly: 0x04C1_1DB7,
            init: 0xFFFF_FFFF,
        }
    }

    /// Register width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The generator polynomial (without the implicit top bit).
    #[must_use]
    pub fn poly(&self) -> u32 {
        self.poly
    }

    /// Starts a streaming digest at the initial register value.
    #[must_use]
    pub fn digest(&self) -> CrcDigest {
        CrcDigest {
            spec: *self,
            reg: self.init & self.mask(),
        }
    }

    /// One-shot checksum over a bit slice (MSB-first order of arrival).
    #[must_use]
    pub fn checksum_bits(&self, bits: &[bool]) -> u32 {
        let mut d = self.digest();
        d.update_bits(bits);
        d.finish()
    }

    fn mask(&self) -> u32 {
        if self.width == 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        }
    }
}

/// Streaming CRC state — the software model of the monitor's LFSR.
///
/// # Examples
///
/// ```
/// use scanguard_codes::Crc;
///
/// let spec = Crc::crc16_ccitt();
/// let mut d = spec.digest();
/// d.update_bit(true);
/// d.update_bit(false);
/// let sig = d.finish();
/// assert_eq!(sig, spec.checksum_bits(&[true, false]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcDigest {
    spec: Crc,
    reg: u32,
}

impl CrcDigest {
    /// Shifts one bit into the LFSR — exactly what the hardware does per
    /// scan-shift cycle.
    pub fn update_bit(&mut self, bit: bool) {
        let top = (self.reg >> (self.spec.width - 1)) & 1;
        let fb = top ^ u32::from(bit);
        self.reg = (self.reg << 1) & self.spec.mask();
        if fb != 0 {
            self.reg ^= self.spec.poly;
        }
    }

    /// Shifts a slice of bits, first element first.
    pub fn update_bits(&mut self, bits: &[bool]) {
        for &b in bits {
            self.update_bit(b);
        }
    }

    /// Shifts the low `nbits` of `word`, LSB first — the order in which a
    /// scan word presents bits when chains are consumed in index order.
    pub fn update_word(&mut self, word: u64, nbits: u32) {
        for i in 0..nbits {
            self.update_bit((word >> i) & 1 == 1);
        }
    }

    /// Current register value.
    #[must_use]
    pub fn value(&self) -> u32 {
        self.reg
    }

    /// Returns the signature (no output XOR is applied; the monitor
    /// compares raw register values).
    #[must_use]
    pub fn finish(self) -> u32 {
        self.reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_of_bytes_msb(bytes: &[u8]) -> Vec<bool> {
        bytes
            .iter()
            .flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn crc16_ccitt_known_vector() {
        // CRC-16/CCITT-FALSE over "123456789" (MSB-first, init 0xFFFF,
        // no reflection, no xorout) = 0x29B1.
        let crc = Crc::crc16_ccitt();
        let bits = bits_of_bytes_msb(b"123456789");
        assert_eq!(crc.checksum_bits(&bits), 0x29B1);
    }

    #[test]
    fn crc16_ibm_zero_stream_is_zero() {
        let crc = Crc::crc16_ibm();
        assert_eq!(crc.checksum_bits(&[false; 64]), 0);
    }

    #[test]
    fn any_single_bit_flip_changes_signature() {
        let crc = Crc::crc16_ccitt();
        let base: Vec<bool> = (0..256).map(|i| (i * 7 + 3) % 5 == 0).collect();
        let sig = crc.checksum_bits(&base);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] = !flipped[i];
            assert_ne!(crc.checksum_bits(&flipped), sig, "flip at {i} undetected");
        }
    }

    #[test]
    fn all_double_flips_detected_within_crc16_span() {
        // CRC-16/CCITT detects all double-bit errors within any span
        // shorter than the polynomial's order (huge); verify a window.
        let crc = Crc::crc16_ccitt();
        let base = vec![false; 96];
        let sig = crc.checksum_bits(&base);
        for i in 0..96 {
            for j in (i + 1)..96 {
                let mut f = base.clone();
                f[i] = true;
                f[j] = true;
                assert_ne!(crc.checksum_bits(&f), sig, "double flip {i},{j}");
            }
        }
    }

    #[test]
    fn burst_errors_up_to_width_detected() {
        // A CRC of width w detects all bursts of length <= w.
        let crc = Crc::crc16_ccitt();
        let base = vec![false; 200];
        let sig = crc.checksum_bits(&base);
        for start in [0usize, 13, 97, 180] {
            for len in 1..=16usize {
                if start + len > 200 {
                    continue;
                }
                let mut f = base.clone();
                // Burst = first and last flipped, interior arbitrary.
                for (off, item) in f[start..start + len].iter_mut().enumerate() {
                    *item = off == 0 || off == len - 1 || off % 2 == 1;
                }
                assert_ne!(crc.checksum_bits(&f), sig, "burst at {start} len {len}");
            }
        }
    }

    #[test]
    fn word_update_matches_bit_update() {
        let crc = Crc::crc16_ccitt();
        let mut a = crc.digest();
        let mut b = crc.digest();
        let word: u64 = 0b1011_0010_1110_0001;
        a.update_word(word, 16);
        for i in 0..16 {
            b.update_bit((word >> i) & 1 == 1);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(Crc::new(0, 0x1, 0).is_err());
        assert!(Crc::new(33, 0x1, 0).is_err());
        assert!(Crc::new(8, 0x1FF, 0).is_err());
        assert!(Crc::new(8, 0x07, 0).is_ok());
        assert!(Crc::new(32, 0x04C1_1DB7, 0).is_ok());
    }

    #[test]
    fn crc32_differs_from_crc16_on_same_stream() {
        let bits: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let a = Crc::crc16_ccitt().checksum_bits(&bits);
        let b = Crc::crc32().checksum_bits(&bits);
        assert_ne!(u64::from(a), u64::from(b) & 0xFFFF);
    }
}
