//! # scanguard-codes
//!
//! Error detection and correction codes for the `scanguard` reproduction
//! of *"Scan Based Methodology for Reliable State Retention Power Gating
//! Designs"* (Yang et al., DATE 2010).
//!
//! The paper protects power-gated state with two code families, both
//! provided here:
//!
//! * **[`Hamming`]** single-error-correcting codes `(7,4)`, `(15,11)`,
//!   `(31,26)`, `(63,57)` (Table III / Fig. 10), plus
//!   **[`ExtendedHamming`]** SEC-DED variants used by the ablation
//!   experiments;
//! * **[`Crc`]** detection codes (Table I uses CRC-16/CCITT), implemented
//!   as the same bit-serial LFSR the hardware monitor shifts scan data
//!   through.
//!
//! [`SequenceCodec`] applies a block code word-by-word over an
//! arbitrary-length bit sequence — the exact setup of the paper's Fig. 10
//! simulation (1000-bit sequences through four Hamming codes).
//!
//! # Examples
//!
//! ```
//! use scanguard_codes::{BlockCode, Decoded, Hamming};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let code = Hamming::new(3)?; // Hamming(7,4)
//! let parity = code.encode(0b1001);
//! let corrupted = 0b1001 ^ 0b0010;
//! let (repaired, outcome) = code.correct(corrupted, parity);
//! assert_eq!(repaired, 0b1001);
//! assert_eq!(outcome, Decoded::Corrected { bit: 1 });
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod block;
mod crc;
mod error;
mod hamming;
mod sequence;

pub use block::{BlockCode, Decoded};
pub use crc::{Crc, CrcDigest};
pub use error::CodeError;
pub use hamming::{EvenParity, ExtendedHamming, Hamming};
pub use sequence::{RecoveryReport, SequenceCodec};
