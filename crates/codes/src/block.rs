//! The block-code abstraction shared by all correcting codes.
//!
//! The paper's state monitoring block consumes one *word* per scan-shift
//! cycle (one bit from each of `k` parallel scan chains), computes the
//! word's parity bits and stores them in an always-on parity register.
//! During decoding the same word is read again, the parity is recomputed
//! and compared, and — for correcting codes — the syndrome locates the
//! corrupted bit. The [`BlockCode`] trait captures exactly that contract:
//! data words up to 64 bits, parity words up to 64 bits, with the parity
//! assumed *clean* (it lives in the always-on domain).

use std::fmt;

/// Outcome of decoding one word against its stored parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Decoded {
    /// Parity matched; the word is accepted as error-free.
    Clean,
    /// A single-bit error was located and can be corrected.
    ///
    /// `bit` is the 0-based index within the `k` data bits. Note that a
    /// real decoder cannot distinguish a true single error from a
    /// multi-error pattern whose syndrome aliases onto a data position —
    /// applying this "correction" then *adds* an error (miscorrection),
    /// which is precisely the behaviour the paper observes for burst
    /// errors (Sec. IV) and which the Fig. 10 experiment quantifies.
    Corrected {
        /// 0-based data-bit index the decoder will flip.
        bit: u32,
    },
    /// An error was detected but cannot be attributed to a single data
    /// bit (syndrome points at a parity position, or SEC-DED flagged a
    /// double error).
    Detected,
}

impl Decoded {
    /// `true` unless the word decoded clean.
    #[must_use]
    pub fn is_error(self) -> bool {
        !matches!(self, Decoded::Clean)
    }
}

impl fmt::Display for Decoded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decoded::Clean => write!(f, "clean"),
            Decoded::Corrected { bit } => write!(f, "corrected bit {bit}"),
            Decoded::Detected => write!(f, "detected uncorrectable"),
        }
    }
}

/// A systematic block code over data words of `k <= 64` bits.
///
/// Implementors: [`Hamming`](crate::Hamming) (single error correction)
/// and [`ExtendedHamming`](crate::ExtendedHamming) (SEC-DED).
///
/// The trait is object-safe; the monitoring architecture stores a
/// `Box<dyn BlockCode>` chosen by the synthesis flow's configuration file.
pub trait BlockCode: fmt::Debug + Send + Sync {
    /// Codeword length `n` in bits (data + in-word parity positions).
    fn n(&self) -> u32;

    /// Data width `k` in bits.
    fn k(&self) -> u32;

    /// Number of parity bits stored per word (`>= n - k`; extended codes
    /// store one extra overall-parity bit).
    fn parity_width(&self) -> u32;

    /// Computes the parity word for `data` (low `k` bits significant).
    ///
    /// Bits of `data` above `k` must be zero; implementations may panic
    /// otherwise (the scan-word assembly guarantees this).
    fn encode(&self, data: u64) -> u64;

    /// Checks `data` against a previously stored `parity` word.
    fn decode(&self, data: u64, parity: u64) -> Decoded;

    /// Decodes and applies the correction when one is available.
    ///
    /// Returns the (possibly corrected, possibly *mis*corrected) data
    /// word together with the decode outcome.
    fn correct(&self, data: u64, parity: u64) -> (u64, Decoded) {
        match self.decode(data, parity) {
            Decoded::Corrected { bit } => (data ^ (1u64 << bit), Decoded::Corrected { bit }),
            other => (data, other),
        }
    }

    /// Redundancy ratio `(n - k) / k`, the quantity the paper uses to
    /// explain the area ordering of Table III.
    fn redundancy(&self) -> f64 {
        f64::from(self.n() - self.k()) / f64::from(self.k())
    }

    /// Maximum error correction capability as a percentage of codeword
    /// bits (`100 / n` for single-error-correcting codes) — the `cap(%)`
    /// column of Table III.
    fn correction_capability_pct(&self) -> f64 {
        100.0 / f64::from(self.n())
    }

    /// Short display name, e.g. `"Hamming(7,4)"`.
    fn name(&self) -> String {
        format!("({},{})", self.n(), self.k())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoded_display_and_predicates() {
        assert_eq!(Decoded::Clean.to_string(), "clean");
        assert_eq!(Decoded::Corrected { bit: 3 }.to_string(), "corrected bit 3");
        assert_eq!(Decoded::Detected.to_string(), "detected uncorrectable");
        assert!(!Decoded::Clean.is_error());
        assert!(Decoded::Detected.is_error());
        assert!(Decoded::Corrected { bit: 0 }.is_error());
    }
}
