//! # scanguard-power
//!
//! Power-gating substrate for the `scanguard` reproduction of *"Scan
//! Based Methodology for Reliable State Retention Power Gating Designs"*
//! (Yang et al., DATE 2010).
//!
//! The paper's threat model is physical: closing a gated domain's power
//! switches draws a rush current whose shared-rail bounce can flip the
//! always-on retention latches. This crate models that chain of cause and
//! effect, plus the baseline mitigations the paper compares against:
//!
//! * [`PowerNetwork`] / [`RushTransient`] — closed-form series-RLC wake
//!   transients (the model of ref \[7\]) with peak current, `di/dt` and a
//!   first-order shared-rail bounce estimate;
//! * [`WakeStrategy`] — full-bank wake, staggered activation (ref \[7\])
//!   and slow-ramp activation (ref \[8\]), trading bounce for latency;
//! * [`UpsetModel`] — thresholded, variation-aware, **spatially
//!   clustered** retention upsets (the "closely clustered" burst errors
//!   of the paper's Sec. IV);
//! * [`ConventionalController`] — the Fig. 3(a) power-gating FSM the
//!   proposed monitoring controller (in `scanguard-core`) extends.
//!
//! # Examples
//!
//! ```
//! use scanguard_power::{PowerNetwork, UpsetModel, WakeStrategy};
//!
//! let network = PowerNetwork::default_120nm();
//! let upsets = UpsetModel::default_120nm();
//!
//! let harsh = WakeStrategy::FullBank.wake(&network);
//! let gentle = WakeStrategy::Staggered { groups: 8 }.wake(&network);
//! assert!(gentle.peak_bounce_v < harsh.peak_bounce_v);
//!
//! // ... but a gentle wake still cannot *repair* latches that flip:
//! let flips = upsets.upsets(harsh.peak_bounce_v, 1040, 42);
//! println!("{} retention latches upset", flips.len());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod controller;
mod mission;
mod rush;
mod upset;
mod wake;

pub use controller::{ControllerTiming, ConventionalController, PgOutputs, PgPhase};
pub use mission::{mission_energy, DutyCycle, GatingCosts, MissionReport};
pub use rush::{PowerNetwork, RushTransient, Sample};
pub use upset::UpsetModel;
pub use wake::{WakeEvent, WakeStrategy};
