//! Mission-level energy accounting: does power gating — with the
//! protection overhead the paper's methodology adds — actually save
//! energy over a realistic duty cycle?
//!
//! Power gating trades leakage savings during idle periods against the
//! energy spent entering and leaving sleep (state save/restore, and for
//! a protected design the encode and decode passes). This module folds
//! those into per-mission totals, the policy-level complement of
//! `scanguard_core::break_even`.

/// An alternating active/idle workload.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DutyCycle {
    /// Seconds of activity per episode.
    pub active_s: f64,
    /// Seconds of idleness per episode.
    pub idle_s: f64,
    /// Number of episodes in the mission.
    pub episodes: u64,
}

impl DutyCycle {
    /// Total mission time in seconds.
    #[must_use]
    pub fn total_s(&self) -> f64 {
        (self.active_s + self.idle_s) * self.episodes as f64
    }

    /// Fraction of time spent idle.
    #[must_use]
    pub fn idle_fraction(&self) -> f64 {
        if self.active_s + self.idle_s == 0.0 {
            return 0.0;
        }
        self.idle_s / (self.active_s + self.idle_s)
    }
}

/// Static parameters of the gated design.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GatingCosts {
    /// Leakage while powered, nW.
    pub active_leakage_nw: f64,
    /// Leakage while gated (always-on remainder), nW.
    pub sleep_leakage_nw: f64,
    /// Energy to enter + leave sleep *without* monitoring (retention
    /// save/restore, switch drive), nJ per episode.
    pub transition_nj: f64,
    /// Additional monitoring energy (encode + decode), nJ per episode;
    /// zero for an unprotected design.
    pub protection_nj: f64,
}

/// Mission energy totals, in microjoules.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MissionReport {
    /// Leakage energy with the domain always on.
    pub no_gating_uj: f64,
    /// With gating during idle periods (including transition and
    /// protection overheads).
    pub gating_uj: f64,
    /// Net savings, percent of the ungated energy (negative when gating
    /// loses).
    pub savings_pct: f64,
    /// Idle seconds per episode below which gating costs energy.
    pub break_even_idle_s: f64,
}

/// Computes mission leakage-energy totals for a duty cycle.
///
/// Only leakage and gating overheads are compared — dynamic computation
/// energy is identical in both scenarios and cancels.
///
/// # Examples
///
/// ```
/// use scanguard_power::{mission_energy, DutyCycle, GatingCosts};
///
/// let costs = GatingCosts {
///     active_leakage_nw: 2600.0,
///     sleep_leakage_nw: 300.0,
///     transition_nj: 0.5,
///     protection_nj: 2.3,
/// };
/// let long_idle = mission_energy(
///     &DutyCycle { active_s: 1e-3, idle_s: 10e-3, episodes: 1000 },
///     &costs,
/// );
/// assert!(long_idle.savings_pct > 50.0);
///
/// let short_idle = mission_energy(
///     &DutyCycle { active_s: 1e-3, idle_s: 100e-6, episodes: 1000 },
///     &costs,
/// );
/// assert!(short_idle.savings_pct < long_idle.savings_pct);
/// ```
#[must_use]
pub fn mission_energy(duty: &DutyCycle, costs: &GatingCosts) -> MissionReport {
    let episodes = duty.episodes as f64;
    // nW x s = nJ.
    let no_gating_nj = costs.active_leakage_nw * duty.total_s();
    let gating_nj = costs.active_leakage_nw * duty.active_s * episodes
        + costs.sleep_leakage_nw * duty.idle_s * episodes
        + (costs.transition_nj + costs.protection_nj) * episodes;
    let saved_per_idle_nw = (costs.active_leakage_nw - costs.sleep_leakage_nw).max(1e-12);
    MissionReport {
        no_gating_uj: no_gating_nj / 1000.0,
        gating_uj: gating_nj / 1000.0,
        savings_pct: (no_gating_nj - gating_nj) / no_gating_nj.max(1e-12) * 100.0,
        break_even_idle_s: (costs.transition_nj + costs.protection_nj) / saved_per_idle_nw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> GatingCosts {
        GatingCosts {
            active_leakage_nw: 2600.0,
            sleep_leakage_nw: 300.0,
            transition_nj: 0.5,
            protection_nj: 2.3,
        }
    }

    #[test]
    fn long_idle_wins_big() {
        let r = mission_energy(
            &DutyCycle {
                active_s: 1e-3,
                idle_s: 100e-3,
                episodes: 100,
            },
            &costs(),
        );
        assert!(r.savings_pct > 80.0, "{r:?}");
        assert!(r.gating_uj < r.no_gating_uj);
    }

    #[test]
    fn very_short_idle_loses() {
        let r = mission_energy(
            &DutyCycle {
                active_s: 1e-3,
                idle_s: 100e-9, // 100 ns naps
                episodes: 100,
            },
            &costs(),
        );
        assert!(r.savings_pct < 0.0, "gating 100 ns naps must lose: {r:?}");
    }

    #[test]
    fn break_even_is_where_savings_cross_zero() {
        let c = costs();
        let be = mission_energy(
            &DutyCycle {
                active_s: 0.0,
                idle_s: 1.0,
                episodes: 1,
            },
            &c,
        )
        .break_even_idle_s;
        let just_below = mission_energy(
            &DutyCycle {
                active_s: 0.0,
                idle_s: be * 0.9,
                episodes: 10,
            },
            &c,
        );
        let just_above = mission_energy(
            &DutyCycle {
                active_s: 0.0,
                idle_s: be * 1.1,
                episodes: 10,
            },
            &c,
        );
        assert!(just_below.savings_pct < 0.0);
        assert!(just_above.savings_pct > 0.0);
    }

    #[test]
    fn protection_energy_raises_the_break_even() {
        let unprotected = GatingCosts {
            protection_nj: 0.0,
            ..costs()
        };
        let a = mission_energy(
            &DutyCycle {
                active_s: 0.0,
                idle_s: 1.0,
                episodes: 1,
            },
            &unprotected,
        );
        let b = mission_energy(
            &DutyCycle {
                active_s: 0.0,
                idle_s: 1.0,
                episodes: 1,
            },
            &costs(),
        );
        assert!(b.break_even_idle_s > a.break_even_idle_s);
    }

    #[test]
    fn duty_cycle_helpers() {
        let d = DutyCycle {
            active_s: 1.0,
            idle_s: 3.0,
            episodes: 5,
        };
        assert!((d.total_s() - 20.0).abs() < 1e-12);
        assert!((d.idle_fraction() - 0.75).abs() < 1e-12);
    }
}
