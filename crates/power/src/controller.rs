//! The conventional power-gating controller — paper Fig. 3(a).
//!
//! Active -> (sleep=1) save state -> switch off -> sleep ->
//! (sleep=0) switch on, wait for the rail -> restore state -> active.
//!
//! The proposed controller of Fig. 3(b) (with encode and decode/check
//! sequences wrapped around this one) lives in `scanguard-core`; both are
//! cycle-stepped FSMs so a testbench can drive a simulator from their
//! outputs.

/// Phases of the conventional controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PgPhase {
    /// Normal operation.
    Active,
    /// RETAIN raised; masters saved into retention latches.
    Save,
    /// Power switches opening.
    PowerDown,
    /// Domain gated off.
    Sleep,
    /// Power switches closed; waiting for the rail to stabilise.
    PowerUp,
    /// RETAIN dropped; retention latches restored into masters.
    Restore,
}

impl PgPhase {
    /// The phase name as it appears on the observability timeline.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PgPhase::Active => "Active",
            PgPhase::Save => "Save",
            PgPhase::PowerDown => "PowerDown",
            PgPhase::Sleep => "Sleep",
            PgPhase::PowerUp => "PowerUp",
            PgPhase::Restore => "Restore",
        }
    }
}

/// Per-cycle control outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PgOutputs {
    /// Level of the RETAIN control this cycle.
    pub retain: bool,
    /// Whether the domain's switches conduct this cycle.
    pub power_on: bool,
    /// `true` only in [`PgPhase::Active`]: functional state is valid.
    pub state_valid: bool,
}

/// Cycle counts of the timed phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ControllerTiming {
    /// Cycles spent in [`PgPhase::Save`].
    pub save_cycles: u64,
    /// Cycles spent in [`PgPhase::PowerUp`] waiting for the rail
    /// (derive from [`RushTransient::settle_cycles`] or
    /// [`WakeEvent::wake_cycles`]).
    ///
    /// [`RushTransient::settle_cycles`]: crate::RushTransient::settle_cycles
    /// [`WakeEvent::wake_cycles`]: crate::WakeEvent::wake_cycles
    pub wake_settle_cycles: u64,
}

impl Default for ControllerTiming {
    fn default() -> Self {
        ControllerTiming {
            save_cycles: 1,
            wake_settle_cycles: 4,
        }
    }
}

/// The Fig. 3(a) FSM.
///
/// # Examples
///
/// ```
/// use scanguard_power::{ConventionalController, ControllerTiming, PgPhase};
///
/// let mut pg = ConventionalController::new(ControllerTiming::default());
/// assert_eq!(pg.phase(), PgPhase::Active);
/// let out = pg.tick(true); // request sleep
/// assert!(out.retain, "save starts by raising RETAIN");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ConventionalController {
    phase: PgPhase,
    counter: u64,
    timing: ControllerTiming,
}

impl ConventionalController {
    /// Builds the controller in [`PgPhase::Active`].
    #[must_use]
    pub fn new(timing: ControllerTiming) -> Self {
        ConventionalController {
            phase: PgPhase::Active,
            counter: 0,
            timing,
        }
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> PgPhase {
        self.phase
    }

    /// Advances one cycle given the external `sleep` request and returns
    /// the control levels for the new cycle.
    pub fn tick(&mut self, sleep: bool) -> PgOutputs {
        self.phase = match self.phase {
            PgPhase::Active => {
                if sleep {
                    self.counter = 0;
                    PgPhase::Save
                } else {
                    PgPhase::Active
                }
            }
            PgPhase::Save => {
                self.counter += 1;
                if self.counter >= self.timing.save_cycles {
                    PgPhase::PowerDown
                } else {
                    PgPhase::Save
                }
            }
            PgPhase::PowerDown => PgPhase::Sleep,
            PgPhase::Sleep => {
                if sleep {
                    PgPhase::Sleep
                } else {
                    self.counter = 0;
                    PgPhase::PowerUp
                }
            }
            PgPhase::PowerUp => {
                self.counter += 1;
                if self.counter >= self.timing.wake_settle_cycles {
                    PgPhase::Restore
                } else {
                    PgPhase::PowerUp
                }
            }
            PgPhase::Restore => PgPhase::Active,
        };
        self.outputs()
    }

    /// [`tick`](Self::tick) with a phase timeline: transitions are
    /// recorded as spans on `log`'s lane (cycle counts attached on
    /// close), so a testbench driving this FSM gets the Fig. 3(a)
    /// sleep/wake sequence as one trace lane for free. `cycle` is the
    /// caller's logical clock.
    pub fn tick_obs(
        &mut self,
        sleep: bool,
        rec: &scanguard_obs::Recorder,
        log: &mut scanguard_obs::PhaseLog,
        cycle: u64,
    ) -> PgOutputs {
        let out = self.tick(sleep);
        log.transition(rec, self.phase.name(), cycle, Vec::new());
        out
    }

    /// Control levels of the current phase.
    #[must_use]
    pub fn outputs(&self) -> PgOutputs {
        match self.phase {
            PgPhase::Active => PgOutputs {
                retain: false,
                power_on: true,
                state_valid: true,
            },
            PgPhase::Save => PgOutputs {
                retain: true,
                power_on: true,
                state_valid: false,
            },
            PgPhase::PowerDown | PgPhase::Sleep => PgOutputs {
                retain: true,
                power_on: false,
                state_valid: false,
            },
            PgPhase::PowerUp => PgOutputs {
                retain: true,
                power_on: true,
                state_valid: false,
            },
            PgPhase::Restore => PgOutputs {
                retain: false,
                power_on: true,
                state_valid: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until(pg: &mut ConventionalController, sleep: bool, phase: PgPhase, max: u32) {
        for _ in 0..max {
            if pg.phase() == phase {
                return;
            }
            pg.tick(sleep);
        }
        panic!("never reached {phase:?} (stuck at {:?})", pg.phase());
    }

    #[test]
    fn full_sleep_wake_cycle_visits_all_phases() {
        let mut pg = ConventionalController::new(ControllerTiming {
            save_cycles: 2,
            wake_settle_cycles: 3,
        });
        assert_eq!(pg.phase(), PgPhase::Active);
        run_until(&mut pg, true, PgPhase::Sleep, 10);
        // Stays asleep while requested.
        pg.tick(true);
        assert_eq!(pg.phase(), PgPhase::Sleep);
        run_until(&mut pg, false, PgPhase::Active, 10);
    }

    #[test]
    fn retain_envelope_covers_the_power_gap() {
        // RETAIN must be high strictly before power drops and until after
        // power returns — otherwise state is lost.
        let mut pg = ConventionalController::new(ControllerTiming::default());
        let mut saw_power_off = false;
        let mut sleep = true;
        for cycle in 0..40 {
            if cycle > 20 {
                sleep = false;
            }
            let out = pg.tick(sleep);
            if !out.power_on {
                saw_power_off = true;
                assert!(out.retain, "power off while RETAIN low loses state");
            }
        }
        assert!(saw_power_off);
        assert_eq!(pg.phase(), PgPhase::Active);
    }

    #[test]
    fn wake_settle_is_respected() {
        let mut pg = ConventionalController::new(ControllerTiming {
            save_cycles: 1,
            wake_settle_cycles: 5,
        });
        run_until(&mut pg, true, PgPhase::Sleep, 10);
        let mut settle = 0;
        loop {
            let out = pg.tick(false);
            if pg.phase() == PgPhase::PowerUp {
                settle += 1;
                assert!(out.power_on && out.retain);
            }
            if pg.phase() == PgPhase::Restore {
                break;
            }
            assert!(settle < 20);
        }
        assert_eq!(settle, 5);
    }

    #[test]
    fn tick_obs_records_the_phase_timeline() {
        use scanguard_obs::{EventKind, Lane, PhaseLog, Recorder, RecorderConfig};
        let rec = Recorder::new(RecorderConfig {
            trace: true,
            ..RecorderConfig::default()
        });
        let mut log = PhaseLog::new(Lane::Controller);
        let mut pg = ConventionalController::new(ControllerTiming::default());
        let mut cycle = 0u64;
        for _ in 0..8 {
            pg.tick_obs(true, &rec, &mut log, cycle);
            cycle += 1;
        }
        while pg.phase() != PgPhase::Active {
            pg.tick_obs(false, &rec, &mut log, cycle);
            cycle += 1;
        }
        log.finish(&rec, cycle, Vec::new());
        let opened: Vec<String> = rec
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Begin)
            .map(|e| e.name.clone())
            .collect();
        assert_eq!(
            opened,
            vec!["Save", "PowerDown", "Sleep", "PowerUp", "Restore", "Active"],
            "the Fig. 3(a) sequence, one span per phase"
        );
    }

    #[test]
    fn active_is_the_only_state_valid_phase() {
        let pg = ConventionalController::new(ControllerTiming::default());
        assert!(pg.outputs().state_valid);
        let mut pg2 = pg.clone();
        pg2.tick(true);
        assert!(!pg2.outputs().state_valid);
    }
}
