//! Rush-current transients — the physical mechanism the paper protects
//! against.
//!
//! When a gated domain's power switches close, the discharged internal
//! capacitance charges through the switch resistance and the supply
//! loop inductance: a series RLC step response (the model of the paper's
//! reference [7], Kim et al., ISLPED'03). The resulting current spike
//! drops voltage across the shared rail impedance — *ground bounce* —
//! which can flip the always-on retention latches hanging off that rail.
//!
//! [`PowerNetwork::transient`] solves the step response in closed form
//! (underdamped, critically damped and overdamped cases), samples the
//! waveform, and reports the peak current and a first-order bounce
//! estimate `V_bounce = R_shared * I_peak + L_shared * (dI/dt)_char`.

/// Electrical model of one power-gated domain's supply network.
///
/// # Examples
///
/// ```
/// use scanguard_power::PowerNetwork;
///
/// let net = PowerNetwork::default_120nm();
/// let full = net.transient(1.0);
/// let soft = net.transient(0.05);
/// assert!(full.peak_current_a > soft.peak_current_a);
/// assert!(full.peak_bounce_v > soft.peak_bounce_v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerNetwork {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// On-resistance of the *full* switch bank in ohms (scales as
    /// `r / fraction` when only a fraction of switches conduct).
    pub full_bank_resistance: f64,
    /// Supply loop inductance in henries (package + grid).
    pub loop_inductance: f64,
    /// Domain capacitance to charge in farads (circuit + decap).
    pub domain_capacitance: f64,
    /// Shared-rail resistance in ohms, through which the rush current
    /// couples into the always-on (retention) rail.
    pub shared_resistance: f64,
    /// Shared-rail inductance in henries.
    pub shared_inductance: f64,
    /// Response time constant of a retention latch in seconds: bounce
    /// spikes much shorter than this cannot flip a latch, so the
    /// reported peak bounce is the raw waveform low-pass filtered at
    /// this constant.
    pub latch_response_s: f64,
}

impl PowerNetwork {
    /// A plausible 120nm-class network for a block of ~1k flip-flops:
    /// 1.2 V, 2 ohm full bank, 1 nH loop, 400 pF domain capacitance,
    /// 0.5 ohm / 0.5 nH shared rail, 0.5 ns latch response.
    #[must_use]
    pub fn default_120nm() -> Self {
        PowerNetwork {
            vdd: 1.2,
            full_bank_resistance: 2.0,
            loop_inductance: 1.0e-9,
            domain_capacitance: 400.0e-12,
            shared_resistance: 0.5,
            shared_inductance: 0.5e-9,
            latch_response_s: 0.5e-9,
        }
    }

    /// Solves the wake transient when `switch_fraction` of the bank
    /// conducts (`0 < fraction <= 1`) and the domain rail starts
    /// `voltage_deficit` volts below `vdd` (1.0 = fully discharged).
    ///
    /// # Panics
    ///
    /// Panics if `switch_fraction` is not in `(0, 1]` or
    /// `voltage_deficit` not in `[0, 1]`.
    #[must_use]
    pub fn transient_from(&self, switch_fraction: f64, voltage_deficit: f64) -> RushTransient {
        assert!(
            switch_fraction > 0.0 && switch_fraction <= 1.0,
            "switch fraction must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&voltage_deficit),
            "voltage deficit must be in [0, 1]"
        );
        let r = self.full_bank_resistance / switch_fraction + self.shared_resistance;
        let l = self.loop_inductance + self.shared_inductance;
        let c = self.domain_capacitance;
        let v = self.vdd * voltage_deficit;

        let alpha = r / (2.0 * l);
        let w0_sq = 1.0 / (l * c);
        let disc = alpha * alpha - w0_sq;

        // Sample i(t) over ~8 characteristic time constants.
        let t_char = if disc > 0.0 {
            // Overdamped: slowest pole dominates.
            let s_slow = -alpha + disc.sqrt(); // closest to zero (negative)
            1.0 / s_slow.abs()
        } else {
            1.0 / alpha
        };
        let t_end = 8.0 * t_char;
        let n = 2000usize;
        let dt = t_end / n as f64;
        let current_at: Box<dyn Fn(f64) -> f64> = if disc > 1e-24 {
            let s1 = -alpha + disc.sqrt();
            let s2 = -alpha - disc.sqrt();
            let k = v / (l * (s1 - s2));
            Box::new(move |t: f64| k * ((s1 * t).exp() - (s2 * t).exp()))
        } else if disc < -1e-24 {
            let wd = (-disc).sqrt();
            let k = v / (l * wd);
            Box::new(move |t: f64| k * (-alpha * t).exp() * (wd * t).sin())
        } else {
            let k = v / l;
            Box::new(move |t: f64| k * t * (-alpha * t).exp())
        };

        let mut samples = Vec::with_capacity(n + 1);
        let mut peak_i: f64 = 0.0;
        let mut peak_didt: f64 = 0.0;
        let mut prev_i = 0.0;
        let mut settle_time = t_end;
        // Shared-rail bounce waveform, low-pass filtered at the latch
        // response constant: only bounce sustained long enough to move a
        // latch counts.
        let alpha_f = (dt / self.latch_response_s).min(1.0);
        let mut bounce_filt = 0.0f64;
        let mut peak_bounce: f64 = 0.0;
        for step in 0..=n {
            let t = step as f64 * dt;
            let i = current_at(t);
            peak_i = peak_i.max(i.abs());
            let didt = if step > 0 { (i - prev_i) / dt } else { 0.0 };
            peak_didt = peak_didt.max(didt.abs());
            let bounce_raw = (self.shared_resistance * i + self.shared_inductance * didt).abs();
            bounce_filt += alpha_f * (bounce_raw - bounce_filt);
            peak_bounce = peak_bounce.max(bounce_filt);
            samples.push(Sample {
                t_s: t,
                current_a: i,
            });
            prev_i = i;
        }
        // Settle: last time |i| exceeded 5% of peak.
        for s in samples.iter().rev() {
            if s.current_a.abs() > 0.05 * peak_i {
                settle_time = s.t_s;
                break;
            }
        }
        RushTransient {
            peak_current_a: peak_i,
            peak_di_dt: peak_didt,
            peak_bounce_v: peak_bounce,
            settle_time_s: settle_time,
            underdamped: disc < 0.0,
            samples,
        }
    }

    /// Full-deficit wake transient (the common case: domain fully
    /// discharged during sleep).
    ///
    /// # Panics
    ///
    /// Panics if `switch_fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn transient(&self, switch_fraction: f64) -> RushTransient {
        self.transient_from(switch_fraction, 1.0)
    }
}

/// One waveform sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// Time since switch closure, seconds.
    pub t_s: f64,
    /// Instantaneous rush current, amperes.
    pub current_a: f64,
}

/// Result of solving one wake transient.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RushTransient {
    /// Peak rush current, A.
    pub peak_current_a: f64,
    /// Peak current slope, A/s.
    pub peak_di_dt: f64,
    /// First-order shared-rail bounce estimate, V.
    pub peak_bounce_v: f64,
    /// Time for the current to decay below 5% of peak, s.
    pub settle_time_s: f64,
    /// `true` when the response rings (underdamped).
    pub underdamped: bool,
    /// Sampled waveform.
    pub samples: Vec<Sample>,
}

impl RushTransient {
    /// Settle time expressed in clock cycles at `clock_mhz` (rounded up,
    /// minimum 1) — the "wait until the power supply becomes stable" step
    /// of the wake-up sequence.
    #[must_use]
    pub fn settle_cycles(&self, clock_mhz: f64) -> u64 {
        let period_s = 1.0e-6 / clock_mhz;
        ((self.settle_time_s / period_s).ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bank_wake_rings_and_bounces_hard() {
        let net = PowerNetwork::default_120nm();
        let t = net.transient(1.0);
        assert!(t.underdamped, "low-R wake should ring");
        assert!(t.peak_current_a > 0.1, "rush current should be substantial");
        assert!(t.peak_bounce_v > 0.05);
    }

    #[test]
    fn small_switch_fraction_damps_the_transient() {
        let net = PowerNetwork::default_120nm();
        let soft = net.transient(0.02);
        let hard = net.transient(1.0);
        assert!(!soft.underdamped, "high-R wake should be overdamped");
        assert!(soft.peak_current_a < 0.2 * hard.peak_current_a);
        assert!(soft.peak_bounce_v < 0.5 * hard.peak_bounce_v);
    }

    #[test]
    fn bounce_is_monotone_in_switch_fraction() {
        let net = PowerNetwork::default_120nm();
        let fractions = [0.05, 0.1, 0.25, 0.5, 1.0];
        let bounces: Vec<f64> = fractions
            .iter()
            .map(|&f| net.transient(f).peak_bounce_v)
            .collect();
        for w in bounces.windows(2) {
            assert!(w[0] < w[1], "bounce must grow with conducting fraction");
        }
    }

    #[test]
    fn zero_deficit_means_no_rush() {
        let net = PowerNetwork::default_120nm();
        let t = net.transient_from(1.0, 0.0);
        assert!(t.peak_current_a < 1e-12);
        assert!(t.peak_bounce_v < 1e-12);
    }

    #[test]
    fn settle_cycles_scale_with_clock() {
        let net = PowerNetwork::default_120nm();
        let t = net.transient(1.0);
        let at100 = t.settle_cycles(100.0);
        let at200 = t.settle_cycles(200.0);
        assert!(at200 >= at100, "faster clock means more settle cycles");
        assert!(at100 >= 1);
    }

    #[test]
    #[should_panic(expected = "switch fraction")]
    fn zero_fraction_panics() {
        let _ = PowerNetwork::default_120nm().transient(0.0);
    }

    #[test]
    fn waveform_starts_at_zero_current() {
        let net = PowerNetwork::default_120nm();
        let t = net.transient(0.5);
        assert!(t.samples[0].current_a.abs() < 1e-15);
        assert!(t.samples.len() > 100);
    }
}
