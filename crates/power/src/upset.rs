//! Retention-latch upset model.
//!
//! Converts a wake-up's shared-rail bounce into bit flips in the
//! retention latch array. Two physically-motivated properties shape the
//! model, both of which the paper's Sec. IV observations depend on:
//!
//! 1. **Thresholding with variation** — a latch flips when the local
//!    bounce exceeds its static noise margin; margins vary latch-to-latch
//!    (process variation), so upsets appear probabilistically near the
//!    threshold.
//! 2. **Spatial clustering** — bounce is strongest near the switch bank
//!    and decays along the rail, so when multiple latches flip they are
//!    *closely clustered* ("burst errors ... closely clustered",
//!    Sec. IV) — exactly the error shape that defeats plain Hamming
//!    correction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the upset model.
///
/// # Examples
///
/// ```
/// use scanguard_power::UpsetModel;
///
/// let model = UpsetModel::default_120nm();
/// // A mild bounce far below margin upsets nothing.
/// assert!(model.upsets(0.05, 1040, 7).is_empty());
/// // A violent bounce upsets a *cluster* of latches.
/// let hits = model.upsets(0.9, 1040, 7);
/// if hits.len() >= 2 {
///     let spread = hits.iter().max().unwrap() - hits.iter().min().unwrap();
///     assert!(spread < 1040 / 4, "upsets cluster near the epicentre");
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UpsetModel {
    /// Mean static noise margin of a retention latch, V.
    pub noise_margin_v: f64,
    /// Latch-to-latch margin standard deviation, V.
    pub margin_sigma_v: f64,
    /// Spatial decay length of the bounce along the latch array, as a
    /// fraction of the array length.
    pub decay_lambda: f64,
}

impl UpsetModel {
    /// Margins of a 120nm retention latch *during the wake-up window*
    /// (the latch holds data with its keeper weakly biased, so its
    /// dynamic margin is far below the static noise margin): 0.18 V
    /// mean, 0.02 V sigma, bounce decaying over ~3% of the array.
    #[must_use]
    pub fn default_120nm() -> Self {
        UpsetModel {
            noise_margin_v: 0.18,
            margin_sigma_v: 0.02,
            decay_lambda: 0.03,
        }
    }

    /// Computes which latch indices (0..`latches`) flip for a wake-up
    /// with the given peak bounce. The epicentre (the latch nearest the
    /// conducting switch group) is drawn from the seeded RNG, as is the
    /// per-latch margin variation; the same seed reproduces the same
    /// event.
    #[must_use]
    pub fn upsets(&self, peak_bounce_v: f64, latches: usize, seed: u64) -> Vec<usize> {
        if latches == 0 || peak_bounce_v <= 0.0 {
            return Vec::new();
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let epicentre = rng.gen_range(0..latches);
        let lambda = (self.decay_lambda * latches as f64).max(1.0);
        let mut flips = Vec::new();
        for i in 0..latches {
            let d = (i as isize - epicentre as isize).unsigned_abs() as f64;
            let local = peak_bounce_v * (-d / lambda).exp();
            // Gaussian margin via Box-Muller on two uniforms.
            let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen());
            let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let margin = self.noise_margin_v + self.margin_sigma_v * gauss;
            if local > margin {
                flips.push(i);
            }
        }
        flips
    }

    /// Probability that a wake-up with the given bounce upsets at least
    /// one of `latches`, estimated over `trials` seeded Monte-Carlo
    /// draws.
    #[must_use]
    pub fn upset_probability(
        &self,
        peak_bounce_v: f64,
        latches: usize,
        trials: u64,
        seed: u64,
    ) -> f64 {
        if trials == 0 {
            return 0.0;
        }
        let mut hits = 0u64;
        for t in 0..trials {
            if !self
                .upsets(peak_bounce_v, latches, seed.wrapping_add(t))
                .is_empty()
            {
                hits += 1;
            }
        }
        hits as f64 / trials as f64
    }
}

impl Default for UpsetModel {
    fn default() -> Self {
        UpsetModel::default_120nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_bounce_no_upsets() {
        let m = UpsetModel::default_120nm();
        assert!(m.upsets(0.0, 1000, 1).is_empty());
        assert!(m.upsets(-1.0, 1000, 1).is_empty());
        assert!(m.upsets(1.0, 0, 1).is_empty());
    }

    #[test]
    fn severe_bounce_upsets_many() {
        let m = UpsetModel::default_120nm();
        // Bounce at 2x margin: epicentre region must flip.
        let hits = m.upsets(0.9, 1000, 42);
        assert!(!hits.is_empty());
    }

    #[test]
    fn upsets_are_clustered() {
        let m = UpsetModel::default_120nm();
        let mut multi_events = 0;
        let mut clustered = 0;
        for seed in 0..200 {
            let hits = m.upsets(0.8, 1040, seed);
            if hits.len() >= 2 {
                multi_events += 1;
                let spread = hits.iter().max().unwrap() - hits.iter().min().unwrap();
                if spread <= (1040_f64 * m.decay_lambda * 6.0) as usize {
                    clustered += 1;
                }
            }
        }
        assert!(
            multi_events > 20,
            "0.8 V should often upset several latches"
        );
        assert!(
            clustered as f64 > 0.95 * multi_events as f64,
            "multi-upsets must be spatially clustered ({clustered}/{multi_events})"
        );
    }

    #[test]
    fn probability_is_monotone_in_bounce() {
        let m = UpsetModel::default_120nm();
        let lo = m.upset_probability(0.30, 1040, 300, 9);
        let mid = m.upset_probability(0.45, 1040, 300, 9);
        let hi = m.upset_probability(0.70, 1040, 300, 9);
        assert!(lo <= mid && mid <= hi, "{lo} {mid} {hi}");
        assert!(hi > 0.5);
    }

    #[test]
    fn same_seed_reproduces_event() {
        let m = UpsetModel::default_120nm();
        assert_eq!(m.upsets(0.6, 500, 123), m.upsets(0.6, 500, 123));
    }

    #[test]
    fn different_seeds_move_the_epicentre() {
        let m = UpsetModel::default_120nm();
        let a = m.upsets(0.9, 2000, 1);
        let b = m.upsets(0.9, 2000, 2);
        assert_ne!(a, b);
    }
}
