//! Wake-up strategies: the full-bank baseline and the rush-current
//! reduction techniques of the paper's references [7] (staggered /
//! gate-voltage-controlled turn-on) and [8] (pump-capacitor slow
//! activation with a voltage monitor).
//!
//! The paper's position (Sec. I) is that these techniques *reduce* the
//! probability of retention upsets but cannot *correct* any state that is
//! corrupted anyway; the `ablation_rush` bench quantifies exactly that
//! trade-off using these models.

use crate::{PowerNetwork, RushTransient};

/// How the switch bank is activated on wake-up.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WakeStrategy {
    /// All switches close at once: fastest wake, worst bounce.
    FullBank,
    /// Switches close in `groups` equal steps, each step settling before
    /// the next (ref \[7\]): the first (small) group charges the domain
    /// through a high resistance, later groups see no voltage deficit.
    Staggered {
        /// Number of activation steps (>= 2).
        groups: usize,
    },
    /// The gate voltage ramps over `ramp_factor` characteristic times
    /// (ref \[8\], pump-capacitor activation): modelled as the full bank
    /// conducting a small effective fraction during the charge.
    SlowRamp {
        /// How much longer than a full-bank wake the ramp takes (> 1).
        ramp_factor: f64,
    },
}

/// Outcome of one wake-up under a strategy.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WakeEvent {
    /// Worst shared-rail bounce over all steps, V.
    pub peak_bounce_v: f64,
    /// Total wake time until the rail is stable, s.
    pub wake_time_s: f64,
    /// Per-step transients (one for [`WakeStrategy::FullBank`] /
    /// [`WakeStrategy::SlowRamp`], `groups` for staggered).
    pub steps: Vec<RushTransient>,
}

impl WakeEvent {
    /// Wake latency in clock cycles at `clock_mhz` (rounded up, min 1).
    #[must_use]
    pub fn wake_cycles(&self, clock_mhz: f64) -> u64 {
        let period_s = 1.0e-6 / clock_mhz;
        ((self.wake_time_s / period_s).ceil() as u64).max(1)
    }
}

impl WakeStrategy {
    /// Simulates a wake-up of a fully discharged domain over `network`.
    ///
    /// # Panics
    ///
    /// Panics for degenerate parameters (`groups < 2`,
    /// `ramp_factor <= 1`).
    #[must_use]
    pub fn wake(&self, network: &PowerNetwork) -> WakeEvent {
        match *self {
            WakeStrategy::FullBank => {
                let t = network.transient(1.0);
                WakeEvent {
                    peak_bounce_v: t.peak_bounce_v,
                    wake_time_s: t.settle_time_s,
                    steps: vec![t],
                }
            }
            WakeStrategy::Staggered { groups } => {
                assert!(groups >= 2, "staggering needs at least 2 groups");
                let mut steps = Vec::with_capacity(groups);
                let mut peak: f64 = 0.0;
                let mut total_time = 0.0;
                // Step g closes groups (g+1)/groups of the bank; the
                // voltage deficit is carried by the first step (each step
                // settles before the next, so later steps see ~0 deficit,
                // apart from a small droop we model as 3% re-charge).
                for g in 0..groups {
                    let fraction = (g + 1) as f64 / groups as f64;
                    let deficit = if g == 0 { 1.0 } else { 0.03 };
                    let t = network.transient_from(fraction, deficit);
                    peak = peak.max(t.peak_bounce_v);
                    total_time += t.settle_time_s;
                    steps.push(t);
                }
                WakeEvent {
                    peak_bounce_v: peak,
                    wake_time_s: total_time,
                    steps,
                }
            }
            WakeStrategy::SlowRamp { ramp_factor } => {
                assert!(ramp_factor > 1.0, "ramp factor must exceed 1");
                // An effective conducting fraction of 1/ramp_factor
                // stretches the charge over ~ramp_factor characteristic
                // times while capping the current.
                let t = network.transient(1.0 / ramp_factor);
                WakeEvent {
                    peak_bounce_v: t.peak_bounce_v,
                    wake_time_s: t.settle_time_s,
                    steps: vec![t],
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_techniques_reduce_bounce_but_cost_latency() {
        let net = PowerNetwork::default_120nm();
        let full = WakeStrategy::FullBank.wake(&net);
        let stag = WakeStrategy::Staggered { groups: 8 }.wake(&net);
        let ramp = WakeStrategy::SlowRamp { ramp_factor: 20.0 }.wake(&net);
        assert!(stag.peak_bounce_v < full.peak_bounce_v);
        assert!(ramp.peak_bounce_v < full.peak_bounce_v);
        assert!(stag.wake_time_s > full.wake_time_s);
        assert!(ramp.wake_time_s > full.wake_time_s);
    }

    #[test]
    fn more_groups_bounce_less() {
        let net = PowerNetwork::default_120nm();
        let few = WakeStrategy::Staggered { groups: 2 }.wake(&net);
        let many = WakeStrategy::Staggered { groups: 16 }.wake(&net);
        assert!(many.peak_bounce_v < few.peak_bounce_v);
    }

    #[test]
    fn staggered_produces_one_transient_per_group() {
        let net = PowerNetwork::default_120nm();
        let e = WakeStrategy::Staggered { groups: 5 }.wake(&net);
        assert_eq!(e.steps.len(), 5);
    }

    #[test]
    fn wake_cycles_round_up() {
        let net = PowerNetwork::default_120nm();
        let e = WakeStrategy::FullBank.wake(&net);
        assert!(e.wake_cycles(100.0) >= 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 groups")]
    fn single_group_stagger_panics() {
        let _ = WakeStrategy::Staggered { groups: 1 }.wake(&PowerNetwork::default_120nm());
    }
}
