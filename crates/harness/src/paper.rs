//! The paper's published numbers, transcribed from Tables I–III and
//! Fig. 10, so every bench can print *paper vs. measured* side by side.
//!
//! Absolute values are not expected to match — the paper measured an ST
//! 120nm library through Synopsys/Cadence tooling, this reproduction
//! measures a calibrated library through its own gate-level simulator —
//! but the trends (who wins, by what factor, where the knees are) are
//! the reproduction target.

/// One row of the paper's Table I or II.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PaperCostRow {
    /// Chains `W`.
    pub chains: usize,
    /// Chain length `l`.
    pub chain_len: usize,
    /// Total area, um^2.
    pub area_um2: f64,
    /// Overhead, %.
    pub overhead_pct: f64,
    /// Encode power, mW.
    pub enc_power_mw: f64,
    /// Decode power, mW.
    pub dec_power_mw: f64,
    /// Latency, ns.
    pub latency_ns: f64,
    /// Encode energy, nJ.
    pub enc_energy_nj: f64,
    /// Decode energy, nJ.
    pub dec_energy_nj: f64,
}

/// Paper Table I: 32x32 FIFO, CRC-16, 120nm, 100 MHz.
pub const TABLE1: [PaperCostRow; 5] = [
    PaperCostRow {
        chains: 4,
        chain_len: 260,
        area_um2: 73658.0,
        overhead_pct: 2.8,
        enc_power_mw: 4.99,
        dec_power_mw: 4.99,
        latency_ns: 2600.0,
        enc_energy_nj: 12.97,
        dec_energy_nj: 12.97,
    },
    PaperCostRow {
        chains: 8,
        chain_len: 130,
        area_um2: 73928.0,
        overhead_pct: 3.2,
        enc_power_mw: 4.96,
        dec_power_mw: 4.97,
        latency_ns: 1300.0,
        enc_energy_nj: 6.45,
        dec_energy_nj: 6.46,
    },
    PaperCostRow {
        chains: 16,
        chain_len: 65,
        area_um2: 74614.0,
        overhead_pct: 4.2,
        enc_power_mw: 4.96,
        dec_power_mw: 4.98,
        latency_ns: 650.0,
        enc_energy_nj: 3.22,
        dec_energy_nj: 3.24,
    },
    PaperCostRow {
        chains: 40,
        chain_len: 26,
        area_um2: 75762.0,
        overhead_pct: 5.8,
        enc_power_mw: 5.13,
        dec_power_mw: 5.17,
        latency_ns: 260.0,
        enc_energy_nj: 1.33,
        dec_energy_nj: 1.34,
    },
    PaperCostRow {
        chains: 80,
        chain_len: 13,
        area_um2: 78208.0,
        overhead_pct: 9.2,
        enc_power_mw: 5.14,
        dec_power_mw: 5.25,
        latency_ns: 130.0,
        enc_energy_nj: 0.67,
        dec_energy_nj: 0.68,
    },
];

/// Paper Table II: 32x32 FIFO, Hamming(7,4), 120nm, 100 MHz.
pub const TABLE2: [PaperCostRow; 5] = [
    PaperCostRow {
        chains: 4,
        chain_len: 260,
        area_um2: 120594.0,
        overhead_pct: 68.4,
        enc_power_mw: 6.76,
        dec_power_mw: 6.72,
        latency_ns: 2600.0,
        enc_energy_nj: 17.58,
        dec_energy_nj: 17.47,
    },
    PaperCostRow {
        chains: 8,
        chain_len: 130,
        area_um2: 121552.0,
        overhead_pct: 69.7,
        enc_power_mw: 6.91,
        dec_power_mw: 6.86,
        latency_ns: 1300.0,
        enc_energy_nj: 8.98,
        dec_energy_nj: 8.92,
    },
    PaperCostRow {
        chains: 16,
        chain_len: 65,
        area_um2: 123303.0,
        overhead_pct: 72.1,
        enc_power_mw: 7.11,
        dec_power_mw: 7.00,
        latency_ns: 650.0,
        enc_energy_nj: 4.62,
        dec_energy_nj: 4.55,
    },
    PaperCostRow {
        chains: 40,
        chain_len: 26,
        area_um2: 126811.0,
        overhead_pct: 77.0,
        enc_power_mw: 7.72,
        dec_power_mw: 7.45,
        latency_ns: 260.0,
        enc_energy_nj: 2.00,
        dec_energy_nj: 1.94,
    },
    PaperCostRow {
        chains: 80,
        chain_len: 13,
        area_um2: 134141.0,
        overhead_pct: 87.3,
        enc_power_mw: 8.43,
        dec_power_mw: 8.05,
        latency_ns: 130.0,
        enc_energy_nj: 1.08,
        dec_energy_nj: 1.05,
    },
];

/// One row of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct PaperTable3Row {
    /// Code name.
    pub code: &'static str,
    /// Chains `W`.
    pub chains: usize,
    /// FIFO (baseline) area, um^2.
    pub fifo_area_um2: f64,
    /// Total area, um^2.
    pub total_area_um2: f64,
    /// Overhead, %.
    pub overhead_pct: f64,
    /// Encode power, mW.
    pub enc_power_mw: f64,
    /// Decode power, mW.
    pub dec_power_mw: f64,
    /// Correction capability, %.
    pub capability_pct: f64,
}

/// Paper Table III: Hamming family on the 32x32 FIFO.
pub const TABLE3: [PaperTable3Row; 4] = [
    PaperTable3Row {
        code: "Hamming(7,4)",
        chains: 56,
        fifo_area_um2: 71628.0,
        total_area_um2: 132338.0,
        overhead_pct: 84.8,
        enc_power_mw: 8.21,
        dec_power_mw: 7.84,
        capability_pct: 14.3,
    },
    PaperTable3Row {
        code: "Hamming(15,11)",
        chains: 55,
        fifo_area_um2: 71628.0,
        total_area_um2: 101681.0,
        overhead_pct: 42.0,
        enc_power_mw: 6.52,
        dec_power_mw: 6.34,
        capability_pct: 6.67,
    },
    PaperTable3Row {
        code: "Hamming(31,26)",
        chains: 52,
        fifo_area_um2: 71628.0,
        total_area_um2: 88311.0,
        overhead_pct: 23.2,
        enc_power_mw: 5.89,
        dec_power_mw: 5.82,
        capability_pct: 3.23,
    },
    PaperTable3Row {
        code: "Hamming(63,57)",
        chains: 57,
        fifo_area_um2: 71628.0,
        total_area_um2: 82987.0,
        overhead_pct: 15.9,
        enc_power_mw: 5.64,
        dec_power_mw: 5.62,
        capability_pct: 1.59,
    },
];

/// Fig. 10 anchor points quoted in the paper's text:
/// `(code, injected errors, corrected %)`.
pub const FIG10_ANCHORS: [(&str, usize, f64); 4] = [
    ("Hamming(7,4)", 2, 98.81),
    ("Hamming(7,4)", 10, 94.14),
    ("Hamming(63,57)", 2, 88.65),
    ("Hamming(63,57)", 10, 52.96),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcribed_tables_are_internally_consistent() {
        for (t1, t2) in TABLE1.iter().zip(&TABLE2) {
            assert_eq!(t1.chains, t2.chains);
            assert_eq!(t1.chain_len, t2.chain_len);
            // Latency = l x 10 ns at 100 MHz.
            assert!((t1.latency_ns - t1.chain_len as f64 * 10.0).abs() < 1e-9);
            // Energy ~ power x latency (paper rounds to 2 decimals).
            let e = t1.enc_power_mw * t1.latency_ns / 1000.0;
            assert!(
                (e - t1.enc_energy_nj).abs() < 0.03,
                "{e} vs {}",
                t1.enc_energy_nj
            );
        }
        // W x l = 1040 in every sweep row.
        for r in &TABLE1 {
            assert_eq!(r.chains * r.chain_len, 1040);
        }
    }

    #[test]
    fn table3_overheads_match_area_ratios() {
        for r in &TABLE3 {
            let pct = (r.total_area_um2 - r.fifo_area_um2) / r.fifo_area_um2 * 100.0;
            assert!((pct - r.overhead_pct).abs() < 0.3, "{}: {pct}", r.code);
        }
    }
}
