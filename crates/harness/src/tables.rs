//! Minimal fixed-width table rendering for the bench reports.

use std::fmt::Write as _;

/// Renders a titled table: a rule, the title, the header, the rows.
///
/// # Examples
///
/// ```
/// use scanguard_harness::render_table;
///
/// let out = render_table("Table I", "W l", &["4 260".to_owned()]);
/// assert!(out.contains("Table I"));
/// assert!(out.contains("4 260"));
/// ```
#[must_use]
pub fn render_table(title: &str, header: &str, rows: &[String]) -> String {
    let width = header
        .len()
        .max(rows.iter().map(String::len).max().unwrap_or(0))
        .max(title.len());
    let mut out = String::new();
    let _ = writeln!(out, "{}", "=".repeat(width));
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{}", "-".repeat(width));
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(width));
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    let _ = writeln!(out, "{}", "=".repeat(width));
    out
}

/// Renders and prints a table to stdout.
pub fn print_table(title: &str, header: &str, rows: &[String]) {
    print!("{}", render_table(title, header, rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_parts() {
        let t = render_table("T", "h1 h2", &["a b".to_owned(), "c d".to_owned()]);
        assert!(t.contains("T\n"));
        assert!(t.contains("h1 h2"));
        assert!(t.contains("a b"));
        assert!(t.contains("c d"));
        assert!(t.starts_with('='));
    }

    #[test]
    fn width_tracks_longest_row() {
        let t = render_table("T", "h", &["a very considerably long row".to_owned()]);
        let rule_len = t.lines().next().unwrap().len();
        assert_eq!(rule_len, "a very considerably long row".len());
    }
}
