//! The paper's Fig. 8 testbench: a protected FIFO_A, a golden software
//! FIFO_B, a stimulus generator, a comparator and event counters.
//!
//! Each *test sequence* follows the paper's five stages: (1) reset both
//! FIFOs, (2) write the same random data to both, (3) send FIFO_A to
//! sleep, (4) wake it (injecting errors in the rush-current window),
//! (5) read both FIFOs and compare. The counters record what the paper's
//! Sec. IV experiments report: errors reported by FIFO_A's monitor and
//! mismatches flagged by the comparator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scanguard_core::{CodeChoice, CoreError, ProtectedDesign, Synthesizer};
use scanguard_designs::{Fifo, FifoModel};
use scanguard_dft::ScanChains;
use scanguard_netlist::Logic;
use scanguard_sim::Simulator;

/// How errors are injected into FIFO_A's retention latches at wake-up.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum InjectionMode {
    /// No injection (sanity runs).
    None,
    /// One random retention bit per sequence (paper experiment 1).
    Single,
    /// A clustered burst of 2..=`max_span` adjacent chains at one depth
    /// (paper experiment 2 / Fig. 7(b)).
    Burst {
        /// Maximum chains in the burst.
        max_span: usize,
    },
}

/// Counters produced by a validation run — the "Counter" block of
/// Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct ValidationStats {
    /// Test sequences executed.
    pub sequences: u64,
    /// Total retention bits flipped by the injector.
    pub injected_bits: u64,
    /// Sequences in which FIFO_A's monitor raised an error.
    pub errors_reported: u64,
    /// Sequences whose post-wake state fully matched the pre-sleep state
    /// (correction succeeded or nothing was injected).
    pub sequences_recovered: u64,
    /// Sequences where the comparator found FIFO_A != FIFO_B.
    pub comparator_mismatches: u64,
}

impl ValidationStats {
    /// Detection rate over sequences that had injections.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.sequences == 0 {
            return 0.0;
        }
        self.errors_reported as f64 / self.sequences as f64
    }

    /// Recovery (correction) rate.
    #[must_use]
    pub fn recovery_rate(&self) -> f64 {
        if self.sequences == 0 {
            return 0.0;
        }
        self.sequences_recovered as f64 / self.sequences as f64
    }
}

/// The Fig. 8 testbench around a protected FIFO.
#[derive(Debug)]
pub struct FifoTestbench {
    design: ProtectedDesign,
    depth: usize,
    width: usize,
}

impl FifoTestbench {
    /// Builds a protected `depth x width` FIFO with the given chain
    /// count and code.
    ///
    /// # Errors
    ///
    /// Propagates synthesis errors ([`CoreError`]).
    pub fn new(
        depth: usize,
        width: usize,
        chains: usize,
        code: CodeChoice,
    ) -> Result<Self, CoreError> {
        let fifo = Fifo::generate(depth, width);
        let design = Synthesizer::new(fifo.netlist)
            .chains(chains)
            .code(code)
            .build()?;
        Ok(FifoTestbench {
            design,
            depth,
            width,
        })
    }

    /// The protected design under test.
    #[must_use]
    pub fn design(&self) -> &ProtectedDesign {
        &self.design
    }

    /// Runs `sequences` test sequences with the given injection mode.
    ///
    /// Matches the paper's Sec. IV setup (which ran 100 million FPGA
    /// sequences); software runs use fewer since single-error correction
    /// and multi-error detection are structural properties, not
    /// statistical tails.
    #[must_use]
    pub fn run(&self, sequences: u64, mode: InjectionMode, seed: u64) -> ValidationStats {
        self.run_obs(sequences, mode, seed, None)
    }

    /// [`run`](Self::run) with observability: each sequence's sleep/wake
    /// traversal lands on the recorder's controller lane (the Fig. 3(b)
    /// phase timeline) and the simulator's settle metrics accumulate.
    /// The stats are unchanged by observation.
    #[must_use]
    pub fn run_obs(
        &self,
        sequences: u64,
        mode: InjectionMode,
        seed: u64,
        obs: Option<&std::sync::Arc<scanguard_obs::Recorder>>,
    ) -> ValidationStats {
        let mut stats = ValidationStats::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rt = self.design.runtime();
        if let Some(rec) = obs {
            rt.attach_obs(rec.clone());
        }
        // Scan-initialise every flop (including never-written storage
        // rows) so no X values flow through the monitor — on silicon
        // this is the standard post-power-on scan flush.
        let zeros: Vec<Vec<Logic>> = self
            .design
            .chains
            .chains
            .iter()
            .map(|c| vec![Logic::Zero; c.len()])
            .collect();
        self.design.chains.load(rt.sim_mut(), &zeros);
        for _ in 0..sequences {
            stats.sequences += 1;
            // Stage 1: reset FIFO_A and FIFO_B.
            let mut model = FifoModel::new(self.depth, self.width);
            Self::pulse_reset(&mut rt);
            // Stage 2: write the same random data to both.
            let burst_len = rng.gen_range(1..=self.depth);
            for _ in 0..burst_len {
                let data = rng.gen::<u64>() & Self::mask(self.width);
                self.write(&mut rt, data);
                model.tick(false, true, false, data);
            }
            // Stages 3 & 4: sleep, then wake with injection.
            let w = self.design.chains.width();
            let l = self.design.chain_len();
            let plan: Vec<(usize, usize)> = match mode {
                InjectionMode::None => Vec::new(),
                InjectionMode::Single => {
                    vec![(rng.gen_range(0..w), rng.gen_range(0..l))]
                }
                InjectionMode::Burst { max_span } => {
                    let span = rng.gen_range(2..=max_span.clamp(2, w));
                    let first = rng.gen_range(0..=w - span);
                    let depth = rng.gen_range(0..l);
                    (first..first + span).map(|c| (c, depth)).collect()
                }
            };
            let report = rt.sleep_wake(|sim: &mut Simulator<'_>, chains: &ScanChains| {
                for &(c, d) in &plan {
                    sim.flip_retention(chains.chains[c].cells[d]);
                }
                plan.len()
            });
            stats.injected_bits += report.upsets as u64;
            if report.error_observed {
                stats.errors_reported += 1;
            }
            if report.state_intact() {
                stats.sequences_recovered += 1;
            }
            // Stage 5: read both FIFOs and compare.
            let mut mismatch = false;
            while !model.is_empty() {
                let expect = model.tick(false, false, true, 0).expect("model not empty");
                let got = self.read(&mut rt);
                if got != Some(expect) {
                    mismatch = true;
                }
            }
            if self.flag(&mut rt, "empty") != Some(true) {
                mismatch = true;
            }
            if mismatch {
                stats.comparator_mismatches += 1;
            }
        }
        stats
    }

    fn mask(width: usize) -> u64 {
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    fn pulse_reset(rt: &mut scanguard_core::ProtectedRuntime<'_>) {
        let sim = rt.sim_mut();
        sim.set_port("rst", Logic::One).expect("fifo has rst");
        sim.set_port("wr_en", Logic::Zero).expect("fifo has wr_en");
        sim.set_port("rd_en", Logic::Zero).expect("fifo has rd_en");
        rt.functional_step();
        rt.sim_mut()
            .set_port("rst", Logic::Zero)
            .expect("fifo has rst");
    }

    fn write(&self, rt: &mut scanguard_core::ProtectedRuntime<'_>, data: u64) {
        let sim = rt.sim_mut();
        sim.set_port_bool("wr_en", true).expect("wr_en");
        sim.set_port_bool("rd_en", false).expect("rd_en");
        for i in 0..self.width {
            sim.set_port_bool(&format!("din[{i}]"), (data >> i) & 1 == 1)
                .expect("din");
        }
        rt.functional_step();
        rt.sim_mut().set_port_bool("wr_en", false).expect("wr_en");
    }

    /// Reads one entry; `None` when the head is X-corrupted.
    fn read(&self, rt: &mut scanguard_core::ProtectedRuntime<'_>) -> Option<u64> {
        let sim = rt.sim_mut();
        sim.set_port_bool("rd_en", true).expect("rd_en");
        sim.settle();
        let mut v = 0u64;
        for i in 0..self.width {
            match sim
                .port_value(&format!("dout[{i}]"))
                .expect("dout")
                .to_bool()
            {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        rt.functional_step();
        rt.sim_mut().set_port_bool("rd_en", false).expect("rd_en");
        Some(v)
    }

    fn flag(&self, rt: &mut scanguard_core::ProtectedRuntime<'_>, name: &str) -> Option<bool> {
        let sim = rt.sim_mut();
        sim.settle();
        sim.port_value(name).expect("flag port").to_bool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sequences_match_golden_model() {
        let tb = FifoTestbench::new(4, 4, 4, CodeChoice::hamming7_4()).unwrap();
        let stats = tb.run(5, InjectionMode::None, 42);
        assert_eq!(stats.sequences, 5);
        assert_eq!(stats.injected_bits, 0);
        assert_eq!(stats.errors_reported, 0);
        assert_eq!(stats.comparator_mismatches, 0);
        assert_eq!(stats.sequences_recovered, 5);
    }

    #[test]
    fn single_errors_are_corrected_with_no_mismatch() {
        let tb = FifoTestbench::new(4, 4, 4, CodeChoice::hamming7_4()).unwrap();
        let stats = tb.run(8, InjectionMode::Single, 7);
        assert_eq!(stats.errors_reported, 8, "every injection reported");
        assert_eq!(stats.sequences_recovered, 8, "every injection corrected");
        assert_eq!(stats.comparator_mismatches, 0, "FIFO_A == FIFO_B");
    }

    #[test]
    fn double_bursts_are_detected_never_corrected() {
        // Distance-3 codes detect every double error, so span-2 bursts
        // are always reported — and never healed.
        let tb = FifoTestbench::new(4, 4, 4, CodeChoice::hamming7_4()).unwrap();
        let stats = tb.run(8, InjectionMode::Burst { max_span: 2 }, 11);
        assert_eq!(stats.errors_reported, 8, "every double burst detected");
        assert_eq!(
            stats.sequences_recovered, 0,
            "plain Hamming cannot correct same-word doubles"
        );
    }

    #[test]
    fn wide_bursts_can_even_evade_hamming_detection() {
        // A span-3 burst at word offset 0 aliases to syndrome zero
        // (positions 3^5^6 = 0): plain Hamming misses it — the reason
        // the paper's monitor pairs Hamming with CRC. CRC-16 catches
        // every such burst (asserted in the monte module).
        let tb = FifoTestbench::new(4, 4, 4, CodeChoice::hamming7_4()).unwrap();
        let stats = tb.run(12, InjectionMode::Burst { max_span: 4 }, 11);
        assert!(stats.errors_reported >= 6, "{stats:?}");
        assert!(
            stats.sequences_recovered < 3,
            "bursts must defeat correction: {stats:?}"
        );
    }

    #[test]
    fn crc_detects_but_comparator_sees_corruption() {
        let tb = FifoTestbench::new(4, 4, 4, CodeChoice::crc16()).unwrap();
        let stats = tb.run(6, InjectionMode::Single, 3);
        assert_eq!(stats.errors_reported, 6);
        assert_eq!(stats.sequences_recovered, 0, "CRC cannot correct");
    }
}
