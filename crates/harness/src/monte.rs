//! The Fig. 10 Monte-Carlo experiment: error-correction ability of the
//! four Hamming codes as a function of injected error count.
//!
//! The paper injects 1..=10 random errors into 1000-bit test sequences
//! (one million sequences) and passes each sequence through the four
//! Hamming implementations, reporting the percentage of errors
//! corrected. This module reproduces that experiment, in both the
//! paper's uniform-random injection and the clustered *burst* injection
//! the physical upset model produces (where correction is strictly
//! harder).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scanguard_codes::{Hamming, SequenceCodec};

/// Configuration of a Fig. 10 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Fig10Config {
    /// Sequence length in bits (the paper uses 1000).
    pub bits: usize,
    /// Error counts to sweep (1..=`max_errors`).
    pub max_errors: usize,
    /// Sequences per point (the paper uses 1e6 in total).
    pub sequences: u64,
    /// `false` = uniform random positions (the paper's Fig. 10 setup);
    /// `true` = clustered bursts (adjacent positions), the shape real
    /// rush-current upsets take.
    pub burst: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig10Config {
    fn default() -> Self {
        Fig10Config {
            bits: 1000,
            max_errors: 10,
            sequences: 10_000,
            burst: false,
            seed: 0x000F_1610,
        }
    }
}

/// One point of a Fig. 10 curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig10Point {
    /// Errors injected per sequence.
    pub injected: usize,
    /// Percentage of injected errors corrected (miscorrections count
    /// against, exactly as residual wrong bits).
    pub corrected_pct: f64,
    /// Percentage of sequences in which at least one word reported an
    /// error (detection coverage).
    pub detected_pct: f64,
}

/// Runs the Fig. 10 experiment for one code, returning one point per
/// error count `1..=max_errors`.
///
/// A sequence's corrected fraction is
/// `max(0, injected - residual_wrong_bits) / injected`, so a
/// miscorrection that adds a third wrong bit is penalised — matching the
/// hardware outcome where the restored state simply has wrong bits.
#[must_use]
pub fn fig10_curve(code: &Hamming, cfg: &Fig10Config) -> Vec<Fig10Point> {
    let codec = SequenceCodec::new(Box::new(code.clone()));
    let mut points = Vec::with_capacity(cfg.max_errors);
    for injected in 1..=cfg.max_errors {
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (injected as u64).wrapping_mul(0x9E37));
        let mut corrected_sum = 0.0f64;
        let mut detected = 0u64;
        for _ in 0..cfg.sequences {
            let original: Vec<bool> = (0..cfg.bits).map(|_| rng.gen()).collect();
            let parities = codec.protect(&original);
            let mut corrupted = original.clone();
            for &pos in &draw_positions(&mut rng, cfg.bits, injected, cfg.burst) {
                corrupted[pos] = !corrupted[pos];
            }
            let report = codec.recover(&mut corrupted, &parities);
            if report.any_error() {
                detected += 1;
            }
            let residual = corrupted
                .iter()
                .zip(&original)
                .filter(|(a, b)| a != b)
                .count();
            let fixed = injected.saturating_sub(residual);
            corrected_sum += fixed as f64 / injected as f64;
        }
        points.push(Fig10Point {
            injected,
            corrected_pct: corrected_sum / cfg.sequences as f64 * 100.0,
            detected_pct: detected as f64 / cfg.sequences as f64 * 100.0,
        });
    }
    points
}

/// Runs the experiment for the paper's whole code family, in parallel
/// (one thread per code).
#[must_use]
pub fn fig10_family(cfg: &Fig10Config) -> Vec<(String, Vec<Fig10Point>)> {
    let codes = Hamming::paper_family();
    std::thread::scope(|s| {
        let handles: Vec<_> = codes
            .iter()
            .map(|code| {
                let cfg = *cfg;
                s.spawn(move || {
                    (
                        scanguard_codes::BlockCode::name(code),
                        fig10_curve(code, &cfg),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fig10 worker panicked"))
            .collect()
    })
}

fn draw_positions(rng: &mut SmallRng, bits: usize, count: usize, burst: bool) -> Vec<usize> {
    if burst {
        // A contiguous cluster at a random offset.
        let start = rng.gen_range(0..bits - count + 1);
        (start..start + count).collect()
    } else {
        // Distinct uniform positions.
        let mut positions = Vec::with_capacity(count);
        while positions.len() < count {
            let p = rng.gen_range(0..bits);
            if !positions.contains(&p) {
                positions.push(p);
            }
        }
        positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(burst: bool) -> Fig10Config {
        Fig10Config {
            bits: 1000,
            max_errors: 10,
            sequences: 400,
            burst,
            seed: 99,
        }
    }

    #[test]
    fn single_errors_are_always_fully_corrected() {
        for code in Hamming::paper_family() {
            let pts = fig10_curve(&code, &small_cfg(false));
            assert!((pts[0].corrected_pct - 100.0).abs() < 1e-9, "{pts:?}");
            assert!((pts[0].detected_pct - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn correction_degrades_with_error_count() {
        let pts = fig10_curve(&Hamming::h63_57(), &small_cfg(false));
        assert!(pts.first().unwrap().corrected_pct > pts.last().unwrap().corrected_pct);
    }

    #[test]
    fn smaller_codes_correct_better_fig10_ordering() {
        // Fig. 10's headline: (7,4) best, (63,57) worst, at high error
        // counts.
        let family = fig10_family(&small_cfg(false));
        let at10: Vec<f64> = family.iter().map(|(_, pts)| pts[9].corrected_pct).collect();
        assert!(
            at10[0] > at10[1] && at10[1] > at10[2] && at10[2] > at10[3],
            "{at10:?}"
        );
        // Magnitudes in the paper's ballpark: (7,4) >= 90%, (63,57) ~50-75%.
        assert!(at10[0] > 90.0, "(7,4) at 10 errors: {}", at10[0]);
        assert!(at10[3] < 80.0, "(63,57) at 10 errors: {}", at10[3]);
    }

    #[test]
    fn double_error_rates_match_the_words_collision_model() {
        // With uniform doubles, failure requires both errors in one
        // k-bit word: probability ~ (k-1)/(bits-1).
        let code = Hamming::h7_4();
        let pts = fig10_curve(
            &code,
            &Fig10Config {
                sequences: 4000,
                ..small_cfg(false)
            },
        );
        let p_fail = 1.0 - pts[1].corrected_pct / 100.0;
        // Expected ~3/999 = 0.3%; with miscorrection penalty ~1.5x.
        assert!(p_fail < 0.03, "double-error failure rate {p_fail}");
    }

    #[test]
    fn bursts_are_much_harder_than_uniform() {
        let code = Hamming::h7_4();
        let uniform = fig10_curve(&code, &small_cfg(false));
        let burst = fig10_curve(&code, &small_cfg(true));
        // At 4 injected errors a burst almost always shares words.
        assert!(
            burst[3].corrected_pct < uniform[3].corrected_pct - 20.0,
            "burst {:.1}% vs uniform {:.1}%",
            burst[3].corrected_pct,
            uniform[3].corrected_pct
        );
    }

    #[test]
    fn singles_and_doubles_are_always_detected() {
        // A single or double error always leaves a nonzero syndrome in
        // some word (minimum distance 3).
        for burst in [false, true] {
            let pts = fig10_curve(&Hamming::h7_4(), &small_cfg(burst));
            for p in &pts[..2] {
                assert!(
                    p.detected_pct > 99.9,
                    "injected={} detected={:.2}% burst={burst}",
                    p.injected,
                    p.detected_pct
                );
            }
        }
    }

    #[test]
    fn triple_bursts_can_evade_hamming_but_never_crc16() {
        // Three adjacent flips at word offset 0 of a (7,4) word occupy
        // codeword positions {3,5,6}, whose XOR is 0: plain Hamming sees
        // a clean syndrome. This is why the paper's monitoring block uses
        // BOTH Hamming (correction) and CRC (detection).
        use scanguard_codes::Crc;
        let code = Hamming::h7_4();
        let codec = SequenceCodec::new(Box::new(code));
        let crc = Crc::crc16_ccitt();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut hamming_misses = 0u32;
        for _ in 0..200 {
            let original: Vec<bool> = (0..1000).map(|_| rng.gen()).collect();
            let parities = codec.protect(&original);
            let signature = crc.checksum_bits(&original);
            let start = rng.gen_range(0..250) * 4; // word-aligned triple
            let mut corrupted = original.clone();
            for p in start..start + 3 {
                corrupted[p] = !corrupted[p];
            }
            let report = codec.check(&corrupted, &parities);
            if !report.any_error() {
                hamming_misses += 1;
            }
            assert_ne!(
                crc.checksum_bits(&corrupted),
                signature,
                "CRC-16 must catch every burst of 3"
            );
        }
        assert!(
            hamming_misses > 150,
            "word-aligned triples should evade plain Hamming ({hamming_misses}/200)"
        );
    }
}
