//! # scanguard-harness
//!
//! Experiment harness for the `scanguard` reproduction of *"Scan Based
//! Methodology for Reliable State Retention Power Gating Designs"*
//! (Yang et al., DATE 2010):
//!
//! * [`FifoTestbench`] — the paper's Fig. 8 validation testbench
//!   (protected FIFO_A, golden FIFO_B, stimulus, comparator, counters);
//! * [`fig10_curve`] / [`fig10_family`] — the Fig. 10 Monte-Carlo
//!   correction-ability sweeps;
//! * [`table1`] / [`table2`] / [`table3`] and the ablation runners —
//!   one function per paper table/figure, shared by the bench targets
//!   and the integration tests;
//! * [`render_table`] — report formatting.
//!
//! # Examples
//!
//! ```
//! use scanguard_core::CodeChoice;
//! use scanguard_harness::{FifoTestbench, InjectionMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tb = FifoTestbench::new(4, 4, 4, CodeChoice::hamming7_4())?;
//! let stats = tb.run(3, InjectionMode::Single, 1);
//! assert_eq!(stats.sequences_recovered, 3); // all singles corrected
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
// Bit-indexed loops are the clearer idiom for scan/test pattern handling.
#![allow(clippy::needless_range_loop)]

mod experiments;
mod monte;
pub mod paper;
mod tables;
mod testbench;

pub use experiments::{
    ablation_recovery, ablation_rush, ablation_secded, cost_sweep, paper_fifo, table1, table2,
    table3, table3_on, validation, validation_obs, RecoveryRow, RushRow, SecdedRow, Table3Row,
    ValidationRuns, PAPER_W_SWEEP, TABLE3_W,
};
pub use monte::{fig10_curve, fig10_family, Fig10Config, Fig10Point};
pub use tables::{print_table, render_table};
pub use testbench::{FifoTestbench, InjectionMode, ValidationStats};
