//! Experiment runners — one per paper table/figure (see DESIGN.md's
//! per-experiment index). The bench targets in `scanguard-bench` are thin
//! wrappers around these functions so the same code paths are exercised
//! by integration tests.

use crate::{FifoTestbench, InjectionMode, ValidationStats};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scanguard_codes::{BlockCode, Hamming, SequenceCodec};
use scanguard_core::{measure_cost, CodeChoice, CostRow, Synthesizer};
use scanguard_designs::Fifo;
use scanguard_power::{PowerNetwork, UpsetModel, WakeStrategy};

/// The chain-count sweep of the paper's Tables I and II.
pub const PAPER_W_SWEEP: [usize; 5] = [4, 8, 16, 40, 80];

/// The chain counts the paper pairs with each Hamming code in Table III
/// (multiples of each code's data width).
pub const TABLE3_W: [usize; 4] = [56, 55, 52, 57];

/// Builds the paper's case-study circuit: the 32x32 FIFO.
#[must_use]
pub fn paper_fifo() -> Fifo {
    Fifo::generate(32, 32)
}

/// Measures cost rows for `code` across a chain-count sweep on a
/// `depth x width` FIFO. Rows are measured in parallel (one design per
/// thread).
///
/// # Panics
///
/// Panics if a sweep entry is incompatible with the code's group width
/// (use multiples of `code.group_width()`).
#[must_use]
pub fn cost_sweep(depth: usize, width: usize, code: CodeChoice, sweep: &[usize]) -> Vec<CostRow> {
    std::thread::scope(|s| {
        let handles: Vec<_> = sweep
            .iter()
            .map(|&w| {
                s.spawn(move || {
                    let fifo = Fifo::generate(depth, width);
                    let design = Synthesizer::new(fifo.netlist)
                        .chains(w)
                        .code(code)
                        .build()
                        .unwrap_or_else(|e| panic!("W={w}: {e}"));
                    measure_cost(&design, 0x00C0_FFEE ^ w as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cost worker panicked"))
            .collect()
    })
}

/// **Table I**: CRC-16 cost sweep on the 32x32 FIFO.
#[must_use]
pub fn table1() -> Vec<CostRow> {
    cost_sweep(32, 32, CodeChoice::crc16(), &PAPER_W_SWEEP)
}

/// **Table II**: Hamming(7,4) cost sweep on the 32x32 FIFO.
#[must_use]
pub fn table2() -> Vec<CostRow> {
    cost_sweep(32, 32, CodeChoice::hamming7_4(), &PAPER_W_SWEEP)
}

/// One row of the reproduced Table III.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Table3Row {
    /// Code name.
    pub code: String,
    /// Chain count `W`.
    pub chains: usize,
    /// Baseline (scanned FIFO) area, um^2.
    pub fifo_area_um2: f64,
    /// Protected total area, um^2.
    pub total_area_um2: f64,
    /// Overhead, %.
    pub overhead_pct: f64,
    /// Encoding power, mW.
    pub enc_power_mw: f64,
    /// Decoding power, mW.
    pub dec_power_mw: f64,
    /// Maximum correction capability, % of codeword bits.
    pub capability_pct: f64,
}

/// **Table III**: the Hamming code family on the 32x32 FIFO, each with
/// its paper-matched chain count.
#[must_use]
pub fn table3() -> Vec<Table3Row> {
    table3_on(32, 32)
}

/// Table III on a configurable FIFO (smaller for smoke tests).
#[must_use]
pub fn table3_on(depth: usize, width: usize) -> Vec<Table3Row> {
    let configs: Vec<(u32, usize)> = (3..=6).zip(TABLE3_W).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = configs
            .into_iter()
            .map(|(m, w)| {
                s.spawn(move || {
                    let fifo = Fifo::generate(depth, width);
                    let design = Synthesizer::new(fifo.netlist)
                        .chains(w)
                        .code(CodeChoice::Hamming { m })
                        .build()
                        .unwrap_or_else(|e| panic!("m={m} W={w}: {e}"));
                    let row = measure_cost(&design, u64::from(m));
                    let code = Hamming::new(m).expect("family order");
                    Table3Row {
                        code: BlockCode::name(&code),
                        chains: w,
                        fifo_area_um2: design.baseline.total_area_um2,
                        total_area_um2: design.protected.total_area_um2,
                        overhead_pct: row.overhead_pct,
                        enc_power_mw: row.enc_power_mw,
                        dec_power_mw: row.dec_power_mw,
                        capability_pct: code.correction_capability_pct(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("table3 worker panicked"))
            .collect()
    })
}

/// **Sec. IV validation**, experiment 1 and 2: single-error injection
/// (all corrected) and burst injection (all detected, none corrected by
/// plain Hamming) on the protected FIFO with the paper's 80-chain
/// configuration. Returns `(single, burst, crc_single)` stats.
///
/// # Panics
///
/// Panics if the testbench cannot be synthesized (a configuration bug).
#[must_use]
pub fn validation(depth: usize, width: usize, chains: usize, sequences: u64) -> ValidationRuns {
    validation_obs(depth, width, chains, sequences, None)
}

/// [`validation`] with observability: the three runs' sleep/wake
/// traversals share the recorder's controller lane and metric registry.
/// The stats are unchanged by observation.
#[must_use]
pub fn validation_obs(
    depth: usize,
    width: usize,
    chains: usize,
    sequences: u64,
    obs: Option<&std::sync::Arc<scanguard_obs::Recorder>>,
) -> ValidationRuns {
    let hamming =
        FifoTestbench::new(depth, width, chains, CodeChoice::hamming7_4()).expect("hamming tb");
    let single = hamming.run_obs(sequences, InjectionMode::Single, 0x51, obs);
    let burst = hamming.run_obs(sequences, InjectionMode::Burst { max_span: 4 }, 0xB5, obs);
    let crc = FifoTestbench::new(depth, width, chains, CodeChoice::crc16()).expect("crc tb");
    let crc_burst = crc.run_obs(sequences, InjectionMode::Burst { max_span: 4 }, 0xC5, obs);
    ValidationRuns {
        hamming_single: single,
        hamming_burst: burst,
        crc_burst,
    }
}

/// The three Sec. IV validation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ValidationRuns {
    /// Hamming(7,4), one error per sequence.
    pub hamming_single: ValidationStats,
    /// Hamming(7,4), clustered multi-error per sequence.
    pub hamming_burst: ValidationStats,
    /// CRC-16, clustered multi-error per sequence (detection only).
    pub crc_burst: ValidationStats,
}

/// One row of the rush-current ablation (E7): what each wake strategy
/// and the proposed monitoring buy, measured over Monte-Carlo wake
/// events.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RushRow {
    /// Strategy label.
    pub strategy: String,
    /// Peak shared-rail bounce, V.
    pub peak_bounce_v: f64,
    /// Wake latency in cycles at 100 MHz (plus decode latency when
    /// monitoring is on).
    pub wake_cycles: u64,
    /// Fraction of wake events with at least one retention upset.
    pub upset_prob: f64,
    /// Fraction of wake events that end with corrupted state (after
    /// correction, when monitoring is on).
    pub residual_prob: f64,
}

/// **E7 ablation**: rush-current reduction (refs \[7,8\]) vs. the proposed
/// monitoring, on a `chains x chain_len` retention array (the paper's
/// FIFO uses 80 x 13).
///
/// Physical upsets cluster along the latch array (chain-major layout);
/// the monitor's codewords run *across* chains at equal depth, so the
/// scan order acts as an interleaver: a burst confined to one chain
/// lands every flip in a different codeword and is fully corrected,
/// while a wide burst hits same-depth pairs and defeats plain Hamming.
#[must_use]
pub fn ablation_rush(chains: usize, chain_len: usize, trials: u64, seed: u64) -> Vec<RushRow> {
    let latches = chains * chain_len;
    let network = PowerNetwork::default_120nm();
    let upsets = UpsetModel::default_120nm();
    let code = Hamming::h7_4();
    let codec = SequenceCodec::new(Box::new(code));
    let strategies: Vec<(String, WakeStrategy, bool)> = vec![
        ("full-bank".into(), WakeStrategy::FullBank, false),
        (
            "staggered x2 [7]".into(),
            WakeStrategy::Staggered { groups: 2 },
            false,
        ),
        (
            "staggered x8 [7]".into(),
            WakeStrategy::Staggered { groups: 8 },
            false,
        ),
        (
            "slow-ramp x20 [8]".into(),
            WakeStrategy::SlowRamp { ramp_factor: 20.0 },
            false,
        ),
        (
            "full-bank + monitor (proposed)".into(),
            WakeStrategy::FullBank,
            true,
        ),
        (
            "staggered x8 + monitor".into(),
            WakeStrategy::Staggered { groups: 8 },
            true,
        ),
    ];
    strategies
        .into_iter()
        .map(|(name, strategy, monitored)| {
            let event = strategy.wake(&network);
            let mut upset_events = 0u64;
            let mut residual_events = 0u64;
            let mut rng = SmallRng::seed_from_u64(seed);
            for t in 0..trials {
                let flips = upsets.upsets(event.peak_bounce_v, latches, seed ^ (t + 1));
                if flips.is_empty() {
                    continue;
                }
                upset_events += 1;
                if !monitored {
                    residual_events += 1;
                    continue;
                }
                // Behavioural recovery: codewords are formed across
                // chains at equal depth, so physical latch i (chain
                // i / l, depth i % l) is sequence bit depth * W + chain.
                let original: Vec<bool> = (0..latches).map(|_| rng.gen()).collect();
                let parities = codec.protect(&original);
                let mut corrupted = original.clone();
                for &i in &flips {
                    let (c, d) = (i / chain_len, i % chain_len);
                    let pos = d * chains + c;
                    corrupted[pos] = !corrupted[pos];
                }
                codec.recover(&mut corrupted, &parities);
                if corrupted != original {
                    residual_events += 1;
                }
            }
            let decode_cycles = if monitored { chain_len as u64 + 2 } else { 0 };
            RushRow {
                strategy: name,
                peak_bounce_v: event.peak_bounce_v,
                wake_cycles: event.wake_cycles(100.0) + decode_cycles,
                upset_prob: upset_events as f64 / trials as f64,
                residual_prob: residual_events as f64 / trials as f64,
            }
        })
        .collect()
}

/// One row of the recovery-scheme ablation (E9): hardware in-stream
/// correction vs. CRC detection with software reload (paper Sec. V's
/// closing alternative).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryRow {
    /// Scheme label.
    pub scheme: String,
    /// Monitor area overhead, %.
    pub monitor_overhead_pct: f64,
    /// Cycles from wake to recovered state (detection + repair).
    pub recovery_cycles: u64,
    /// Energy of the repair path, nJ.
    pub recovery_energy_nj: f64,
    /// Whether the corrupted state was fully recovered.
    pub recovered: bool,
    /// Break-even sleep duration for a net energy win, microseconds.
    pub break_even_us: f64,
}

/// **E9 ablation**: hardware correction (Hamming monitor) vs. software
/// recovery (CRC monitor + checkpoint reload through the test pins) on
/// a `depth x width` FIFO with `chains` chains and `test_width` pins.
///
/// # Panics
///
/// Panics if the configurations cannot be synthesized.
#[must_use]
pub fn ablation_recovery(
    depth: usize,
    width: usize,
    chains: usize,
    test_width: usize,
) -> Vec<RecoveryRow> {
    use scanguard_core::{break_even, checkpoint, measure_cost, restore, Synthesizer};
    let mut rows = Vec::new();

    // Hardware correction.
    let fifo = Fifo::generate(depth, width);
    let hw = Synthesizer::new(fifo.netlist)
        .chains(chains)
        .code(CodeChoice::hamming7_4())
        .test_width(test_width)
        .build()
        .expect("hamming design");
    let hw_cost = measure_cost(&hw, 0xE9);
    let hw_be = break_even(&hw, &hw_cost);
    let mut rt = hw.runtime();
    rt.load_random_state(0xE9);
    let rep = rt.sleep_wake(|sim, ch| {
        sim.flip_retention(ch.chains[1].cells[2]);
        1
    });
    rows.push(RecoveryRow {
        scheme: "Hamming(7,4) hardware correction".into(),
        monitor_overhead_pct: hw.area_overhead_pct(),
        recovery_cycles: rep.decode.cycles,
        recovery_energy_nj: rep.decode.energy_nj(),
        recovered: rep.state_intact(),
        break_even_us: hw_be.min_sleep_us,
    });

    // Software recovery.
    let fifo = Fifo::generate(depth, width);
    let sw = Synthesizer::new(fifo.netlist)
        .chains(chains)
        .code(CodeChoice::crc16())
        .test_width(test_width)
        .build()
        .expect("crc design");
    let sw_cost = measure_cost(&sw, 0xEA);
    let sw_be = break_even(&sw, &sw_cost);
    let mut rt = sw.runtime();
    rt.load_random_state(0xEA);
    let cp = checkpoint(&mut rt);
    let rep = rt.sleep_wake(|sim, ch| {
        sim.flip_retention(ch.chains[1].cells[2]);
        1
    });
    let detected = rep.error_observed;
    let reload = restore(&mut rt, &cp);
    let recovered = detected && sw.chains.snapshot(rt.sim()) == cp.state();
    rows.push(RecoveryRow {
        scheme: "CRC-16 + software reload".into(),
        monitor_overhead_pct: sw.area_overhead_pct(),
        recovery_cycles: rep.decode.cycles + reload.cycles,
        recovery_energy_nj: rep.decode.energy_nj() + reload.energy.energy_nj(),
        recovered,
        break_even_us: sw_be.min_sleep_us,
    });
    rows
}

/// One row of the SEC-DED ablation (E8).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SecdedRow {
    /// Code name.
    pub code: String,
    /// Average wrong bits left after decoding a same-word double error.
    pub avg_residual_bits: f64,
    /// Fraction of double errors that were *miscorrected* (a third bit
    /// flipped on top).
    pub miscorrection_rate: f64,
}

/// **E8 ablation**: plain vs. extended Hamming under same-word double
/// errors (the failure mode of the paper's Sec. IV experiment 2).
#[must_use]
pub fn ablation_secded(trials: u64, seed: u64) -> Vec<SecdedRow> {
    use scanguard_codes::ExtendedHamming;
    let codes: Vec<(String, Box<dyn BlockCode>)> = vec![
        ("Hamming(7,4)".into(), Box::new(Hamming::h7_4())),
        (
            "ExtHamming(8,4)".into(),
            Box::new(ExtendedHamming::new(Hamming::h7_4())),
        ),
    ];
    codes
        .into_iter()
        .map(|(name, code)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let k = code.k();
            let mut residual_sum = 0u64;
            let mut miscorrections = 0u64;
            for _ in 0..trials {
                let data: u64 = rng.gen::<u64>() & ((1 << k) - 1);
                let b1 = rng.gen_range(0..k);
                let b2 = (b1 + 1 + rng.gen_range(0..k - 1)) % k;
                let parity = code.encode(data);
                let corrupt = data ^ (1 << b1) ^ (1 << b2);
                let (fixed, _) = code.correct(corrupt, parity);
                let residual = (fixed ^ data).count_ones();
                residual_sum += u64::from(residual);
                if residual > 2 {
                    miscorrections += 1;
                }
            }
            SecdedRow {
                code: name,
                avg_residual_bits: residual_sum as f64 / trials as f64,
                miscorrection_rate: miscorrections as f64 / trials as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cost_sweep_has_paper_shape() {
        // 8x8 FIFO, W in {4, 8}: latency halves, area grows.
        let rows = cost_sweep(8, 8, CodeChoice::crc16(), &[4, 8]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].latency_ns < rows[0].latency_ns);
        assert!(rows[1].area_um2 >= rows[0].area_um2);
        assert!(rows[1].enc_energy_nj < rows[0].enc_energy_nj);
    }

    #[test]
    fn table3_small_has_monotone_overhead_and_capability() {
        let rows = table3_on(8, 8);
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(
                w[0].overhead_pct > w[1].overhead_pct,
                "{} {:.1}% !> {} {:.1}%",
                w[0].code,
                w[0].overhead_pct,
                w[1].code,
                w[1].overhead_pct
            );
            assert!(w[0].capability_pct > w[1].capability_pct);
        }
    }

    #[test]
    fn rush_ablation_tells_the_papers_story() {
        let rows = ablation_rush(80, 13, 60, 5);
        let by = |n: &str| {
            rows.iter()
                .find(|r| r.strategy.starts_with(n))
                .unwrap_or_else(|| panic!("missing {n}"))
        };
        let full = by("full-bank");
        let stag = by("staggered x8 [");
        let monitored = by("full-bank + monitor");
        // Reduction techniques reduce upsets but whatever slips through
        // stays; monitoring corrects most of it.
        assert!(stag.peak_bounce_v < full.peak_bounce_v);
        assert!(stag.upset_prob <= full.upset_prob);
        assert!(monitored.residual_prob < full.residual_prob);
        assert_eq!(full.residual_prob, full.upset_prob, "no correction");
    }

    #[test]
    fn recovery_ablation_trades_area_for_latency() {
        let rows = ablation_recovery(8, 8, 8, 4);
        let hw = &rows[0];
        let sw = &rows[1];
        assert!(hw.recovered && sw.recovered, "both schemes must recover");
        assert!(
            hw.monitor_overhead_pct > sw.monitor_overhead_pct,
            "hardware correction costs area: {hw:?} vs {sw:?}"
        );
        assert!(
            sw.recovery_cycles > hw.recovery_cycles,
            "software reload costs latency: {hw:?} vs {sw:?}"
        );
    }

    #[test]
    fn secded_ablation_shows_no_miscorrection_for_extended() {
        let rows = ablation_secded(500, 9);
        let plain = &rows[0];
        let ext = &rows[1];
        assert!(plain.miscorrection_rate > 0.3, "{plain:?}");
        assert_eq!(ext.miscorrection_rate, 0.0, "{ext:?}");
        assert!(ext.avg_residual_bits <= 2.0 + 1e-9);
        assert!(plain.avg_residual_bits > ext.avg_residual_bits);
    }
}
