//! Differential property test: the bit-parallel (PPSFP) wide fault
//! engine must produce a byte-identical `CoverageReport` to the scalar
//! engine on *randomly generated* scan designs and fault lists — any
//! divergence in detection timing, cycle accounting or fault dropping
//! shows up as a JSON diff.

use proptest::prelude::*;
use scanguard_dft::{
    enumerate_faults, fault_coverage, insert_scan, CoverageReport, Fault, FaultSimConfig,
    FaultSimEngine, ScanAccess, ScanConfig,
};
use scanguard_netlist::{CellLibrary, GateKind, NetId, Netlist, NetlistBuilder};

/// A recipe for one random combinational gate fed from the live pool of
/// nets (inputs, flop outputs, earlier gate outputs).
#[derive(Debug, Clone)]
struct GateRecipe {
    kind: usize,
    a: usize,
    b: usize,
    c: usize,
}

const COMB_KINDS: [GateKind; 10] = [
    GateKind::Buf,
    GateKind::Not,
    GateKind::And2,
    GateKind::Nand2,
    GateKind::Or2,
    GateKind::Nor2,
    GateKind::Xor2,
    GateKind::Xnor2,
    GateKind::Mux2,
    GateKind::Xor3,
];

fn gate_strategy() -> impl Strategy<Value = GateRecipe> {
    (
        0..COMB_KINDS.len(),
        any::<usize>(),
        any::<usize>(),
        any::<usize>(),
    )
        .prop_map(|(kind, a, b, c)| GateRecipe { kind, a, b, c })
}

/// A random sequential design: `n_ffs` flip-flops whose `d` pins come
/// from a random combinational DAG over the primary inputs and the flop
/// outputs, with a couple of observable outputs.
fn build_random(n_inputs: usize, n_ffs: usize, recipes: &[GateRecipe]) -> Netlist {
    let mut b = NetlistBuilder::new("rand");
    let inputs = b.input_bus("i", n_inputs);
    // Flop outputs exist up front so the comb cloud can read them.
    let mut qs = Vec::new();
    let mut ds = Vec::new();
    for k in 0..n_ffs {
        let d = b.net(&format!("d{k}"));
        let (q, _) = b.dff(&format!("r{k}"), d);
        qs.push(q);
        ds.push(d);
    }
    let mut pool: Vec<NetId> = inputs.iter().chain(&qs).copied().collect();
    for r in recipes {
        let kind = COMB_KINDS[r.kind];
        let pick = |sel: usize| pool[sel % pool.len()];
        let nets: Vec<NetId> = match kind.input_count() {
            1 => vec![pick(r.a)],
            2 => vec![pick(r.a), pick(r.b)],
            3 => vec![pick(r.a), pick(r.b), pick(r.c)],
            _ => unreachable!("combinational kinds have 1..=3 inputs"),
        };
        pool.push(b.cell(kind, nets));
    }
    // Feed each flop from the tail of the pool so the state actually
    // depends on the random logic (and, through `qs`, on itself).
    for (k, &d) in ds.iter().enumerate() {
        let src = pool[pool.len() - 1 - (k % recipes.len().max(1))];
        b.connect(d, src);
    }
    b.output("y", *pool.last().expect("non-empty pool"));
    b.output("q0", qs[0]);
    b.finish().expect("random design is structurally valid")
}

/// `wall_ms` carries timing noise; everything else must match in the
/// serialized bytes.
fn canonical(mut r: CoverageReport) -> String {
    r.wall_ms = 0.0;
    serde_json::to_string(&r).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wide_report_is_byte_identical_to_scalar(
        n_inputs in 1usize..4,
        n_ffs in 2usize..9,
        recipes in proptest::collection::vec(gate_strategy(), 1..14),
        chains in 1usize..4,
        patterns in 1usize..6,
        seed in any::<u64>(),
        fault_sel in proptest::collection::vec(any::<bool>(), 64),
        threads in 1usize..4,
    ) {
        let mut nl = build_random(n_inputs, n_ffs, &recipes);
        let sc = insert_scan(&mut nl, &ScanConfig::with_chains(chains.min(n_ffs)))
            .expect("flops exist");
        let lib = CellLibrary::st120nm();
        // A random subset of the fault universe (always non-empty so the
        // comparison exercises real work).
        let all = enumerate_faults(&nl);
        let faults: Vec<Fault> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| fault_sel[i % fault_sel.len()])
            .map(|(_, f)| *f)
            .collect();
        let faults = if faults.is_empty() { all } else { faults };

        let run = |engine: FaultSimEngine| {
            fault_coverage(
                &nl,
                ScanAccess::Direct(&sc),
                &lib,
                &faults,
                &FaultSimConfig {
                    patterns,
                    seed,
                    threads,
                    engine,
                    ..FaultSimConfig::default()
                },
            )
            .expect("coverage run")
        };
        let scalar = run(FaultSimEngine::Scalar);
        let wide = run(FaultSimEngine::Wide);
        prop_assert_eq!(
            canonical(scalar),
            canonical(wide),
            "engines diverged on a random design"
        );
    }
}
