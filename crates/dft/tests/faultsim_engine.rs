//! The fault-dropping parallel fault-simulation engine against a real
//! design: the `CoverageReport` is a pure function of the configuration
//! — the thread count changes wall-clock time and nothing else.

use scanguard_designs::Fifo;
use scanguard_dft::{
    enumerate_faults, fault_coverage, CoverageReport, FaultSimConfig, FaultSimEngine, ScanAccess,
};
use scanguard_dft::{insert_scan, ScanConfig};
use scanguard_netlist::CellLibrary;

fn fifo_coverage_with(threads: usize, engine: FaultSimEngine) -> CoverageReport {
    let fifo = Fifo::generate(8, 8);
    let mut nl = fifo.netlist;
    let chains = insert_scan(&mut nl, &ScanConfig::with_chains(8)).unwrap();
    let lib = CellLibrary::st120nm();
    let faults = enumerate_faults(&nl);
    fault_coverage(
        &nl,
        ScanAccess::Direct(&chains),
        &lib,
        &faults,
        &FaultSimConfig {
            patterns: 6,
            max_faults: Some(80),
            threads,
            engine,
            ..FaultSimConfig::default()
        },
    )
    .expect("fault simulation")
}

fn fifo_coverage(threads: usize) -> CoverageReport {
    fifo_coverage_with(threads, FaultSimEngine::Scalar)
}

#[test]
fn parallel_report_matches_serial_byte_for_byte() {
    let serial = fifo_coverage(1);
    let parallel = fifo_coverage(8);
    assert_eq!(serial, parallel, "thread count leaked into the report");
    let normalize = |mut r: CoverageReport| {
        r.wall_ms = 0.0; // the only timing-dependent field
        serde_json::to_string(&r).unwrap()
    };
    assert_eq!(
        normalize(serial).into_bytes(),
        normalize(parallel).into_bytes()
    );
}

#[test]
fn wide_engine_matches_scalar_on_a_real_design() {
    let normalize = |mut r: CoverageReport| {
        r.wall_ms = 0.0;
        serde_json::to_string(&r).unwrap()
    };
    let scalar = normalize(fifo_coverage_with(1, FaultSimEngine::Scalar));
    for threads in [1, 8] {
        let wide = normalize(fifo_coverage_with(threads, FaultSimEngine::Wide));
        assert_eq!(
            scalar, wide,
            "wide engine diverged on the fifo at {threads} threads"
        );
    }
}

#[test]
fn dropping_accounts_for_every_fault() {
    let report = fifo_coverage(4);
    assert!(report.faults > 0);
    let histogram_total: usize = report.detected_at_pattern.iter().sum();
    assert_eq!(
        histogram_total, report.detected,
        "each detected fault lands in exactly one histogram bucket"
    );
    assert!(
        report.dropped_cycles > 0,
        "a detectable design must let the simulator drop work: {report:?}"
    );
    assert!(report.coverage_pct().expect("faults simulated") > 50.0);
}
