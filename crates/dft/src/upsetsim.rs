//! Simulation oracle for the monitor-pass upset obligations.
//!
//! The lint crate's symbolic upset engine (`scanguard-lint`'s SG205/
//! SG206) proves detection and correction by unrolling the netlist
//! through the monitor-pass schedule. This module runs the *same*
//! schedule on the production simulators — the scalar [`Simulator`] with
//! real clock-domain gating, or the bit-parallel [`WideSimulator`] with
//! 63 faulted lanes per run — and reports, per injected
//! [`ErrorPattern`], whether the pass detected the upset and whether it
//! restored the retained state. Differential tests hold the symbolic
//! verdicts to these outcomes bit-for-bit: the prover is only trusted
//! because it never disagrees with simulation.

use crate::{ErrorPattern, ScanChains};
use scanguard_netlist::{CellLibrary, Logic, LogicWord, NetId, Netlist};
use scanguard_sim::{Simulator, WideSimulator};

/// The monitor-pass control and status nets, as port-level handles (this
/// crate cannot see the monitor generator; callers pass the nets down).
#[derive(Debug, Clone, Copy)]
pub struct MonitorPassPorts {
    /// Sequencer/store shift enable.
    pub mon_en: NetId,
    /// Decode-phase select (enables correction feedback).
    pub mon_decode: NetId,
    /// Sequencer clear.
    pub mon_clear: NetId,
    /// CRC signature capture strobe, when the monitor has one.
    pub sig_cap: Option<NetId>,
    /// Error flag output.
    pub err: NetId,
    /// Sequencer terminal count output.
    pub done: NetId,
}

/// Code-dependent schedule knobs.
#[derive(Debug, Clone, Copy)]
pub struct MonitorPassConfig {
    /// `true` when `err` is valid on every decode cycle (Hamming,
    /// parity); `false` when it is a final-signature compare (CRC).
    pub streaming_err: bool,
    /// Level of `mon_decode` during the decode pass: high for codes
    /// whose decode path differs from encode (correction feedback,
    /// store recirculation), low for CRC (same pass both times).
    pub decode_high: bool,
}

/// What one injected pattern did to one monitor pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpsetOutcome {
    /// `mon_err` went high at a valid sample point.
    pub detected: bool,
    /// The chains hold the retained state again after the pass.
    pub corrected: bool,
}

/// Which simulator evaluates the faulted passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpsetSimEngine {
    /// One scalar clock-gated [`Simulator`] run per pattern.
    #[default]
    Scalar,
    /// Bit-parallel: one [`WideSimulator`] run per 63 patterns, gated
    /// domains emulated by snapshot/restore around frozen edges.
    Wide,
}

/// Runs the monitor pass (encode → inject → decode → check) once per
/// pattern in `faults` and reports detection/correction outcomes, in
/// order. An empty `faults` slice runs one clean pass and returns empty.
///
/// Both engines produce identical outcomes (enforced by differential
/// tests in this crate and `scanguard-core`).
///
/// # Panics
///
/// Panics if the chains are ragged, a state row does not match the
/// chain length, or a pattern indexes outside the chains.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn monitor_pass_outcomes(
    netlist: &Netlist,
    lib: &CellLibrary,
    chains: &ScanChains,
    ports: &MonitorPassPorts,
    cfg: &MonitorPassConfig,
    state: &[Vec<Logic>],
    faults: &[ErrorPattern],
    engine: UpsetSimEngine,
) -> Vec<UpsetOutcome> {
    let l = chains.max_len();
    assert!(
        chains.chains.iter().all(|c| c.len() == l),
        "monitor pass requires equal-length chains"
    );
    assert_eq!(state.len(), chains.width(), "one state row per chain");
    match engine {
        UpsetSimEngine::Scalar => faults
            .iter()
            .map(|f| scalar_pass(netlist, lib, chains, ports, cfg, state, Some(f)))
            .collect(),
        UpsetSimEngine::Wide => faults
            .chunks(63)
            .flat_map(|chunk| wide_pass(netlist, lib, chains, ports, cfg, state, chunk))
            .collect(),
    }
}

fn quiesce(netlist: &Netlist) -> Vec<NetId> {
    netlist.input_ports().iter().map(|&(_, n)| n).collect()
}

/// One scalar monitor pass with a real clock-gated chain domain; the
/// reference semantics both the wide path and the symbolic engine are
/// held to.
fn scalar_pass(
    netlist: &Netlist,
    lib: &CellLibrary,
    chains: &ScanChains,
    ports: &MonitorPassPorts,
    cfg: &MonitorPassConfig,
    state: &[Vec<Logic>],
    fault: Option<&ErrorPattern>,
) -> UpsetOutcome {
    let l = chains.max_len();
    let mut sim = Simulator::new(netlist, lib);
    for n in quiesce(netlist) {
        sim.set_net(n, Logic::Zero);
    }
    let pd = sim.define_domain("pgc");
    let cells: Vec<_> = chains.cells().collect();
    sim.assign_domain_all(cells, pd);
    chains.set_scan_enable(&mut sim, true);
    chains.load(&mut sim, state);

    let drive = |sim: &mut Simulator<'_>, en: bool, dec: bool, clr: bool| {
        sim.set_net(ports.mon_en, Logic::from(en));
        sim.set_net(ports.mon_decode, Logic::from(dec));
        sim.set_net(ports.mon_clear, Logic::from(clr));
    };
    if let Some(cap) = ports.sig_cap {
        sim.set_net(cap, Logic::Zero);
    }

    // Encode: clear the sequencer (chains frozen), then l shifts.
    sim.set_clock_enable(pd, false);
    drive(&mut sim, false, false, true);
    sim.step();
    sim.set_clock_enable(pd, true);
    drive(&mut sim, true, false, false);
    sim.step_n(l);

    // CRC only: capture the signature with the chains frozen.
    sim.set_clock_enable(pd, false);
    drive(&mut sim, false, false, false);
    if let Some(cap) = ports.sig_cap {
        sim.set_net(cap, Logic::One);
        sim.step();
        sim.set_net(cap, Logic::Zero);
    }

    if let Some(f) = fault {
        f.apply_direct(&mut sim, chains);
    }

    // Decode: clear (chains frozen), l shifts sampling err, final check.
    let dh = cfg.decode_high;
    drive(&mut sim, false, dh, true);
    sim.step();
    sim.set_clock_enable(pd, true);
    drive(&mut sim, true, dh, false);
    let mut detected = false;
    for _ in 0..l {
        sim.settle();
        if cfg.streaming_err && sim.value(ports.err) == Logic::One {
            detected = true;
        }
        sim.step();
    }
    sim.set_clock_enable(pd, false);
    drive(&mut sim, false, dh, false);
    sim.settle();
    if sim.value(ports.err) == Logic::One {
        detected = true;
    }
    let corrected = chains.snapshot(&sim) == state;
    UpsetOutcome {
        detected,
        corrected,
    }
}

/// One wide monitor pass: lane 0 golden, lane `1 + i` carries
/// `chunk[i]`. Freezing is emulated by snapshotting the chain flops
/// around edges the gated domain must not see.
fn wide_pass(
    netlist: &Netlist,
    lib: &CellLibrary,
    chains: &ScanChains,
    ports: &MonitorPassPorts,
    cfg: &MonitorPassConfig,
    state: &[Vec<Logic>],
    chunk: &[ErrorPattern],
) -> Vec<UpsetOutcome> {
    assert!(chunk.len() <= 63, "one wide pass carries at most 63 faults");
    let l = chains.max_len();
    let mut sim = WideSimulator::new(netlist, lib);
    for n in quiesce(netlist) {
        sim.set_net(n, Logic::Zero);
    }
    sim.set_net(chains.se, Logic::One);
    for (c, chain) in chains.chains.iter().enumerate() {
        for (d, &cell) in chain.cells.iter().enumerate() {
            sim.force_ff_word(cell, LogicWord::splat(state[c][d]));
        }
    }

    let drive = |sim: &mut WideSimulator<'_>, en: bool, dec: bool, clr: bool| {
        sim.set_net(ports.mon_en, Logic::from(en));
        sim.set_net(ports.mon_decode, Logic::from(dec));
        sim.set_net(ports.mon_clear, Logic::from(clr));
    };
    if let Some(cap) = ports.sig_cap {
        sim.set_net(cap, Logic::Zero);
    }
    // A clock edge the gated chain domain must not see: snapshot the
    // chain flops, step, restore them. The always-on cells capture from
    // the pre-edge (frozen) chain outputs, exactly as under real gating.
    let frozen_step = |sim: &mut WideSimulator<'_>| {
        let held: Vec<(scanguard_netlist::CellId, LogicWord)> = chains
            .cells()
            .map(|cell| (cell, sim.value(netlist.cell(cell).output())))
            .collect();
        sim.step();
        for (cell, w) in held {
            sim.force_ff_word(cell, w);
        }
        sim.settle();
    };

    // Encode.
    drive(&mut sim, false, false, true);
    frozen_step(&mut sim);
    drive(&mut sim, true, false, false);
    for _ in 0..l {
        sim.step();
    }
    drive(&mut sim, false, false, false);
    if let Some(cap) = ports.sig_cap {
        sim.set_net(cap, Logic::One);
        frozen_step(&mut sim);
        sim.set_net(cap, Logic::Zero);
    }

    // Inject: lane 1 + i gets chunk[i]'s flips, forced to the negation
    // of the retained bit (the golden lanes keep circulating it).
    for (i, f) in chunk.iter().enumerate() {
        for (c, d) in f.flip_positions() {
            let cell = chains.chains[c].cells[d];
            let mut w = sim.value(netlist.cell(cell).output());
            w.set_lane(1 + i, !state[c][d]);
            sim.force_ff_word(cell, w);
        }
    }
    sim.settle();

    // Decode + check.
    let dh = cfg.decode_high;
    drive(&mut sim, false, dh, true);
    frozen_step(&mut sim);
    drive(&mut sim, true, dh, false);
    let mut detected = 0u64;
    for _ in 0..l {
        sim.settle();
        if cfg.streaming_err {
            detected |= sim.value(ports.err).ones;
        }
        sim.step();
    }
    drive(&mut sim, false, dh, false);
    sim.settle();
    detected |= sim.value(ports.err).ones;

    let mut not_corrected = 0u64;
    for (c, chain) in chains.chains.iter().enumerate() {
        for (d, &cell) in chain.cells.iter().enumerate() {
            let w = sim.value(netlist.cell(cell).output());
            let want = LogicWord::splat(state[c][d]);
            not_corrected |= (w.ones ^ want.ones) | w.xs;
        }
    }
    chunk
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let bit = 1u64 << (1 + i);
            UpsetOutcome {
                detected: detected & bit != 0,
                corrected: not_corrected & bit == 0,
            }
        })
        .collect()
}
