//! Scan insertion — the netlist transform DFT Compiler performs in the
//! paper's flow (Fig. 4, step "scan chains insertion").
//!
//! Every flip-flop is replaced by its scan-enabled equivalent, the flops
//! are stitched into `W` balanced chains, and `si[..]`/`so[..]` ports plus
//! a shared scan-enable port are created. Replacing flops and stitching
//! chains does not touch the functional `d` connections, so the design's
//! normal-mode behaviour (and critical path) is unchanged — the property
//! the paper leans on in Sec. II-A.

use crate::DftError;
use scanguard_netlist::{CellId, GateKind, Logic, NetId, Netlist};
use scanguard_sim::Simulator;

/// How flip-flops are upgraded during scan insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum FlopStyle {
    /// Plain scan flops (`Dff -> Sdff`); retention flops keep retention.
    #[default]
    Scan,
    /// Retention scan flops (`Dff -> Rsdff`): the style required for a
    /// power-gated block that must retain state through sleep.
    RetentionScan,
}

/// Configuration of the scan insertion pass.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ScanConfig {
    /// Number of chains `W` (paper Table I sweeps 4..=80).
    pub chains: usize,
    /// Flip-flop upgrade style.
    pub style: FlopStyle,
    /// Name of the scan-enable input port.
    pub se_port: String,
    /// Prefix of the per-chain scan-in ports (`si[k]`).
    pub si_prefix: String,
    /// Prefix of the per-chain scan-out ports (`so[k]`).
    pub so_prefix: String,
}

impl ScanConfig {
    /// A configuration with `chains` chains and default naming.
    #[must_use]
    pub fn with_chains(chains: usize) -> Self {
        ScanConfig {
            chains,
            ..ScanConfig::default()
        }
    }

    /// Same, with retention-scan flops (power-gating style).
    #[must_use]
    pub fn retention_with_chains(chains: usize) -> Self {
        ScanConfig {
            chains,
            style: FlopStyle::RetentionScan,
            ..ScanConfig::default()
        }
    }
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            chains: 1,
            style: FlopStyle::Scan,
            se_port: "se".to_owned(),
            si_prefix: "si".to_owned(),
            so_prefix: "so".to_owned(),
        }
    }
}

/// One stitched scan chain: cells ordered from scan-in to scan-out.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ScanChain {
    /// The chain's scan-in port net.
    pub si: NetId,
    /// The chain's scan-out net (q of the last flop), exported as a port.
    pub so: NetId,
    /// Flops in shift order: `cells[0]` captures from `si`.
    pub cells: Vec<CellId>,
}

impl ScanChain {
    /// Chain length `l`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` for an empty chain (never produced by the pass).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// The result of scan insertion: chain topology plus the control nets.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ScanChains {
    /// The shared scan-enable net.
    pub se: NetId,
    /// The chains, index = chain number.
    pub chains: Vec<ScanChain>,
    /// Name of the scan-enable port (kept for simulators).
    pub se_port: String,
}

impl ScanChains {
    /// Number of chains `W`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.chains.len()
    }

    /// Maximum chain length `l` (the encode/decode latency in cycles —
    /// paper Sec. III: latency = `l x T`).
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.chains.iter().map(ScanChain::len).max().unwrap_or(0)
    }

    /// Total flip-flops across chains.
    #[must_use]
    pub fn ff_count(&self) -> usize {
        self.chains.iter().map(ScanChain::len).sum()
    }

    /// All scanned cells, chain-major.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.chains.iter().flat_map(|c| c.cells.iter().copied())
    }

    /// Drives the scan-enable port.
    pub fn set_scan_enable(&self, sim: &mut Simulator<'_>, enable: bool) {
        sim.set_net(self.se, Logic::from(enable));
    }

    /// Performs one scan-shift cycle: presents `inputs[k]` on each chain's
    /// scan-in, returns the bits that each chain's scan-out delivered
    /// during the cycle (the values consumed by a monitor), then clocks.
    ///
    /// Scan-enable must already be high.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.width()`.
    pub fn shift(&self, sim: &mut Simulator<'_>, inputs: &[Logic]) -> Vec<Logic> {
        assert_eq!(inputs.len(), self.width(), "one input bit per chain");
        for (chain, &bit) in self.chains.iter().zip(inputs) {
            sim.set_net(chain.si, bit);
        }
        sim.settle();
        let outs: Vec<Logic> = self.chains.iter().map(|c| sim.value(c.so)).collect();
        sim.step();
        outs
    }

    /// Reads the current state of every chain directly (no clocks):
    /// `result[k][i]` is the value of chain `k`'s flop at depth `i`
    /// (depth 0 nearest scan-in).
    #[must_use]
    pub fn snapshot(&self, sim: &Simulator<'_>) -> Vec<Vec<Logic>> {
        self.chains
            .iter()
            .map(|c| c.cells.iter().map(|&f| sim.ff_value(f)).collect())
            .collect()
    }

    /// Forces the state of every chain directly (no clocks); shape must
    /// match [`snapshot`](Self::snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the shape differs from the chain topology.
    pub fn load(&self, sim: &mut Simulator<'_>, state: &[Vec<Logic>]) {
        assert_eq!(state.len(), self.width(), "one row per chain");
        for (chain, row) in self.chains.iter().zip(state) {
            assert_eq!(row.len(), chain.len(), "row length must equal chain length");
            for (&cell, &v) in chain.cells.iter().zip(row) {
                sim.force_ff(cell, v);
            }
        }
    }
}

/// Inserts scan into `netlist` per `config`.
///
/// Flip-flops are taken in cell order and split into `config.chains`
/// balanced contiguous chains (lengths differ by at most one). New ports:
/// `se`, `si[k]`, `so[k]`.
///
/// # Errors
///
/// * [`DftError::ZeroChains`] / [`DftError::TooManyChains`] /
///   [`DftError::NoFlipFlops`] for bad configurations;
/// * [`DftError::Netlist`] if port names clash with the design.
pub fn insert_scan(netlist: &mut Netlist, config: &ScanConfig) -> Result<ScanChains, DftError> {
    let ffs: Vec<CellId> = netlist.ff_cells().map(|(id, _)| id).collect();
    insert_scan_ordered(netlist, config, &ffs)
}

/// [`insert_scan`] with an explicit stitching order: `order[0]` becomes
/// the first flop of chain 0, and chains are cut from the order in
/// balanced contiguous spans. Placement-aware flows
/// ([`insert_scan_placed`](crate::insert_scan_placed)) compute the order
/// from flop locations.
///
/// # Errors
///
/// As [`insert_scan`], plus [`DftError::OrderMismatch`] if `order` is
/// not a permutation of the design's flip-flops.
pub fn insert_scan_ordered(
    netlist: &mut Netlist,
    config: &ScanConfig,
    order: &[CellId],
) -> Result<ScanChains, DftError> {
    if config.chains == 0 {
        return Err(DftError::ZeroChains);
    }
    let ffs: Vec<CellId> = order.to_vec();
    if ffs.is_empty() {
        return Err(DftError::NoFlipFlops);
    }
    {
        let mut expected: Vec<CellId> = netlist.ff_cells().map(|(id, _)| id).collect();
        let mut got = ffs.clone();
        expected.sort_unstable();
        got.sort_unstable();
        if expected != got {
            return Err(DftError::OrderMismatch {
                expected: expected.len(),
                got: got.len(),
            });
        }
    }
    if config.chains > ffs.len() {
        return Err(DftError::TooManyChains {
            chains: config.chains,
            ffs: ffs.len(),
        });
    }

    let se = netlist.add_input_port(&config.se_port)?;

    let w = config.chains;
    let base = ffs.len() / w;
    let extra = ffs.len() % w;
    let mut chains = Vec::with_capacity(w);
    let mut cursor = 0usize;
    for k in 0..w {
        let len = base + usize::from(k < extra);
        let cells: Vec<CellId> = ffs[cursor..cursor + len].to_vec();
        cursor += len;
        let si = netlist.add_input_port(&format!("{}[{k}]", config.si_prefix))?;
        // Stitch: each flop's si pin is the previous stage's q.
        let mut prev = si;
        for &cell in &cells {
            let c = netlist.cell(cell);
            let d = c.inputs()[0];
            let kind = c.kind();
            let new_kind = match (kind, config.style) {
                (GateKind::Dff, FlopStyle::Scan) => GateKind::Sdff,
                (GateKind::Dff | GateKind::Rdff, FlopStyle::RetentionScan) => GateKind::Rsdff,
                (GateKind::Rdff, FlopStyle::Scan) => GateKind::Rsdff,
                // Already scan-capable: keep kind, rewire scan pins.
                (GateKind::Sdff, FlopStyle::RetentionScan) => GateKind::Rsdff,
                (k @ (GateKind::Sdff | GateKind::Rsdff), _) => k,
                (k, _) => k, // unreachable for sequential kinds
            };
            netlist.morph_cell(cell, new_kind, vec![d, prev, se]);
            prev = netlist.cell(cell).output();
        }
        let so = prev;
        netlist.add_output_port(&format!("{}[{k}]", config.so_prefix), so)?;
        chains.push(ScanChain { si, so, cells });
    }
    netlist.revalidate().map_err(DftError::Netlist)?;
    Ok(ScanChains {
        se,
        chains,
        se_port: config.se_port.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanguard_netlist::{CellLibrary, NetlistBuilder};

    /// An 8-bit register file slice: 8 independent flops fed by inputs.
    fn eight_flops() -> Netlist {
        let mut b = NetlistBuilder::new("regs8");
        for i in 0..8 {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            b.output(&format!("q[{i}]"), q);
        }
        b.finish().unwrap()
    }

    #[test]
    fn chains_are_balanced() {
        let mut nl = eight_flops();
        let sc = insert_scan(&mut nl, &ScanConfig::with_chains(3)).unwrap();
        let lens: Vec<usize> = sc.chains.iter().map(ScanChain::len).collect();
        assert_eq!(lens, vec![3, 3, 2]);
        assert_eq!(sc.ff_count(), 8);
        assert_eq!(sc.max_len(), 3);
    }

    #[test]
    fn flops_are_upgraded_per_style() {
        let mut nl = eight_flops();
        let _ = insert_scan(&mut nl, &ScanConfig::retention_with_chains(2)).unwrap();
        for (_, c) in nl.ff_cells() {
            assert_eq!(c.kind(), GateKind::Rsdff);
        }
        let mut nl = eight_flops();
        let _ = insert_scan(&mut nl, &ScanConfig::with_chains(2)).unwrap();
        for (_, c) in nl.ff_cells() {
            assert_eq!(c.kind(), GateKind::Sdff);
        }
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut nl = eight_flops();
        assert!(matches!(
            insert_scan(&mut nl, &ScanConfig::with_chains(0)),
            Err(DftError::ZeroChains)
        ));
        let mut nl = eight_flops();
        assert!(matches!(
            insert_scan(&mut nl, &ScanConfig::with_chains(9)),
            Err(DftError::TooManyChains { .. })
        ));
        let mut b = NetlistBuilder::new("comb");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let mut nl = b.finish().unwrap();
        assert!(matches!(
            insert_scan(&mut nl, &ScanConfig::with_chains(1)),
            Err(DftError::NoFlipFlops)
        ));
    }

    #[test]
    fn functional_behaviour_is_preserved() {
        // With se=0 the scanned design must behave like the original.
        let mut nl = eight_flops();
        let sc = insert_scan(&mut nl, &ScanConfig::with_chains(4)).unwrap();
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        sc.set_scan_enable(&mut sim, false);
        for i in 0..8 {
            sim.set_port_bool(&format!("d[{i}]"), i % 2 == 0).unwrap();
            sim.set_port_bool(&format!("si[{}]", i % 4), false).unwrap();
        }
        sim.step();
        for i in 0..8 {
            assert_eq!(
                sim.port_value(&format!("q[{i}]")).unwrap(),
                Logic::from(i % 2 == 0)
            );
        }
    }

    #[test]
    fn shift_moves_one_position_per_cycle() {
        let mut nl = eight_flops();
        let sc = insert_scan(&mut nl, &ScanConfig::with_chains(2)).unwrap();
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        // Zero everything via 4 shifts of zeros.
        sc.set_scan_enable(&mut sim, true);
        for i in 0..8 {
            sim.set_port_bool(&format!("d[{i}]"), false).unwrap();
        }
        for _ in 0..4 {
            sc.shift(&mut sim, &[Logic::Zero, Logic::Zero]);
        }
        // Shift in a one on chain 0 only.
        sc.shift(&mut sim, &[Logic::One, Logic::Zero]);
        let snap = sc.snapshot(&sim);
        assert_eq!(snap[0][0], Logic::One);
        assert!(snap[0][1..].iter().all(|&v| v == Logic::Zero));
        assert!(snap[1].iter().all(|&v| v == Logic::Zero));
        // After 3 more shifts of zeros it emerges on so.
        sc.shift(&mut sim, &[Logic::Zero, Logic::Zero]);
        sc.shift(&mut sim, &[Logic::Zero, Logic::Zero]);
        sc.shift(&mut sim, &[Logic::Zero, Logic::Zero]);
        let outs = sc.shift(&mut sim, &[Logic::Zero, Logic::Zero]);
        assert_eq!(outs[0], Logic::One, "bit reaches scan-out after l cycles");
    }

    #[test]
    fn full_chain_roundtrip_preserves_pattern() {
        let mut nl = eight_flops();
        let sc = insert_scan(&mut nl, &ScanConfig::with_chains(2)).unwrap();
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        sc.set_scan_enable(&mut sim, true);
        for i in 0..8 {
            sim.set_port_bool(&format!("d[{i}]"), false).unwrap();
        }
        let pattern = [
            vec![Logic::One, Logic::Zero, Logic::One, Logic::One],
            vec![Logic::Zero, Logic::Zero, Logic::One, Logic::Zero],
        ];
        sc.load(&mut sim, &pattern);
        assert_eq!(sc.snapshot(&sim), pattern);
        // Circulate so -> si for l cycles: the state must return intact.
        let l = sc.max_len();
        for _ in 0..l {
            let snap: Vec<Logic> = sc.chains.iter().map(|c| sim.value(c.so)).collect();
            sc.shift(&mut sim, &snap);
        }
        assert_eq!(sc.snapshot(&sim), pattern, "circulation is lossless");
    }

    #[test]
    fn load_shape_mismatch_panics() {
        let mut nl = eight_flops();
        let sc = insert_scan(&mut nl, &ScanConfig::with_chains(2)).unwrap();
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        let bad = vec![vec![Logic::Zero; 3]; 2];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sc.load(&mut sim, &bad);
        }));
        assert!(result.is_err());
    }
}
