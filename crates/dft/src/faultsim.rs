//! Stuck-at fault simulation — the manufacturing-test job the scan
//! chains exist for in the first place.
//!
//! The paper's Sec. III argues its monitor reuses the chains "without
//! affecting manufacturing test"; this module lets that claim be checked
//! *quantitatively*: run the classic scan test (shift in a random
//! pattern, pulse one functional capture, shift out and compare) against
//! every single stuck-at fault and report coverage. The
//! `test_neutrality` integration tests compare PGC fault coverage before
//! and after monitor insertion.
//!
//! Fault-dropping, parallel fault simulation: the golden responses are
//! computed once and shared read-only across workers; each fault is then
//! simulated cycle by cycle and *dropped* at the first observed bit that
//! differs from golden — the rest of the failing pattern, the remaining
//! patterns and the final flush are never simulated.
//! Faults are fanned out over a [`scanguard_par::run_pool`] and the
//! per-fault outcomes are merged in index order, so the
//! [`CoverageReport`] is byte-identical at any
//! [`thread count`](FaultSimConfig::threads).
//!
//! Two engines implement that contract ([`FaultSimEngine`]): the scalar
//! engine simulates one fault per [`Simulator`]; the bit-parallel
//! [`FaultSimEngine::Wide`] engine (classic PPSFP, transposed to
//! fault-parallel) packs a golden machine and up to 63 faulty machines
//! into the 64 lanes of a [`WideSimulator`], so one settle pass
//! advances the whole group and an XOR against lane 0 observes every
//! fault at once. Fault dropping becomes clearing a lane bit out of the
//! group's active mask. Both engines produce byte-identical reports —
//! same detections, same per-fault cycle accounting — at any thread
//! count and any lane packing, pinned by differential tests.

use crate::{DftError, Lfsr, ScanChains, TestModeConfig};
use scanguard_netlist::{CellId, CellLibrary, GateKind, Logic, LogicWord, NetId, Netlist};
use scanguard_obs::{arg, HistogramHandle, Lane, Recorder};
use scanguard_par::run_pool_obs;
use scanguard_sim::{Simulator, WideSimulator};
use std::collections::HashSet;
use std::time::Instant;

/// Stuck-at polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum StuckAt {
    /// Output stuck at logic 0.
    Zero,
    /// Output stuck at logic 1.
    One,
}

impl StuckAt {
    fn level(self) -> Logic {
        match self {
            StuckAt::Zero => Logic::Zero,
            StuckAt::One => Logic::One,
        }
    }
}

/// One single stuck-at fault on a cell's output net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Fault {
    /// The faulty cell.
    pub cell: CellId,
    /// The stuck polarity.
    pub stuck: StuckAt,
}

/// Which simulation engine evaluates the faulty machines.
///
/// Both engines produce byte-identical [`CoverageReport`]s (enforced by
/// differential tests); they differ only in wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultSimEngine {
    /// One scalar [`Simulator`] per fault, fault-dropped (PR 2).
    #[default]
    Scalar,
    /// Bit-parallel PPSFP: one [`WideSimulator`] per group of up to 63
    /// faults — lane 0 golden, lanes 1..64 faulty, XOR against lane 0
    /// giving detection for free.
    Wide,
}

impl FaultSimEngine {
    /// The wire/CLI name (`scalar` / `wide`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSimEngine::Scalar => "scalar",
            FaultSimEngine::Wide => "wide",
        }
    }

    /// Parses an engine name as used by the CLI (`scalar` / `wide`).
    #[must_use]
    pub fn parse(name: &str) -> Option<FaultSimEngine> {
        match name {
            "scalar" => Some(FaultSimEngine::Scalar),
            "wide" => Some(FaultSimEngine::Wide),
            _ => None,
        }
    }
}

// Hand-written (the vendored mini-serde derive has no `#[serde(...)]`
// attributes): lowercase wire names, and an absent field — `Null` in the
// value model — falls back to the default engine.
impl serde::Serialize for FaultSimEngine {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_owned())
    }
}

impl serde::Deserialize for FaultSimEngine {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Null => Ok(FaultSimEngine::default()),
            _ => v
                .as_str()
                .and_then(FaultSimEngine::parse)
                .ok_or_else(|| serde::Error::custom("engine must be \"scalar\" or \"wide\"")),
        }
    }
}

/// Configuration of a fault-simulation run.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultSimConfig {
    /// Random scan patterns to apply.
    pub patterns: usize,
    /// RNG seed for pattern generation.
    pub seed: u64,
    /// Cap on the number of faults simulated (random sample when the
    /// enumerated list is larger); `None` = all.
    pub max_faults: Option<usize>,
    /// Input ports held at 0 instead of receiving random stimulus
    /// (monitor/injector controls of a protected design).
    pub hold_low: Vec<String>,
    /// Worker threads to fan the fault list over (clamped to at least
    /// 1). The report is identical at any thread count.
    pub threads: usize,
    /// The simulation engine. The report is identical for either choice;
    /// [`FaultSimEngine::Wide`] simulates 63 faults per settle pass.
    /// Defaults to scalar when absent from a serialized config.
    pub engine: FaultSimEngine,
}

impl Default for FaultSimConfig {
    fn default() -> Self {
        FaultSimConfig {
            patterns: 16,
            seed: 0xFA_17,
            max_faults: None,
            hold_low: Vec::new(),
            threads: 1,
            engine: FaultSimEngine::Scalar,
        }
    }
}

/// Result of a fault-simulation run.
///
/// Everything except [`wall_ms`](Self::wall_ms) is a pure function of
/// the netlist, access structure and config — thread count changes
/// wall-clock time, nothing else (and `wall_ms` is excluded from
/// equality for exactly that reason).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CoverageReport {
    /// Faults simulated.
    pub faults: usize,
    /// Faults whose effect reached a scan-out or primary output.
    pub detected: usize,
    /// A sample of undetected faults (at most 16), for diagnosis.
    pub undetected_sample: Vec<Fault>,
    /// Histogram of first detections: `detected_at_pattern[p]` counts
    /// the faults first detected while comparing pattern `p`'s response;
    /// the final bucket (`[patterns]`) is the post-test flush.
    pub detected_at_pattern: Vec<usize>,
    /// Total clock cycles spent simulating faulty machines (the golden
    /// run is excluded).
    pub simulated_cycles: u64,
    /// Cycles fault dropping avoided, relative to running every fault
    /// against the full pattern set plus flush.
    pub dropped_cycles: u64,
    /// Wall-clock time of the whole run, milliseconds. Measurement
    /// noise: ignored by `==`.
    pub wall_ms: f64,
}

impl PartialEq for CoverageReport {
    fn eq(&self, other: &Self) -> bool {
        // wall_ms is timing noise, not part of the result's identity.
        self.faults == other.faults
            && self.detected == other.detected
            && self.undetected_sample == other.undetected_sample
            && self.detected_at_pattern == other.detected_at_pattern
            && self.simulated_cycles == other.simulated_cycles
            && self.dropped_cycles == other.dropped_cycles
    }
}

impl CoverageReport {
    /// Coverage percentage, or `None` when no faults were simulated —
    /// an empty fault list is "nothing measured", not 100% coverage.
    #[must_use]
    pub fn coverage_pct(&self) -> Option<f64> {
        (self.faults > 0).then(|| self.detected as f64 / self.faults as f64 * 100.0)
    }
}

/// Enumerates the single stuck-at faults of a netlist: two per cell
/// output, skipping the trivially undetectable polarity of tie cells.
#[must_use]
pub fn enumerate_faults(netlist: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::with_capacity(netlist.cell_count() * 2);
    for (id, cell) in netlist.cells() {
        match cell.kind() {
            GateKind::TieLo => faults.push(Fault {
                cell: id,
                stuck: StuckAt::One,
            }),
            GateKind::TieHi => faults.push(Fault {
                cell: id,
                stuck: StuckAt::Zero,
            }),
            _ => {
                faults.push(Fault {
                    cell: id,
                    stuck: StuckAt::Zero,
                });
                faults.push(Fault {
                    cell: id,
                    stuck: StuckAt::One,
                });
            }
        }
    }
    faults
}

/// How the tester reaches the chains.
#[derive(Debug, Clone, Copy)]
pub enum ScanAccess<'a> {
    /// Directly through the per-chain `si`/`so` ports (a plain scanned
    /// design, before any monitor overlay).
    Direct(&'a ScanChains),
    /// Through the Fig. 5(b) concatenated test chains (a protected
    /// design).
    TestMode(&'a ScanChains, &'a TestModeConfig),
}

impl<'a> ScanAccess<'a> {
    fn width(&self) -> usize {
        match self {
            ScanAccess::Direct(c) => c.width(),
            ScanAccess::TestMode(_, tm) => tm.test_width,
        }
    }

    fn length(&self) -> usize {
        match self {
            ScanAccess::Direct(c) => c.max_len(),
            ScanAccess::TestMode(_, tm) => tm.test_chain_len,
        }
    }

    fn se(&self) -> NetId {
        match self {
            ScanAccess::Direct(c) | ScanAccess::TestMode(c, _) => c.se,
        }
    }

    fn enter(&self, sim: &mut Simulator<'_>) {
        if let ScanAccess::TestMode(_, tm) = self {
            tm.set_test_mode(sim, true);
        }
    }

    fn shift(&self, sim: &mut Simulator<'_>, inputs: &[Logic]) -> Vec<Logic> {
        match self {
            ScanAccess::Direct(c) => c.shift(sim, inputs),
            ScanAccess::TestMode(_, tm) => tm.shift(sim, inputs),
        }
    }

    /// The scan-in nets a tester drives, one per pin, in pin order.
    fn si_nets(&self) -> Vec<NetId> {
        match self {
            ScanAccess::Direct(c) => c.chains.iter().map(|ch| ch.si).collect(),
            ScanAccess::TestMode(_, tm) => tm.test_si.clone(),
        }
    }

    /// The scan-out nets a tester observes, aligned with
    /// [`si_nets`](Self::si_nets) and with the observation order of
    /// [`shift`](Self::shift).
    fn so_nets(&self) -> Vec<NetId> {
        match self {
            ScanAccess::Direct(c) => c.chains.iter().map(|ch| ch.so).collect(),
            ScanAccess::TestMode(_, tm) => tm.test_so.clone(),
        }
    }

    fn enter_wide(&self, sim: &mut WideSimulator<'_>) {
        if let ScanAccess::TestMode(_, tm) = self {
            sim.set_net(tm.test_mode, Logic::One);
        }
    }
}

/// One pre-generated test pattern.
#[derive(Debug, Clone)]
struct Pattern {
    /// Scan stimulus, `[cycle][pin]`.
    scan_in: Vec<Vec<Logic>>,
    /// Primary-input stimulus for the capture cycle, aligned with the
    /// free (non-held, non-scan) input list.
    pi: Vec<Logic>,
}

/// The response signature of one pattern: everything a tester observes.
type Response = Vec<Logic>;

/// A mismatch a tester would log: both values known and different.
fn differs(golden: &[Logic], observed: &[Logic]) -> bool {
    golden
        .iter()
        .zip(observed)
        .any(|(&g, &f)| g.is_known() && f.is_known() && g != f)
}

/// The word-parallel form of [`differs`] for one observed net: lane 0
/// carries the golden machine, and the returned mask has a bit per lane
/// whose value is known and differs from a *known* lane 0 — exactly the
/// scalar "both values known and different" rule, 64 lanes at a time.
fn mismatch_word(w: LogicWord) -> u64 {
    if w.xs & 1 != 0 {
        // Golden value unknown: a tester masks this bit for every lane.
        return 0;
    }
    let golden = if w.ones & 1 != 0 { !0u64 } else { 0 };
    (w.ones ^ golden) & !w.xs
}

/// Drops the lanes in `mism`: records the detecting pattern and the
/// analytic cycle count, exactly what the scalar engine's `sim.cycles()`
/// reads at its early return. Lane `k` carries fault `k - 1`.
fn record_drops(
    mism: u64,
    pattern: usize,
    cycles_now: u64,
    active: &mut u64,
    detected_at: &mut [Option<usize>],
    cycles: &mut [u64],
) {
    let mut m = mism;
    while m != 0 {
        let lane = m.trailing_zeros() as usize;
        m &= m - 1;
        detected_at[lane - 1] = Some(pattern);
        cycles[lane - 1] = cycles_now;
    }
    *active &= !mism;
}

/// What one fault's (possibly dropped) simulation produced.
struct FaultOutcome {
    /// Index of the pattern whose response first exposed the fault
    /// (`patterns.len()` = the final flush); `None` = undetected.
    detected_at: Option<usize>,
    /// Clock cycles this fault's simulation ran before dropping.
    cycles: u64,
}

/// The shared, read-only context every worker simulates against.
struct Tester<'a> {
    netlist: &'a Netlist,
    lib: &'a CellLibrary,
    access: ScanAccess<'a>,
    free_pi: Vec<NetId>,
    patterns: Vec<Pattern>,
    width: usize,
    length: usize,
    obs: Option<&'a Recorder>,
}

impl Tester<'_> {
    /// A zero-driven simulator, optionally with one stuck-at injected.
    fn fresh_sim(&self, fault: Option<Fault>) -> Simulator<'_> {
        let mut sim = Simulator::new(self.netlist, self.lib);
        if let Some(rec) = self.obs {
            // Settle/frontier metrics are commutative sums over the
            // (deterministic) per-fault runs, so they stay
            // thread-count-blind.
            sim.attach_obs(rec);
        }
        for (_, net) in self.netlist.input_ports() {
            sim.set_net(*net, Logic::Zero);
        }
        if let Some(f) = fault {
            sim.set_stuck(self.netlist.cell(f.cell).output(), f.stuck.level());
        }
        self.access.enter(&mut sim);
        sim
    }

    /// Applies one pattern: shift in over the full chain length
    /// (observing the previous contents as they emerge), drive random
    /// primary inputs, capture one functional cycle, observe POs.
    fn apply_pattern(&self, sim: &mut Simulator<'_>, p: &Pattern) -> Response {
        let mut observed = Vec::new();
        sim.set_net(self.access.se(), Logic::One);
        for ins in &p.scan_in {
            observed.extend(self.access.shift(sim, ins));
        }
        sim.set_net(self.access.se(), Logic::Zero);
        for (&net, &v) in self.free_pi.iter().zip(&p.pi) {
            sim.set_net(net, v);
        }
        sim.settle();
        for (_, net) in self.netlist.output_ports() {
            observed.push(sim.value(*net));
        }
        sim.step();
        observed
    }

    /// [`apply_pattern`](Self::apply_pattern) against a golden response:
    /// every observed bit is compared the cycle it emerges, and the rest
    /// of the pattern is abandoned at the first mismatch — a tester
    /// would log the failing cycle, and a dropped fault needs nothing
    /// more. Returns `true` on a mismatch.
    fn apply_pattern_vs(&self, sim: &mut Simulator<'_>, p: &Pattern, golden: &[Logic]) -> bool {
        let mut at = 0usize;
        sim.set_net(self.access.se(), Logic::One);
        for ins in &p.scan_in {
            let outs = self.access.shift(sim, ins);
            if differs(&golden[at..at + outs.len()], &outs) {
                return true;
            }
            at += outs.len();
        }
        sim.set_net(self.access.se(), Logic::Zero);
        for (&net, &v) in self.free_pi.iter().zip(&p.pi) {
            sim.set_net(net, v);
        }
        sim.settle();
        for (_, net) in self.netlist.output_ports() {
            let g = golden[at];
            let f = sim.value(*net);
            if g.is_known() && f.is_known() && g != f {
                return true;
            }
            at += 1;
        }
        sim.step();
        false
    }

    /// The final flush, so the last capture is observed too.
    fn flush(&self, sim: &mut Simulator<'_>) -> Response {
        sim.set_net(self.access.se(), Logic::One);
        let zeros = vec![Logic::Zero; self.width];
        let mut flushed = Vec::new();
        for _ in 0..self.length {
            flushed.extend(self.access.shift(sim, &zeros));
        }
        flushed
    }

    /// [`flush`](Self::flush) against the golden flush, stopping at the
    /// first mismatching bit. Returns `true` on a mismatch.
    fn flush_vs(&self, sim: &mut Simulator<'_>, golden: &[Logic]) -> bool {
        sim.set_net(self.access.se(), Logic::One);
        let zeros = vec![Logic::Zero; self.width];
        let mut at = 0usize;
        for _ in 0..self.length {
            let outs = self.access.shift(sim, &zeros);
            if differs(&golden[at..at + outs.len()], &outs) {
                return true;
            }
            at += outs.len();
        }
        false
    }

    /// The fault-free run: one response per pattern plus the flush, and
    /// the cycle count of the full (never-dropped) test.
    fn golden(&self) -> (Vec<Response>, u64) {
        if let Some(rec) = self.obs {
            rec.begin(Lane::Controller, "golden", 0);
        }
        let mut sim = self.fresh_sim(None);
        let mut responses: Vec<Response> = self
            .patterns
            .iter()
            .map(|p| self.apply_pattern(&mut sim, p))
            .collect();
        responses.push(self.flush(&mut sim));
        let cycles = sim.cycles();
        if let Some(rec) = self.obs {
            rec.end(
                Lane::Controller,
                "golden",
                cycles,
                vec![
                    arg("cycles", cycles),
                    arg("patterns", self.patterns.len() as u64),
                ],
            );
        }
        (responses, cycles)
    }

    /// Simulates one fault with dropping: every observed bit is checked
    /// against the golden response the cycle it emerges, and the run
    /// stops — mid-pattern — at the first mismatch.
    fn simulate_fault(&self, fault: Fault, golden: &[Response]) -> FaultOutcome {
        let mut sim = self.fresh_sim(Some(fault));
        for (p, pattern) in self.patterns.iter().enumerate() {
            if self.apply_pattern_vs(&mut sim, pattern, &golden[p]) {
                return FaultOutcome {
                    detected_at: Some(p),
                    cycles: sim.cycles(),
                };
            }
        }
        let detected_at = self
            .flush_vs(&mut sim, &golden[self.patterns.len()])
            .then_some(self.patterns.len());
        FaultOutcome {
            detected_at,
            cycles: sim.cycles(),
        }
    }

    /// Simulates up to 63 faults at once on a [`WideSimulator`]: lane 0
    /// runs the golden machine, lane `k + 1` carries `faults[k]`, and
    /// every observed net is XOR-compared against lane 0 the cycle it
    /// emerges. Detected lanes are masked out of `active` (word-level
    /// fault dropping) and the group exits as soon as every fault lane
    /// has dropped.
    ///
    /// The per-fault outcome is *defined* to match the scalar engine:
    /// the same observation points in the same order give the same
    /// `detected_at`, and the analytic cycle counts reproduce what the
    /// scalar run's `sim.cycles()` reads when it drops — `full_cycles`
    /// for a fault the whole test never exposes.
    fn simulate_group(&self, faults: &[Fault], full_cycles: u64) -> Vec<FaultOutcome> {
        let lanes = faults.len();
        debug_assert!((1..=63).contains(&lanes), "group of {lanes} fault lanes");
        let mut sim = WideSimulator::new(self.netlist, self.lib);
        if let Some(rec) = self.obs {
            sim.attach_obs(rec);
        }
        for (_, net) in self.netlist.input_ports() {
            sim.set_net(*net, Logic::Zero);
        }
        for (k, f) in faults.iter().enumerate() {
            sim.set_stuck_lane(self.netlist.cell(f.cell).output(), k + 1, f.stuck.level());
        }
        self.access.enter_wide(&mut sim);
        let si = self.access.si_nets();
        let so = self.access.so_nets();
        let se = self.access.se();
        let per_pattern = self.length as u64 + 1;

        // Bits 1..=lanes are live fault lanes; lane 0 (golden) never drops.
        let mut active: u64 = (!0u64 >> (63 - lanes)) & !1;
        let mut detected_at: Vec<Option<usize>> = vec![None; lanes];
        let mut cycles: Vec<u64> = vec![full_cycles; lanes];

        'test: {
            for (p, pattern) in self.patterns.iter().enumerate() {
                sim.set_net(se, Logic::One);
                for (c, ins) in pattern.scan_in.iter().enumerate() {
                    for (&net, &bit) in si.iter().zip(ins) {
                        sim.set_net(net, bit);
                    }
                    sim.settle();
                    let mut mism = 0u64;
                    for &net in &so {
                        mism |= mismatch_word(sim.value(net));
                    }
                    mism &= active;
                    if mism != 0 {
                        // The scalar engine counts the detecting shift's
                        // clock (it steps inside `shift` before comparing).
                        let now = p as u64 * per_pattern + c as u64 + 1;
                        record_drops(mism, p, now, &mut active, &mut detected_at, &mut cycles);
                        if active == 0 {
                            break 'test;
                        }
                    }
                    sim.step();
                }
                sim.set_net(se, Logic::Zero);
                for (&net, &v) in self.free_pi.iter().zip(&pattern.pi) {
                    sim.set_net(net, v);
                }
                sim.settle();
                let mut mism = 0u64;
                for (_, net) in self.netlist.output_ports() {
                    mism |= mismatch_word(sim.value(*net));
                }
                mism &= active;
                if mism != 0 {
                    // POs are compared after l shifts, before the capture
                    // clock.
                    let now = p as u64 * per_pattern + self.length as u64;
                    record_drops(mism, p, now, &mut active, &mut detected_at, &mut cycles);
                    if active == 0 {
                        break 'test;
                    }
                }
                sim.step();
            }
            // The final flush exposes the last capture.
            sim.set_net(se, Logic::One);
            let base = self.patterns.len() as u64 * per_pattern;
            for c in 0..self.length {
                for &net in &si {
                    sim.set_net(net, Logic::Zero);
                }
                sim.settle();
                let mut mism = 0u64;
                for &net in &so {
                    mism |= mismatch_word(sim.value(net));
                }
                mism &= active;
                if mism != 0 {
                    let now = base + c as u64 + 1;
                    record_drops(
                        mism,
                        self.patterns.len(),
                        now,
                        &mut active,
                        &mut detected_at,
                        &mut cycles,
                    );
                    if active == 0 {
                        break 'test;
                    }
                }
                sim.step();
            }
        }

        detected_at
            .into_iter()
            .zip(cycles)
            .map(|(detected_at, cycles)| FaultOutcome {
                detected_at,
                cycles,
            })
            .collect()
    }
}

/// Runs stuck-at fault simulation and reports coverage.
///
/// The golden responses are computed once; each fault is then simulated
/// until its first detection (fault dropping) on
/// [`threads`](FaultSimConfig::threads) workers. A fault is detected
/// when any observed bit (scan-out streams or primary outputs at
/// capture) differs from the golden run with both values known.
///
/// # Errors
///
/// Returns [`DftError::Netlist`] naming the port when a
/// [`hold_low`](FaultSimConfig::hold_low) entry is not a port of the
/// netlist — a misspelled monitor control would otherwise silently
/// receive random stimulus and corrupt the coverage number.
///
/// # Panics
///
/// Panics if the netlist's ports disagree with the access structure
/// (internal wiring bug).
pub fn fault_coverage(
    netlist: &Netlist,
    access: ScanAccess<'_>,
    lib: &CellLibrary,
    faults: &[Fault],
    cfg: &FaultSimConfig,
) -> Result<CoverageReport, DftError> {
    fault_coverage_obs(netlist, access, lib, faults, cfg, None)
}

/// [`fault_coverage`] with observability: when a [`Recorder`] is
/// supplied, the run is traced and measured —
///
/// * the golden run becomes a `golden` span on the controller lane and
///   each fault an instant on its worker's lane (cell, polarity, where
///   it was first detected, cycles before dropping);
/// * deterministic metrics `dft.faults`, `dft.faults.detected`,
///   `dft.cycles.simulated`, `dft.cycles.dropped` and histograms
///   `dft.fault_cycles` (cycles per fault before dropping) and
///   `dft.detect_pattern` (first-detection pattern index) accumulate
///   into the recorder's registry, together with the simulator's settle
///   metrics — all commutative sums, so the deterministic snapshot is
///   byte-identical at any thread count.
///
/// The report itself is byte-identical with and without a recorder.
///
/// # Errors
///
/// As [`fault_coverage`].
///
/// # Panics
///
/// As [`fault_coverage`].
pub fn fault_coverage_obs(
    netlist: &Netlist,
    access: ScanAccess<'_>,
    lib: &CellLibrary,
    faults: &[Fault],
    cfg: &FaultSimConfig,
    obs: Option<&Recorder>,
) -> Result<CoverageReport, DftError> {
    fault_coverage_impl(netlist, access, lib, faults, cfg, obs, WIDE_GROUP)
}

/// Fault lanes per [`WideSimulator`] group: 64 machine lanes minus the
/// golden lane.
const WIDE_GROUP: usize = 63;

/// The engine-dispatching implementation. `group_lanes` is the wide
/// engine's lane packing (production always passes [`WIDE_GROUP`]; tests
/// pin that the report is identical at any packing).
fn fault_coverage_impl(
    netlist: &Netlist,
    access: ScanAccess<'_>,
    lib: &CellLibrary,
    faults: &[Fault],
    cfg: &FaultSimConfig,
    obs: Option<&Recorder>,
    group_lanes: usize,
) -> Result<CoverageReport, DftError> {
    let start = Instant::now();
    // Sample the fault list if requested.
    let mut lfsr = Lfsr::maximal(32, cfg.seed | 1);
    let sampled: Vec<Fault> = match cfg.max_faults {
        Some(cap) if faults.len() > cap => {
            let mut picked = Vec::with_capacity(cap);
            let mut taken = vec![false; faults.len()];
            while picked.len() < cap {
                let i = lfsr.next_below(faults.len() as u64) as usize;
                if !taken[i] {
                    taken[i] = true;
                    picked.push(faults[i]);
                }
            }
            picked
        }
        _ => faults.to_vec(),
    };

    // Free primary inputs = ports that are not scan pins, not scan
    // enable, not explicitly held low.
    let scan_pins: HashSet<NetId> = {
        let mut v = Vec::new();
        match access {
            ScanAccess::Direct(c) => v.extend(c.chains.iter().map(|ch| ch.si)),
            ScanAccess::TestMode(c, tm) => {
                v.extend(c.chains.iter().map(|ch| ch.si));
                v.extend(tm.test_si.iter().copied());
                v.push(tm.test_mode);
            }
        }
        v.push(access.se());
        v.into_iter().collect()
    };
    let held: HashSet<NetId> = cfg
        .hold_low
        .iter()
        .map(|name| netlist.port(name).map_err(DftError::from))
        .collect::<Result<_, _>>()?;
    let free_pi: Vec<NetId> = netlist
        .input_ports()
        .iter()
        .map(|(_, n)| *n)
        .filter(|n| !scan_pins.contains(n) && !held.contains(n))
        .collect();

    // Pre-generate patterns.
    let w = access.width();
    let l = access.length();
    let patterns: Vec<Pattern> = (0..cfg.patterns)
        .map(|_| Pattern {
            scan_in: (0..l)
                .map(|_| (0..w).map(|_| Logic::from(lfsr.next_bit())).collect())
                .collect(),
            pi: (0..free_pi.len())
                .map(|_| Logic::from(lfsr.next_bit()))
                .collect(),
        })
        .collect();

    let tester = Tester {
        netlist,
        lib,
        access,
        free_pi,
        patterns,
        width: w,
        length: l,
        obs,
    };

    // Fan the faults out; outcomes come back in index order, so the
    // merge below (and thus the whole report) is thread-count-blind.
    let (outcomes, full_cycles) = match cfg.engine {
        FaultSimEngine::Scalar => {
            let (golden, full_cycles) = tester.golden();
            let outcomes = run_pool_obs(sampled.len(), cfg.threads, obs, |worker, i| {
                let fault = sampled[i];
                let outcome = tester.simulate_fault(fault, &golden);
                if let Some(rec) = obs {
                    emit_fault_instant(rec, worker, cfg.patterns, fault, &outcome);
                }
                outcome
            });
            (outcomes, full_cycles)
        }
        FaultSimEngine::Wide => {
            // No golden run: lane 0 of every group is the golden machine,
            // and the never-dropped test length is analytic — l shifts
            // plus a capture per pattern, then the l-cycle flush.
            let full_cycles = cfg.patterns as u64 * (l as u64 + 1) + l as u64;
            let groups: Vec<&[Fault]> = sampled.chunks(group_lanes.clamp(1, WIDE_GROUP)).collect();
            let group_outcomes = run_pool_obs(groups.len(), cfg.threads, obs, |worker, g| {
                let outcomes = tester.simulate_group(groups[g], full_cycles);
                if let Some(rec) = obs {
                    for (&fault, outcome) in groups[g].iter().zip(&outcomes) {
                        emit_fault_instant(rec, worker, cfg.patterns, fault, outcome);
                    }
                }
                outcomes
            });
            let outcomes: Vec<FaultOutcome> = group_outcomes.into_iter().flatten().collect();
            (outcomes, full_cycles)
        }
    };

    let (fault_cycles, detect_pattern) = match obs {
        Some(rec) => (
            rec.histogram("dft.fault_cycles"),
            rec.histogram("dft.detect_pattern"),
        ),
        None => (HistogramHandle::disabled(), HistogramHandle::disabled()),
    };
    let mut detected = 0usize;
    let mut undetected_sample = Vec::new();
    let mut detected_at_pattern = vec![0usize; cfg.patterns + 1];
    let mut simulated_cycles = 0u64;
    for (fault, outcome) in sampled.iter().zip(&outcomes) {
        simulated_cycles += outcome.cycles;
        fault_cycles.record(outcome.cycles);
        match outcome.detected_at {
            Some(p) => {
                detected += 1;
                detected_at_pattern[p] += 1;
                detect_pattern.record(p as u64);
            }
            None => {
                if undetected_sample.len() < 16 {
                    undetected_sample.push(*fault);
                }
            }
        }
    }
    let dropped_cycles = (full_cycles * sampled.len() as u64).saturating_sub(simulated_cycles);
    if let Some(rec) = obs {
        rec.counter("dft.faults").add(sampled.len() as u64);
        rec.counter("dft.faults.detected").add(detected as u64);
        rec.counter("dft.patterns").add(cfg.patterns as u64);
        rec.counter("dft.cycles.simulated").add(simulated_cycles);
        rec.counter("dft.cycles.dropped").add(dropped_cycles);
    }
    Ok(CoverageReport {
        faults: sampled.len(),
        detected,
        undetected_sample,
        detected_at_pattern,
        simulated_cycles,
        dropped_cycles,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    })
}

/// One trace instant per simulated fault, identical for both engines.
fn emit_fault_instant(
    rec: &Recorder,
    worker: usize,
    patterns: usize,
    fault: Fault,
    outcome: &FaultOutcome,
) {
    let detected = match outcome.detected_at {
        Some(p) if p == patterns => "flush".to_owned(),
        Some(p) => format!("p{p}"),
        None => "undetected".to_owned(),
    };
    rec.instant(
        Lane::Worker(worker as u32),
        "fault",
        outcome.cycles,
        vec![
            arg("cell", fault.cell.index() as u64),
            arg("stuck", matches!(fault.stuck, StuckAt::One) as u64),
            arg("detected", detected.as_str()),
            arg("cycles", outcome.cycles),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{configure_test_mode, insert_scan, ScanConfig};
    use scanguard_netlist::NetlistBuilder;

    /// A scanned 8-flop design with a little combinational logic.
    fn scanned() -> (Netlist, ScanChains) {
        let mut b = NetlistBuilder::new("dut");
        let mut qs = Vec::new();
        for i in 0..8 {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            qs.push(q);
        }
        let parity = b.xor_tree(&qs);
        b.output("parity", parity);
        let anded = b.and_tree(&qs[..4]);
        b.output("all4", anded);
        let mut nl = b.finish().unwrap();
        let sc = insert_scan(&mut nl, &ScanConfig::with_chains(2)).unwrap();
        (nl, sc)
    }

    #[test]
    fn enumeration_skips_trivial_tie_faults() {
        let mut b = NetlistBuilder::new("t");
        let z = b.tie_lo();
        let o = b.tie_hi();
        let y = b.and2(z, o);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let faults = enumerate_faults(&nl);
        // TieLo: only s-a-1; TieHi: only s-a-0; And2: both.
        assert_eq!(faults.len(), 4);
    }

    #[test]
    fn scan_test_achieves_high_coverage_on_a_scanned_design() {
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let faults = enumerate_faults(&nl);
        let report = fault_coverage(
            &nl,
            ScanAccess::Direct(&sc),
            &lib,
            &faults,
            &FaultSimConfig {
                patterns: 12,
                ..FaultSimConfig::default()
            },
        )
        .unwrap();
        let pct = report.coverage_pct().expect("faults were simulated");
        assert!(
            pct > 90.0,
            "scan test should catch most stuck-ats: {:.1}% ({:?})",
            pct,
            report.undetected_sample
        );
    }

    #[test]
    fn a_blatant_fault_is_always_detected() {
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        // Stick a scan flop's output: breaks the shift path itself.
        let victim = sc.chains[0].cells[1];
        let faults = vec![
            Fault {
                cell: victim,
                stuck: StuckAt::Zero,
            },
            Fault {
                cell: victim,
                stuck: StuckAt::One,
            },
        ];
        let report = fault_coverage(
            &nl,
            ScanAccess::Direct(&sc),
            &lib,
            &faults,
            &FaultSimConfig {
                patterns: 4,
                ..FaultSimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.detected, 2);
        assert_eq!(report.coverage_pct(), Some(100.0));
    }

    #[test]
    fn test_mode_access_reaches_the_same_faults() {
        let (mut nl, sc) = scanned();
        let tm = configure_test_mode(&mut nl, &sc, 1).unwrap();
        let lib = CellLibrary::st120nm();
        let faults: Vec<Fault> = sc
            .cells()
            .map(|cell| Fault {
                cell,
                stuck: StuckAt::Zero,
            })
            .collect();
        let report = fault_coverage(
            &nl,
            ScanAccess::TestMode(&sc, &tm),
            &lib,
            &faults,
            &FaultSimConfig {
                patterns: 6,
                hold_low: vec![],
                ..FaultSimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            report.detected, report.faults,
            "every flop fault visible through the concatenated chain: {report:?}"
        );
    }

    #[test]
    fn fault_sampling_caps_the_run() {
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let faults = enumerate_faults(&nl);
        let report = fault_coverage(
            &nl,
            ScanAccess::Direct(&sc),
            &lib,
            &faults,
            &FaultSimConfig {
                patterns: 4,
                max_faults: Some(10),
                ..FaultSimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.faults, 10);
    }

    #[test]
    fn empty_fault_list_is_not_perfect_coverage() {
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let report = fault_coverage(
            &nl,
            ScanAccess::Direct(&sc),
            &lib,
            &[],
            &FaultSimConfig {
                patterns: 2,
                ..FaultSimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.faults, 0);
        assert_eq!(report.coverage_pct(), None);
    }

    #[test]
    fn unknown_hold_low_port_is_an_error() {
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let faults = enumerate_faults(&nl);
        let err = fault_coverage(
            &nl,
            ScanAccess::Direct(&sc),
            &lib,
            &faults,
            &FaultSimConfig {
                patterns: 2,
                hold_low: vec!["mon_enn".into()],
                ..FaultSimConfig::default()
            },
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("mon_enn"),
            "the error must name the bad port: {err}"
        );
    }

    #[test]
    fn fault_dropping_stops_at_first_detection() {
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let victim = sc.chains[0].cells[1];
        let faults = vec![Fault {
            cell: victim,
            stuck: StuckAt::One,
        }];
        let patterns = 8;
        let report = fault_coverage(
            &nl,
            ScanAccess::Direct(&sc),
            &lib,
            &faults,
            &FaultSimConfig {
                patterns,
                ..FaultSimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.detected, 1);
        let p = report
            .detected_at_pattern
            .iter()
            .position(|&n| n == 1)
            .expect("one detection in the histogram");
        assert!(p < patterns, "a broken shift path is caught before flush");
        // One pattern costs chain-length shift cycles plus the capture
        // cycle; the run must stop within the detecting pattern — at
        // most `p+1` full patterns are simulated and pattern `p+1` is
        // never entered (and since detection is mid-shift here, not
        // even pattern `p` completes).
        let per_pattern = (sc.max_len() + 1) as u64;
        assert!(report.simulated_cycles > p as u64 * per_pattern);
        assert!(report.simulated_cycles < (p as u64 + 1) * per_pattern);
        assert!(report.dropped_cycles > 0, "dropping must save cycles");
    }

    /// `wall_ms` normalized out, everything else byte-for-byte.
    fn canonical_json(mut r: CoverageReport) -> String {
        r.wall_ms = 0.0;
        serde_json::to_string(&r).unwrap()
    }

    #[test]
    fn wide_engine_matches_scalar_byte_for_byte() {
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let faults = enumerate_faults(&nl);
        let run = |engine: FaultSimEngine, threads: usize| {
            fault_coverage(
                &nl,
                ScanAccess::Direct(&sc),
                &lib,
                &faults,
                &FaultSimConfig {
                    patterns: 8,
                    threads,
                    engine,
                    ..FaultSimConfig::default()
                },
            )
            .unwrap()
        };
        let scalar = run(FaultSimEngine::Scalar, 1);
        assert!(scalar.detected > 0, "fixture must detect something");
        for threads in [1, 8] {
            let wide = run(FaultSimEngine::Wide, threads);
            assert_eq!(
                canonical_json(scalar.clone()),
                canonical_json(wide),
                "wide engine diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn wide_engine_matches_scalar_through_test_mode() {
        let (mut nl, sc) = scanned();
        let tm = configure_test_mode(&mut nl, &sc, 1).unwrap();
        let lib = CellLibrary::st120nm();
        let faults = enumerate_faults(&nl);
        let run = |engine: FaultSimEngine| {
            fault_coverage(
                &nl,
                ScanAccess::TestMode(&sc, &tm),
                &lib,
                &faults,
                &FaultSimConfig {
                    patterns: 6,
                    engine,
                    ..FaultSimConfig::default()
                },
            )
            .unwrap()
        };
        assert_eq!(
            canonical_json(run(FaultSimEngine::Scalar)),
            canonical_json(run(FaultSimEngine::Wide)),
            "wide engine diverged through the concatenated test chains"
        );
    }

    #[test]
    fn lane_packing_does_not_change_the_report() {
        // 1 fault lane per group degenerates to serial golden-vs-faulty
        // pairs; 7 leaves the last group partial; 63 is production. All
        // must be byte-identical (and identical to scalar).
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let faults = enumerate_faults(&nl);
        let cfg = FaultSimConfig {
            patterns: 8,
            threads: 2,
            engine: FaultSimEngine::Wide,
            ..FaultSimConfig::default()
        };
        let scalar = fault_coverage(
            &nl,
            ScanAccess::Direct(&sc),
            &lib,
            &faults,
            &FaultSimConfig {
                engine: FaultSimEngine::Scalar,
                ..cfg.clone()
            },
        )
        .unwrap();
        for lanes in [1usize, 7, 63] {
            let wide = fault_coverage_impl(
                &nl,
                ScanAccess::Direct(&sc),
                &lib,
                &faults,
                &cfg,
                None,
                lanes,
            )
            .unwrap();
            assert_eq!(
                canonical_json(scalar.clone()),
                canonical_json(wide),
                "report changed at {lanes} fault lanes per group"
            );
        }
    }

    #[test]
    fn wide_metrics_snapshot_is_thread_count_blind() {
        use scanguard_obs::RecorderConfig;
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let faults = enumerate_faults(&nl);
        let run = |threads: usize| {
            let rec = Recorder::new(RecorderConfig {
                metrics: true,
                ..RecorderConfig::default()
            });
            let report = fault_coverage_obs(
                &nl,
                ScanAccess::Direct(&sc),
                &lib,
                &faults,
                &FaultSimConfig {
                    patterns: 8,
                    threads,
                    engine: FaultSimEngine::Wide,
                    ..FaultSimConfig::default()
                },
                Some(&rec),
            )
            .unwrap();
            (report, rec.metrics_snapshot())
        };
        let (serial_report, serial) = run(1);
        let (parallel_report, parallel) = run(8);
        assert_eq!(serial_report, parallel_report);
        assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
        assert!(
            serial.counters["sim.wide.settles"] > 0,
            "wide settle metrics flow in"
        );
        assert!(serial.counters["sim.wide.cell_evals"] > 0);
    }

    #[test]
    fn engine_names_round_trip_serde_and_parse() {
        assert_eq!(FaultSimEngine::parse("wide"), Some(FaultSimEngine::Wide),);
        assert_eq!(
            FaultSimEngine::parse("scalar"),
            Some(FaultSimEngine::Scalar)
        );
        assert_eq!(FaultSimEngine::parse("vector"), None);
        assert_eq!(
            serde_json::to_string(&FaultSimEngine::Wide).unwrap(),
            "\"wide\""
        );
        let cfg: FaultSimConfig = serde_json::from_str(
            "{\"patterns\":4,\"seed\":1,\"max_faults\":null,\"hold_low\":[],\"threads\":1}",
        )
        .unwrap();
        assert_eq!(cfg.engine, FaultSimEngine::Scalar, "engine defaults in");
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let faults = enumerate_faults(&nl);
        let run = |threads: usize| {
            fault_coverage(
                &nl,
                ScanAccess::Direct(&sc),
                &lib,
                &faults,
                &FaultSimConfig {
                    patterns: 8,
                    threads,
                    ..FaultSimConfig::default()
                },
            )
            .unwrap()
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial, parallel, "structural mismatch across thread counts");
        // Byte-identical once the wall-clock noise field is normalized.
        let normalize = |mut r: CoverageReport| {
            r.wall_ms = 0.0;
            serde_json::to_string(&r).unwrap()
        };
        assert_eq!(normalize(serial), normalize(parallel));
    }

    #[test]
    fn thread_count_does_not_change_the_metrics_snapshot() {
        use scanguard_obs::RecorderConfig;
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let faults = enumerate_faults(&nl);
        let run = |threads: usize| {
            let rec = Recorder::new(RecorderConfig {
                metrics: true,
                ..RecorderConfig::default()
            });
            let report = fault_coverage_obs(
                &nl,
                ScanAccess::Direct(&sc),
                &lib,
                &faults,
                &FaultSimConfig {
                    patterns: 8,
                    threads,
                    ..FaultSimConfig::default()
                },
                Some(&rec),
            )
            .unwrap();
            (report, rec.metrics_snapshot())
        };
        let (serial_report, serial) = run(1);
        let (parallel_report, parallel) = run(8);
        assert_eq!(serial_report, parallel_report);
        assert_eq!(
            serial, parallel,
            "deterministic metrics must be thread-count-blind"
        );
        assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
        assert_eq!(serial.counters["dft.faults"], faults.len() as u64);
        assert_eq!(
            serial.counters["dft.faults.detected"],
            serial_report.detected as u64
        );
        assert_eq!(
            serial.histograms["dft.fault_cycles"].count,
            faults.len() as u64
        );
        assert!(serial.counters["sim.cell_evals"] > 0, "sim metrics flow in");
    }

    #[test]
    fn observed_run_reports_the_same_coverage() {
        use scanguard_obs::{EventKind, RecorderConfig};
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let faults = enumerate_faults(&nl);
        let cfg = FaultSimConfig {
            patterns: 8,
            threads: 2,
            ..FaultSimConfig::default()
        };
        let rec = Recorder::new(RecorderConfig {
            trace: true,
            ..RecorderConfig::default()
        });
        let plain = fault_coverage(&nl, ScanAccess::Direct(&sc), &lib, &faults, &cfg).unwrap();
        let observed = fault_coverage_obs(
            &nl,
            ScanAccess::Direct(&sc),
            &lib,
            &faults,
            &cfg,
            Some(&rec),
        )
        .unwrap();
        assert_eq!(plain, observed, "tracing must not change the report");
        let events = rec.events();
        assert!(events
            .iter()
            .any(|e| e.lane == Lane::Controller && e.name == "golden"));
        let fault_marks = events
            .iter()
            .filter(|e| e.kind == EventKind::Instant && e.name == "fault")
            .count();
        assert_eq!(fault_marks, faults.len(), "one instant per fault");
    }
}
