//! Stuck-at fault simulation — the manufacturing-test job the scan
//! chains exist for in the first place.
//!
//! The paper's Sec. III argues its monitor reuses the chains "without
//! affecting manufacturing test"; this module lets that claim be checked
//! *quantitatively*: run the classic scan test (shift in a random
//! pattern, pulse one functional capture, shift out and compare) against
//! every single stuck-at fault and report coverage. The
//! `test_neutrality` integration tests compare PGC fault coverage before
//! and after monitor insertion.
//!
//! Serial fault simulation: the golden responses are computed once, then
//! each fault is simulated until its first detection (or the pattern set
//! is exhausted).

use crate::{Lfsr, ScanChains, TestModeConfig};
use scanguard_netlist::{CellId, CellLibrary, GateKind, Logic, NetId, Netlist};
use scanguard_sim::Simulator;

/// Stuck-at polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum StuckAt {
    /// Output stuck at logic 0.
    Zero,
    /// Output stuck at logic 1.
    One,
}

impl StuckAt {
    fn level(self) -> Logic {
        match self {
            StuckAt::Zero => Logic::Zero,
            StuckAt::One => Logic::One,
        }
    }
}

/// One single stuck-at fault on a cell's output net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Fault {
    /// The faulty cell.
    pub cell: CellId,
    /// The stuck polarity.
    pub stuck: StuckAt,
}

/// Configuration of a fault-simulation run.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultSimConfig {
    /// Random scan patterns to apply.
    pub patterns: usize,
    /// RNG seed for pattern generation.
    pub seed: u64,
    /// Cap on the number of faults simulated (random sample when the
    /// enumerated list is larger); `None` = all.
    pub max_faults: Option<usize>,
    /// Input ports held at 0 instead of receiving random stimulus
    /// (monitor/injector controls of a protected design).
    pub hold_low: Vec<String>,
}

impl Default for FaultSimConfig {
    fn default() -> Self {
        FaultSimConfig {
            patterns: 16,
            seed: 0xFA_17,
            max_faults: None,
            hold_low: Vec::new(),
        }
    }
}

/// Result of a fault-simulation run.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CoverageReport {
    /// Faults simulated.
    pub faults: usize,
    /// Faults whose effect reached a scan-out or primary output.
    pub detected: usize,
    /// A sample of undetected faults (at most 16), for diagnosis.
    pub undetected_sample: Vec<Fault>,
}

impl CoverageReport {
    /// Coverage percentage.
    #[must_use]
    pub fn coverage_pct(&self) -> f64 {
        if self.faults == 0 {
            return 100.0;
        }
        self.detected as f64 / self.faults as f64 * 100.0
    }
}

/// Enumerates the single stuck-at faults of a netlist: two per cell
/// output, skipping the trivially undetectable polarity of tie cells.
#[must_use]
pub fn enumerate_faults(netlist: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::with_capacity(netlist.cell_count() * 2);
    for (id, cell) in netlist.cells() {
        match cell.kind() {
            GateKind::TieLo => faults.push(Fault {
                cell: id,
                stuck: StuckAt::One,
            }),
            GateKind::TieHi => faults.push(Fault {
                cell: id,
                stuck: StuckAt::Zero,
            }),
            _ => {
                faults.push(Fault {
                    cell: id,
                    stuck: StuckAt::Zero,
                });
                faults.push(Fault {
                    cell: id,
                    stuck: StuckAt::One,
                });
            }
        }
    }
    faults
}

/// How the tester reaches the chains.
#[derive(Debug, Clone, Copy)]
pub enum ScanAccess<'a> {
    /// Directly through the per-chain `si`/`so` ports (a plain scanned
    /// design, before any monitor overlay).
    Direct(&'a ScanChains),
    /// Through the Fig. 5(b) concatenated test chains (a protected
    /// design).
    TestMode(&'a ScanChains, &'a TestModeConfig),
}

impl<'a> ScanAccess<'a> {
    fn width(&self) -> usize {
        match self {
            ScanAccess::Direct(c) => c.width(),
            ScanAccess::TestMode(_, tm) => tm.test_width,
        }
    }

    fn length(&self) -> usize {
        match self {
            ScanAccess::Direct(c) => c.max_len(),
            ScanAccess::TestMode(_, tm) => tm.test_chain_len,
        }
    }

    fn se(&self) -> NetId {
        match self {
            ScanAccess::Direct(c) | ScanAccess::TestMode(c, _) => c.se,
        }
    }

    fn enter(&self, sim: &mut Simulator<'_>) {
        if let ScanAccess::TestMode(_, tm) = self {
            tm.set_test_mode(sim, true);
        }
    }

    fn shift(&self, sim: &mut Simulator<'_>, inputs: &[Logic]) -> Vec<Logic> {
        match self {
            ScanAccess::Direct(c) => c.shift(sim, inputs),
            ScanAccess::TestMode(_, tm) => tm.shift(sim, inputs),
        }
    }
}

/// One pre-generated test pattern.
#[derive(Debug, Clone)]
struct Pattern {
    /// Scan stimulus, `[cycle][pin]`.
    scan_in: Vec<Vec<Logic>>,
    /// Primary-input stimulus for the capture cycle, aligned with the
    /// free (non-held, non-scan) input list.
    pi: Vec<Logic>,
}

/// The response signature of one pattern: everything a tester observes.
type Response = Vec<Logic>;

/// Runs stuck-at fault simulation and reports coverage.
///
/// For each pattern: shift in over the full chain length (observing the
/// previous contents as they emerge), drive random primary inputs,
/// capture one functional cycle, and finally flush out (observing the
/// captured state). A fault is detected when any observed bit (scan-out
/// streams or primary outputs at capture) differs from the golden run
/// with both values known.
///
/// # Panics
///
/// Panics if the netlist's ports disagree with the access structure
/// (internal wiring bug).
#[must_use]
pub fn fault_coverage(
    netlist: &Netlist,
    access: ScanAccess<'_>,
    lib: &CellLibrary,
    faults: &[Fault],
    cfg: &FaultSimConfig,
) -> CoverageReport {
    // Sample the fault list if requested.
    let mut lfsr = Lfsr::maximal(32, cfg.seed | 1);
    let sampled: Vec<Fault> = match cfg.max_faults {
        Some(cap) if faults.len() > cap => {
            let mut picked = Vec::with_capacity(cap);
            let mut taken = vec![false; faults.len()];
            while picked.len() < cap {
                let i = lfsr.next_below(faults.len() as u64) as usize;
                if !taken[i] {
                    taken[i] = true;
                    picked.push(faults[i]);
                }
            }
            picked
        }
        _ => faults.to_vec(),
    };

    // Free primary inputs = ports that are not scan pins, not scan
    // enable, not explicitly held low.
    let scan_pins: Vec<NetId> = {
        let mut v = Vec::new();
        match access {
            ScanAccess::Direct(c) => v.extend(c.chains.iter().map(|ch| ch.si)),
            ScanAccess::TestMode(c, tm) => {
                v.extend(c.chains.iter().map(|ch| ch.si));
                v.extend(tm.test_si.iter().copied());
                v.push(tm.test_mode);
            }
        }
        v.push(access.se());
        v
    };
    let held: Vec<NetId> = cfg
        .hold_low
        .iter()
        .filter_map(|name| netlist.port(name).ok())
        .collect();
    let free_pi: Vec<NetId> = netlist
        .input_ports()
        .iter()
        .map(|(_, n)| *n)
        .filter(|n| !scan_pins.contains(n) && !held.contains(n))
        .collect();

    // Pre-generate patterns.
    let w = access.width();
    let l = access.length();
    let patterns: Vec<Pattern> = (0..cfg.patterns)
        .map(|_| Pattern {
            scan_in: (0..l)
                .map(|_| (0..w).map(|_| Logic::from(lfsr.next_bit())).collect())
                .collect(),
            pi: (0..free_pi.len())
                .map(|_| Logic::from(lfsr.next_bit()))
                .collect(),
        })
        .collect();

    let run = |fault: Option<Fault>| -> Vec<Response> {
        let mut sim = Simulator::new(netlist, lib);
        for (_, net) in netlist.input_ports() {
            sim.set_net(*net, Logic::Zero);
        }
        if let Some(f) = fault {
            sim.set_stuck(netlist.cell(f.cell).output(), f.stuck.level());
        }
        access.enter(&mut sim);
        let mut responses = Vec::with_capacity(patterns.len());
        for p in &patterns {
            let mut observed = Vec::new();
            // Shift in (previous contents emerge — observed).
            sim.set_net(access.se(), Logic::One);
            for ins in &p.scan_in {
                observed.extend(access.shift(&mut sim, ins));
            }
            // Capture: drive PIs, one functional cycle, observe POs.
            sim.set_net(access.se(), Logic::Zero);
            for (&net, &v) in free_pi.iter().zip(&p.pi) {
                sim.set_net(net, v);
            }
            sim.settle();
            for (_, net) in netlist.output_ports() {
                observed.push(sim.value(*net));
            }
            sim.step();
            responses.push(observed);
        }
        // Final flush so the last capture is observed too.
        sim.set_net(access.se(), Logic::One);
        let mut flush = Vec::new();
        for _ in 0..l {
            flush.extend(access.shift(&mut sim, &vec![Logic::Zero; w]));
        }
        responses.push(flush);
        responses
    };

    let golden = run(None);
    let mut detected = 0usize;
    let mut undetected_sample = Vec::new();
    for &fault in &sampled {
        let faulty = run(Some(fault));
        let miss = golden
            .iter()
            .flatten()
            .zip(faulty.iter().flatten())
            .any(|(&g, &f)| g.is_known() && f.is_known() && g != f);
        if miss {
            detected += 1;
        } else if undetected_sample.len() < 16 {
            undetected_sample.push(fault);
        }
    }
    CoverageReport {
        faults: sampled.len(),
        detected,
        undetected_sample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{configure_test_mode, insert_scan, ScanConfig};
    use scanguard_netlist::NetlistBuilder;

    /// A scanned 8-flop design with a little combinational logic.
    fn scanned() -> (Netlist, ScanChains) {
        let mut b = NetlistBuilder::new("dut");
        let mut qs = Vec::new();
        for i in 0..8 {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            qs.push(q);
        }
        let parity = b.xor_tree(&qs);
        b.output("parity", parity);
        let anded = b.and_tree(&qs[..4]);
        b.output("all4", anded);
        let mut nl = b.finish().unwrap();
        let sc = insert_scan(&mut nl, &ScanConfig::with_chains(2)).unwrap();
        (nl, sc)
    }

    #[test]
    fn enumeration_skips_trivial_tie_faults() {
        let mut b = NetlistBuilder::new("t");
        let z = b.tie_lo();
        let o = b.tie_hi();
        let y = b.and2(z, o);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let faults = enumerate_faults(&nl);
        // TieLo: only s-a-1; TieHi: only s-a-0; And2: both.
        assert_eq!(faults.len(), 4);
    }

    #[test]
    fn scan_test_achieves_high_coverage_on_a_scanned_design() {
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let faults = enumerate_faults(&nl);
        let report = fault_coverage(
            &nl,
            ScanAccess::Direct(&sc),
            &lib,
            &faults,
            &FaultSimConfig {
                patterns: 12,
                ..FaultSimConfig::default()
            },
        );
        assert!(
            report.coverage_pct() > 90.0,
            "scan test should catch most stuck-ats: {:.1}% ({:?})",
            report.coverage_pct(),
            report.undetected_sample
        );
    }

    #[test]
    fn a_blatant_fault_is_always_detected() {
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        // Stick a scan flop's output: breaks the shift path itself.
        let victim = sc.chains[0].cells[1];
        let faults = vec![
            Fault {
                cell: victim,
                stuck: StuckAt::Zero,
            },
            Fault {
                cell: victim,
                stuck: StuckAt::One,
            },
        ];
        let report = fault_coverage(
            &nl,
            ScanAccess::Direct(&sc),
            &lib,
            &faults,
            &FaultSimConfig {
                patterns: 4,
                ..FaultSimConfig::default()
            },
        );
        assert_eq!(report.detected, 2);
        assert_eq!(report.coverage_pct(), 100.0);
    }

    #[test]
    fn test_mode_access_reaches_the_same_faults() {
        let (mut nl, sc) = scanned();
        let tm = configure_test_mode(&mut nl, &sc, 1).unwrap();
        let lib = CellLibrary::st120nm();
        let faults: Vec<Fault> = sc
            .cells()
            .map(|cell| Fault {
                cell,
                stuck: StuckAt::Zero,
            })
            .collect();
        let report = fault_coverage(
            &nl,
            ScanAccess::TestMode(&sc, &tm),
            &lib,
            &faults,
            &FaultSimConfig {
                patterns: 6,
                hold_low: vec![],
                ..FaultSimConfig::default()
            },
        );
        assert_eq!(
            report.detected, report.faults,
            "every flop fault visible through the concatenated chain: {report:?}"
        );
    }

    #[test]
    fn fault_sampling_caps_the_run() {
        let (nl, sc) = scanned();
        let lib = CellLibrary::st120nm();
        let faults = enumerate_faults(&nl);
        let report = fault_coverage(
            &nl,
            ScanAccess::Direct(&sc),
            &lib,
            &faults,
            &FaultSimConfig {
                patterns: 4,
                max_faults: Some(10),
                ..FaultSimConfig::default()
            },
        );
        assert_eq!(report.faults, 10);
    }
}
