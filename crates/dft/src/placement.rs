//! Placement-aware scan stitching.
//!
//! The paper's Sec. III re-orders flip-flops into chains ("128 flip-flops
//! are re-ordered into 16 scan chains"); on silicon the stitching order
//! is chosen from placement to keep scan routing short. This module
//! provides the placement model, chain-ordering heuristics, and the
//! wirelength metric to judge them — and, because the rush-current upset
//! model clusters *physically*, the chosen order also decides whether a
//! physical burst lands in one codeword or spreads across many.

use crate::{insert_scan_ordered, DftError, ScanChains, ScanConfig};
use scanguard_netlist::{CellId, Netlist};
use std::collections::HashMap;

/// Physical flop locations in micrometres.
///
/// # Examples
///
/// ```
/// use scanguard_dft::Placement;
/// use scanguard_netlist::CellId;
///
/// let cells: Vec<CellId> = (0..6).map(CellId::from_index).collect();
/// let p = Placement::grid(&cells, 3, 10.0);
/// assert_eq!(p.get(cells[4]), Some((10.0, 10.0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Placement {
    coords: HashMap<CellId, (f64, f64)>,
}

impl Placement {
    /// An empty placement.
    #[must_use]
    pub fn new() -> Self {
        Placement::default()
    }

    /// Places one cell.
    pub fn place(&mut self, cell: CellId, x: f64, y: f64) {
        self.coords.insert(cell, (x, y));
    }

    /// A cell's location.
    #[must_use]
    pub fn get(&self, cell: CellId) -> Option<(f64, f64)> {
        self.coords.get(&cell).copied()
    }

    /// Lays the given cells out on a regular grid of `columns` columns
    /// with the given pitch (row-major), the synthetic placement the
    /// benchmark generators use for register arrays.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is zero.
    #[must_use]
    pub fn grid(cells: &[CellId], columns: usize, pitch_um: f64) -> Self {
        assert!(columns > 0, "need at least one column");
        let mut p = Placement::new();
        for (i, &cell) in cells.iter().enumerate() {
            let x = (i % columns) as f64 * pitch_um;
            let y = (i / columns) as f64 * pitch_um;
            p.place(cell, x, y);
        }
        p
    }

    /// Total Manhattan length of the scan stitching under this placement
    /// (flop-to-flop hops only; port stubs are not counted).
    #[must_use]
    pub fn scan_wirelength_um(&self, chains: &ScanChains) -> f64 {
        let mut total = 0.0;
        for chain in &chains.chains {
            for pair in chain.cells.windows(2) {
                if let (Some(a), Some(b)) = (self.get(pair[0]), self.get(pair[1])) {
                    total += (a.0 - b.0).abs() + (a.1 - b.1).abs();
                }
            }
        }
        total
    }
}

/// Chain-ordering strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ChainOrder {
    /// Netlist cell order (the default of
    /// [`insert_scan`](crate::insert_scan)).
    CellOrder,
    /// Snake order: sort by row, alternate direction per row — the
    /// classic low-wirelength scan route for array placements.
    Snake,
    /// Nearest-neighbour greedy tour from the lowest-left flop.
    NearestNeighbour,
}

/// Orders the flip-flops per `order`/`placement` and runs scan insertion
/// so consecutive chain positions are physical neighbours. Chains are
/// cut from the tour in balanced contiguous spans, so each chain
/// occupies a compact region.
///
/// # Errors
///
/// Propagates [`insert_scan_ordered`] errors.
pub fn insert_scan_placed(
    netlist: &mut Netlist,
    config: &ScanConfig,
    placement: &Placement,
    order: ChainOrder,
) -> Result<ScanChains, DftError> {
    let mut ffs: Vec<CellId> = netlist.ff_cells().map(|(id, _)| id).collect();
    let at = |c: CellId| placement.get(c).unwrap_or((0.0, 0.0));
    match order {
        ChainOrder::CellOrder => {}
        ChainOrder::Snake => {
            ffs.sort_by(|&a, &b| {
                let (ax, ay) = at(a);
                let (bx, by) = at(b);
                let (ra, rb) = (ay.round() as i64, by.round() as i64);
                ra.cmp(&rb).then_with(|| {
                    let ka = if ra % 2 == 0 { ax } else { -ax };
                    let kb = if rb % 2 == 0 { bx } else { -bx };
                    ka.total_cmp(&kb)
                })
            });
        }
        ChainOrder::NearestNeighbour => {
            let mut remaining = ffs;
            remaining.sort_by(|&a, &b| {
                let (ax, ay) = at(a);
                let (bx, by) = at(b);
                ay.total_cmp(&by).then(ax.total_cmp(&bx))
            });
            let mut tour = Vec::with_capacity(remaining.len());
            let mut current = remaining.remove(0);
            tour.push(current);
            while !remaining.is_empty() {
                let cp = at(current);
                let (idx, _) = remaining
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        let pa = at(a);
                        let pb = at(b);
                        let da = (pa.0 - cp.0).abs() + (pa.1 - cp.1).abs();
                        let db = (pb.0 - cp.0).abs() + (pb.1 - cp.1).abs();
                        da.total_cmp(&db)
                    })
                    .expect("non-empty");
                current = remaining.remove(idx);
                tour.push(current);
            }
            ffs = tour;
        }
    }
    insert_scan_ordered(netlist, config, &ffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanguard_netlist::{CellLibrary, Logic, NetlistBuilder};
    use scanguard_sim::Simulator;

    /// A register bank whose *netlist order* deliberately zig-zags across
    /// the die, so CellOrder stitching is terrible.
    fn bank_with_grid(n: usize, columns: usize) -> (Netlist, Placement) {
        let mut b = NetlistBuilder::new("bank");
        let mut cells = Vec::new();
        for i in 0..n {
            let d = b.input(&format!("d[{i}]"));
            let (q, cell) = b.dff(&format!("r{i}"), d);
            b.output(&format!("q[{i}]"), q);
            cells.push(cell);
        }
        let nl = b.finish().unwrap();
        // Scatter: place cell i at a pseudo-random grid slot.
        let mut slots: Vec<usize> = (0..n).collect();
        let mut state = 0x5EEDu64;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            slots.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut p = Placement::new();
        for (i, &cell) in cells.iter().enumerate() {
            let s = slots[i];
            p.place(
                cell,
                (s % columns) as f64 * 10.0,
                (s / columns) as f64 * 10.0,
            );
        }
        (nl, p)
    }

    #[test]
    fn snake_and_greedy_beat_cell_order() {
        let mut wl = HashMap::new();
        for order in [
            ChainOrder::CellOrder,
            ChainOrder::Snake,
            ChainOrder::NearestNeighbour,
        ] {
            let (mut nl, p) = bank_with_grid(48, 8);
            let sc = insert_scan_placed(&mut nl, &ScanConfig::with_chains(4), &p, order).unwrap();
            wl.insert(format!("{order:?}"), p.scan_wirelength_um(&sc));
        }
        let cell = wl["CellOrder"];
        let snake = wl["Snake"];
        let greedy = wl["NearestNeighbour"];
        assert!(
            snake < cell * 0.5,
            "snake must roughly halve random stitching: {snake} vs {cell}"
        );
        assert!(greedy < cell * 0.6, "greedy helps too: {greedy} vs {cell}");
    }

    #[test]
    fn placed_chains_still_shift_correctly() {
        let (mut nl, p) = bank_with_grid(12, 4);
        let sc = insert_scan_placed(&mut nl, &ScanConfig::with_chains(3), &p, ChainOrder::Snake)
            .unwrap();
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        for i in 0..12 {
            sim.set_port_bool(&format!("d[{i}]"), false).unwrap();
        }
        sc.set_scan_enable(&mut sim, true);
        let pattern: Vec<Vec<Logic>> = (0..3)
            .map(|k| (0..4).map(|i| Logic::from((k + i) % 2 == 0)).collect())
            .collect();
        sc.load(&mut sim, &pattern);
        for _ in 0..4 {
            let fb: Vec<Logic> = sc.chains.iter().map(|c| sim.value(c.so)).collect();
            sc.shift(&mut sim, &fb);
        }
        assert_eq!(sc.snapshot(&sim), pattern, "circulation lossless");
    }

    #[test]
    fn order_mismatch_is_rejected() {
        let (mut nl, _) = bank_with_grid(8, 4);
        let wrong: Vec<CellId> = (0..4).map(CellId::from_index).collect();
        let err = insert_scan_ordered(&mut nl, &ScanConfig::with_chains(2), &wrong).unwrap_err();
        assert!(matches!(err, DftError::OrderMismatch { .. }), "{err}");
    }

    #[test]
    fn grid_placement_coordinates() {
        let cells: Vec<CellId> = (0..6).map(CellId::from_index).collect();
        let p = Placement::grid(&cells, 3, 5.0);
        assert_eq!(p.get(cells[0]), Some((0.0, 0.0)));
        assert_eq!(p.get(cells[2]), Some((10.0, 0.0)));
        assert_eq!(p.get(cells[3]), Some((0.0, 5.0)));
        assert_eq!(p.get(CellId::from_index(99)), None);
    }
}
