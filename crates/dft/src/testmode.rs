//! Manufacturing-test chain concatenation — the paper's Fig. 5(b).
//!
//! State monitoring wants many short chains (low encode/decode latency);
//! the tester wants few chains (limited scan I/O). The paper reconciles
//! the two by *concatenating* monitor-mode chains in test mode: with `W`
//! monitor chains and a test width of `T`, chain `j`'s scan-in is fed from
//! chain `j - T`'s scan-out, so the tester sees `T` chains of length
//! `(W / T) * l`. Because the same flops shift in the same order, the
//! reconfiguration has **no impact on manufacturing test** — the property
//! Sec. III claims and the tests below prove.

use crate::{DftError, ScanChains};
use scanguard_netlist::{GateKind, Logic, NetId, Netlist};
use scanguard_sim::Simulator;

/// Handle to the test-mode concatenation overlay.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TestModeConfig {
    /// The `test_mode` select net (paper Fig. 2 drives this from the
    /// 2-bit `sel` control; a dedicated pin is equivalent).
    pub test_mode: NetId,
    /// Manufacturing-test I/O width `T`.
    pub test_width: usize,
    /// The `T` scan-in nets the tester drives (chains `0..T`).
    pub test_si: Vec<NetId>,
    /// The `T` scan-out nets the tester observes (chains `W-T..W`).
    pub test_so: Vec<NetId>,
    /// Length of the *longest* concatenated test chain in flops — the
    /// shift budget a tester needs to fully load or flush every pin.
    pub test_chain_len: usize,
    /// Per-pin concatenated chain lengths: entry `t` is the total number
    /// of flops behind test pin `t`, i.e. Σ len of monitor chains
    /// `t, t+T, t+2T, …`. With balanced chains all entries are equal; with
    /// non-uniform chain lengths they may differ by up to `W/T - 1`.
    pub test_chain_lens: Vec<usize>,
}

impl TestModeConfig {
    /// Drives the mode select.
    pub fn set_test_mode(&self, sim: &mut Simulator<'_>, on: bool) {
        sim.set_net(self.test_mode, Logic::from(on));
    }

    /// One test-mode shift cycle: presents `inputs` on the `T` test
    /// scan-ins, returns the bits observed on the `T` test scan-outs
    /// during the cycle, then clocks.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.test_width`.
    pub fn shift(&self, sim: &mut Simulator<'_>, inputs: &[Logic]) -> Vec<Logic> {
        assert_eq!(inputs.len(), self.test_width, "one bit per test pin");
        for (&net, &bit) in self.test_si.iter().zip(inputs) {
            sim.set_net(net, bit);
        }
        sim.settle();
        let outs: Vec<Logic> = self.test_so.iter().map(|&n| sim.value(n)).collect();
        sim.step();
        outs
    }
}

/// Adds the Fig. 5(b) concatenation muxes to a scanned netlist.
///
/// Chain `j >= T` gets a mux on its first flop's scan pin selecting
/// between its monitor-mode source (the chain's own `si`, possibly
/// through an injector overlay) and chain `j - T`'s scan-out. The
/// netlist is revalidated.
///
/// # Errors
///
/// * [`DftError::TestWidthMismatch`] unless `test_width` divides the
///   chain count;
/// * [`DftError::Netlist`] if the `test_mode` port name clashes.
pub fn configure_test_mode(
    netlist: &mut Netlist,
    chains: &ScanChains,
    test_width: usize,
) -> Result<TestModeConfig, DftError> {
    let w = chains.width();
    if test_width == 0 || w % test_width != 0 {
        return Err(DftError::TestWidthMismatch {
            chains: w,
            test_width,
        });
    }
    let test_mode = netlist.add_input_port("test_mode")?;
    for j in 0..w {
        let first = chains.chains[j].cells[0];
        let current_src = netlist.cell(first).inputs()[1];
        // Chains j >= T concatenate from chain j-T's scan-out; chains
        // j < T are driven by the tester through their own si port. When
        // that port is already the current source (plain scanned design),
        // no mux is needed.
        let test_src = if j >= test_width {
            chains.chains[j - test_width].so
        } else if current_src == chains.chains[j].si {
            continue;
        } else {
            chains.chains[j].si
        };
        let (muxed, _) =
            netlist.add_cell(GateKind::Mux2, vec![test_mode, current_src, test_src], None);
        netlist.set_cell_input(first, 1, muxed);
    }
    netlist.revalidate().map_err(DftError::Netlist)?;
    // Test pin `t` feeds chains t, t+T, t+2T, … in concatenation order, so
    // its chain length is the sum of those chains' lengths — *not*
    // `(W/T) * max_len`, which over-counts when chain lengths are
    // non-uniform.
    let test_chain_lens: Vec<usize> = (0..test_width)
        .map(|t| {
            (t..w)
                .step_by(test_width)
                .map(|j| chains.chains[j].len())
                .sum()
        })
        .collect();
    let test_chain_len = test_chain_lens.iter().copied().max().unwrap_or(0);
    Ok(TestModeConfig {
        test_mode,
        test_width,
        test_si: chains.chains[..test_width].iter().map(|c| c.si).collect(),
        test_so: chains.chains[w - test_width..]
            .iter()
            .map(|c| c.so)
            .collect(),
        test_chain_len,
        test_chain_lens,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{insert_scan, ScanConfig};
    use scanguard_netlist::{CellLibrary, Netlist, NetlistBuilder};

    fn scanned(ffs: usize, chains: usize) -> (Netlist, ScanChains) {
        let mut b = NetlistBuilder::new("regs");
        for i in 0..ffs {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            b.output(&format!("q[{i}]"), q);
        }
        let mut nl = b.finish().unwrap();
        let sc = insert_scan(&mut nl, &ScanConfig::with_chains(chains)).unwrap();
        (nl, sc)
    }

    #[test]
    fn width_must_divide_chains() {
        let (mut nl, sc) = scanned(16, 4);
        assert!(matches!(
            configure_test_mode(&mut nl, &sc, 3),
            Err(DftError::TestWidthMismatch { .. })
        ));
        assert!(matches!(
            configure_test_mode(&mut nl, &sc, 0),
            Err(DftError::TestWidthMismatch { .. })
        ));
    }

    #[test]
    fn concatenated_chain_shifts_data_through() {
        // 16 flops, 4 monitor chains of 4, test width 2 => 2 test chains
        // of 8. A pattern shifted in must emerge identical after 8 more
        // cycles.
        let (mut nl, sc) = scanned(16, 4);
        let tm = configure_test_mode(&mut nl, &sc, 2).unwrap();
        assert_eq!(tm.test_chain_len, 8);
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        for i in 0..16 {
            sim.set_port_bool(&format!("d[{i}]"), false).unwrap();
        }
        sc.set_scan_enable(&mut sim, true);
        tm.set_test_mode(&mut sim, true);
        // Also drive the unused monitor-mode si pins of chains >= T low.
        for c in &sc.chains {
            // Setting a port that now feeds a mux still works.
            sim.set_net(c.si, Logic::Zero);
        }
        let pattern: Vec<Vec<Logic>> = (0..2)
            .map(|g| (0..8).map(|i| Logic::from((i * 3 + g) % 2 == 0)).collect())
            .collect();
        // Shift the pattern in (8 cycles).
        for i in 0..8 {
            let ins = [pattern[0][i], pattern[1][i]];
            tm.shift(&mut sim, &ins);
        }
        // Shift it out (8 cycles) while feeding zeros.
        let mut out = [Vec::new(), Vec::new()];
        for _ in 0..8 {
            let outs = tm.shift(&mut sim, &[Logic::Zero, Logic::Zero]);
            out[0].push(outs[0]);
            out[1].push(outs[1]);
        }
        assert_eq!(out[0], pattern[0], "test chain 0 intact");
        assert_eq!(out[1], pattern[1], "test chain 1 intact");
    }

    #[test]
    fn monitor_mode_is_unaffected_by_the_overlay() {
        // With test_mode=0 the chains behave exactly as before the
        // overlay: a circulation is lossless.
        let (mut nl, sc) = scanned(16, 4);
        let tm = configure_test_mode(&mut nl, &sc, 4).unwrap();
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        for i in 0..16 {
            sim.set_port_bool(&format!("d[{i}]"), false).unwrap();
        }
        sc.set_scan_enable(&mut sim, true);
        tm.set_test_mode(&mut sim, false);
        let init: Vec<Vec<Logic>> = (0..4)
            .map(|k| (0..4).map(|i| Logic::from((k + i) % 2 == 0)).collect())
            .collect();
        sc.load(&mut sim, &init);
        for _ in 0..4 {
            let fb: Vec<Logic> = sc.chains.iter().map(|c| sim.value(c.so)).collect();
            sc.shift(&mut sim, &fb);
        }
        assert_eq!(sc.snapshot(&sim), init);
    }

    #[test]
    fn test_chain_covers_every_flop_exactly_once() {
        let (mut nl, sc) = scanned(24, 6);
        let tm = configure_test_mode(&mut nl, &sc, 3).unwrap();
        assert_eq!(tm.test_chain_len * tm.test_width, sc.ff_count());
        assert_eq!(tm.test_chain_lens, vec![8, 8, 8]);
    }

    /// Shifts an `n`-bit pattern through the single test pin and asserts
    /// it emerges unchanged after exactly `n` more cycles — i.e. the
    /// concatenated chain really holds `n` flops, no more, no fewer.
    fn assert_single_pin_roundtrip(nl: &Netlist, sc: &ScanChains, tm: &TestModeConfig, n: usize) {
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(nl, &lib);
        for (name, _) in nl.input_ports() {
            if name.starts_with("d[") {
                sim.set_port_bool(name, false).unwrap();
            }
        }
        sc.set_scan_enable(&mut sim, true);
        tm.set_test_mode(&mut sim, true);
        for c in &sc.chains {
            sim.set_net(c.si, Logic::Zero);
        }
        let pattern: Vec<Logic> = (0..n).map(|i| Logic::from(i % 3 != 1)).collect();
        for &bit in &pattern {
            tm.shift(&mut sim, &[bit]);
        }
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(tm.shift(&mut sim, &[Logic::Zero])[0]);
        }
        assert_eq!(out, pattern, "pattern intact after {n}-cycle roundtrip");
    }

    #[test]
    fn degenerate_single_chain_needs_no_concatenation() {
        // W = 1, T = 1: the overlay has no pair to concatenate; the test
        // chain is the monitor chain itself.
        let (mut nl, sc) = scanned(8, 1);
        let cells_before = nl.cell_count();
        let tm = configure_test_mode(&mut nl, &sc, 1).unwrap();
        // A plain scanned chain's si already feeds the first flop, so no
        // mux is inserted at all for W = T = 1.
        assert_eq!(nl.cell_count(), cells_before);
        assert_eq!(tm.test_chain_len, 8);
        assert_eq!(tm.test_chain_lens, vec![8]);
        assert_eq!(tm.test_si, vec![sc.chains[0].si]);
        assert_eq!(tm.test_so, vec![sc.chains[0].so]);
        assert_single_pin_roundtrip(&nl, &sc, &tm, 8);
    }

    #[test]
    fn nonuniform_chains_concatenate_to_actual_flop_count() {
        // 8 flops over 3 chains balance as 3+3+2 — Fig. 5(b) with unequal
        // chain lengths. With T = 1 the single test chain holds all 8
        // flops: the metadata must say 8 (not 3 * max_len = 9) and an
        // 8-cycle roundtrip must be lossless.
        let (mut nl, sc) = scanned(8, 3);
        let lens: Vec<usize> = sc.chains.iter().map(|c| c.len()).collect();
        assert_eq!(lens, vec![3, 3, 2], "insert_scan balances 8 over 3");
        let tm = configure_test_mode(&mut nl, &sc, 1).unwrap();
        assert_eq!(tm.test_chain_lens, vec![8]);
        assert_eq!(tm.test_chain_len, 8);
        assert_single_pin_roundtrip(&nl, &sc, &tm, 8);
    }

    #[test]
    fn nonuniform_chains_per_pin_lengths_differ() {
        // Same 3+3+2 split with T = 3: each pin sees one chain, so the
        // per-pin lengths are simply the chain lengths and the shift
        // budget is the longest one.
        let (mut nl, sc) = scanned(8, 3);
        let tm = configure_test_mode(&mut nl, &sc, 3).unwrap();
        assert_eq!(tm.test_chain_lens, vec![3, 3, 2]);
        assert_eq!(tm.test_chain_len, 3);
        assert_eq!(
            tm.test_chain_lens.iter().sum::<usize>(),
            sc.ff_count(),
            "every flop behind exactly one pin"
        );
    }
}
