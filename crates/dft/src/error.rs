//! Error type of the DFT passes.

use std::fmt;

/// Errors raised by scan insertion and chain configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DftError {
    /// The design contains no flip-flops to stitch.
    NoFlipFlops,
    /// More chains were requested than there are flip-flops.
    TooManyChains {
        /// Chains requested.
        chains: usize,
        /// Flip-flops available.
        ffs: usize,
    },
    /// Zero chains were requested.
    ZeroChains,
    /// The test width does not divide the chain count (Fig. 5(b) requires
    /// whole chain groups per test pin).
    TestWidthMismatch {
        /// Monitor-mode chain count.
        chains: usize,
        /// Manufacturing-test I/O width.
        test_width: usize,
    },
    /// An explicit stitching order is not a permutation of the design's
    /// flip-flops.
    OrderMismatch {
        /// Flops in the design.
        expected: usize,
        /// Cells supplied (after deduplication mismatches).
        got: usize,
    },
    /// An underlying netlist operation failed (e.g. a port-name clash
    /// with the original design).
    Netlist(scanguard_netlist::NetlistError),
    /// Scan-chain recovery could not reconstruct a coherent chain
    /// structure from the netlist's ports and scan flops.
    Recover(String),
}

impl fmt::Display for DftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DftError::NoFlipFlops => write!(f, "design has no flip-flops to stitch"),
            DftError::TooManyChains { chains, ffs } => {
                write!(f, "requested {chains} chains but design has only {ffs} flip-flops")
            }
            DftError::ZeroChains => write!(f, "chain count must be at least 1"),
            DftError::TestWidthMismatch { chains, test_width } => write!(
                f,
                "test width {test_width} does not divide chain count {chains}"
            ),
            DftError::OrderMismatch { expected, got } => write!(
                f,
                "stitching order is not a permutation of the design's {expected} flops (got {got} cells)"
            ),
            DftError::Netlist(e) => write!(f, "netlist error during scan insertion: {e}"),
            DftError::Recover(msg) => write!(f, "scan-chain recovery failed: {msg}"),
        }
    }
}

impl std::error::Error for DftError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DftError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<scanguard_netlist::NetlistError> for DftError {
    fn from(e: scanguard_netlist::NetlistError) -> Self {
        DftError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(DftError::NoFlipFlops.to_string().contains("no flip-flops"));
        assert!(DftError::TooManyChains { chains: 9, ffs: 3 }
            .to_string()
            .contains("9 chains"));
    }
}
