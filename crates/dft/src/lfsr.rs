//! Linear-feedback shift registers.
//!
//! The paper's error injection circuit (Fig. 6) sets its row and column
//! selectors "using linear feedback shift registers"; this module provides
//! the same primitive, as a Fibonacci LFSR with maximal-length default
//! taps for common widths.

/// A Galois LFSR over `width <= 64` bits.
///
/// # Examples
///
/// ```
/// use scanguard_dft::Lfsr;
///
/// let mut lfsr = Lfsr::maximal(16, 0xACE1);
/// let a = lfsr.next_word();
/// let b = lfsr.next_word();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Lfsr {
    width: u32,
    taps: u64,
    state: u64,
}

impl Lfsr {
    /// Builds an LFSR with explicit feedback taps: bit `tap - 1` is set
    /// for every exponent `tap` of the feedback polynomial (the top term
    /// `x^width` included; the `+1` term is implicit in the Galois
    /// update).
    ///
    /// A zero seed is silently replaced by 1 (the all-zero state is the
    /// LFSR's fixed point).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    #[must_use]
    pub fn new(width: u32, taps: u64, seed: u64) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        let mask = Self::mask_for(width);
        let state = if seed & mask == 0 { 1 } else { seed & mask };
        Lfsr {
            width,
            taps: taps & mask,
            state,
        }
    }

    /// Builds an LFSR with maximal-length taps for the given width
    /// (selected widths between 3 and 32, from the standard primitive
    /// polynomial tables).
    ///
    /// # Panics
    ///
    /// Panics for unsupported widths.
    #[must_use]
    pub fn maximal(width: u32, seed: u64) -> Self {
        // Taps as bit positions (0-based) per standard tables.
        let taps: u64 = match width {
            3 => (1 << 2) | (1 << 1),
            4 => (1 << 3) | (1 << 2),
            5 => (1 << 4) | (1 << 2),
            6 => (1 << 5) | (1 << 4),
            7 => (1 << 6) | (1 << 5),
            8 => (1 << 7) | (1 << 5) | (1 << 4) | (1 << 3),
            9 => (1 << 8) | (1 << 4),
            10 => (1 << 9) | (1 << 6),
            11 => (1 << 10) | (1 << 8),
            12 => (1 << 11) | (1 << 10) | (1 << 9) | (1 << 3),
            13 => (1 << 12) | (1 << 11) | (1 << 10) | (1 << 7),
            14 => (1 << 13) | (1 << 12) | (1 << 11) | (1 << 1),
            15 => (1 << 14) | (1 << 13),
            16 => (1 << 15) | (1 << 14) | (1 << 12) | (1 << 3),
            17 => (1 << 16) | (1 << 13),
            18 => (1 << 17) | (1 << 10),
            19 => (1 << 18) | (1 << 17) | (1 << 16) | (1 << 13),
            20 => (1 << 19) | (1 << 16),
            24 => (1 << 23) | (1 << 22) | (1 << 21) | (1 << 16),
            31 => (1 << 30) | (1 << 27),
            32 => (1 << 31) | (1 << 21) | (1 << 1) | 1,
            _ => panic!("no maximal tap table for width {width}"),
        };
        Lfsr::new(width, taps, seed)
    }

    fn mask_for(width: u32) -> u64 {
        if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// Current register contents.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Register width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Shifts once (Galois form: the out-bit toggles the tapped stages)
    /// and returns the bit shifted out.
    pub fn next_bit(&mut self) -> bool {
        let out = self.state & 1 == 1;
        self.state >>= 1;
        if out {
            self.state ^= self.taps;
        }
        out
    }

    /// Shifts `width` times and returns the full fresh register value.
    pub fn next_word(&mut self) -> u64 {
        for _ in 0..self.width {
            self.next_bit();
        }
        self.state
    }

    /// Returns an unbiased pseudo-random value in `0..bound` by
    /// rejection sampling (a plain `next_word() % bound` over-weights
    /// the low residues whenever `bound` does not divide the register's
    /// value range).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero or exceeds the register's nonzero
    /// value count (`2^width - 1`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let range = Self::mask_for(self.width);
        assert!(
            bound <= range,
            "bound {bound} exceeds the width-{} LFSR's value range {range}",
            self.width
        );
        // next_word() is uniform over 1..=range (the all-zero state is
        // unreachable); shift to 0..range and reject the uneven tail.
        let zone = range - range % bound;
        loop {
            let w = self.next_word() - 1;
            if w < zone {
                return w % bound;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_repaired() {
        let l = Lfsr::maximal(8, 0);
        assert_ne!(l.state(), 0);
    }

    #[test]
    fn maximal_lfsr_has_full_period() {
        // Width 8: period must be 2^8 - 1 = 255.
        let mut l = Lfsr::maximal(8, 1);
        let start = l.state();
        let mut period = 0u32;
        loop {
            l.next_bit();
            period += 1;
            if l.state() == start {
                break;
            }
            assert!(period < 300, "period overflow");
        }
        assert_eq!(period, 255);
    }

    #[test]
    fn never_reaches_zero_state() {
        let mut l = Lfsr::maximal(5, 7);
        for _ in 0..100 {
            l.next_bit();
            assert_ne!(l.state(), 0);
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut l = Lfsr::maximal(16, 0xBEEF);
        for _ in 0..200 {
            assert!(l.next_below(13) < 13);
        }
    }

    #[test]
    fn next_below_is_exactly_uniform_over_one_period() {
        // Width 8: next_word cycles through all 255 nonzero values
        // before repeating (gcd(8, 255) = 1). With bound 10, the
        // rejection zone accepts 250 of them — 250 calls consume exactly
        // one period and every residue lands exactly 25 times. The old
        // modulo fold gave residues 1..=5 an extra hit each.
        let mut l = Lfsr::maximal(8, 0x5A);
        let mut counts = [0u32; 10];
        for _ in 0..250 {
            counts[l.next_below(10) as usize] += 1;
        }
        assert_eq!(counts, [25; 10], "rejection sampling must be unbiased");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn next_below_rejects_oversized_bound() {
        let mut l = Lfsr::maximal(4, 1);
        let _ = l.next_below(16);
    }

    #[test]
    fn sequences_differ_by_seed() {
        let mut a = Lfsr::maximal(16, 0x1234);
        let mut b = Lfsr::maximal(16, 0x8765);
        let wa: Vec<u64> = (0..4).map(|_| a.next_word()).collect();
        let wb: Vec<u64> = (0..4).map(|_| b.next_word()).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    #[should_panic(expected = "no maximal tap table")]
    fn unsupported_width_panics() {
        let _ = Lfsr::maximal(63, 1);
    }
}
