//! Error injection — the paper's Fig. 6 circuit and Fig. 7 patterns.
//!
//! The paper validates the methodology by deliberately corrupting scan
//! data: a *column injector* (an LFSR-fed shift register advancing in step
//! with the scan chains) arms one shift **cycle**, and a *row injector*
//! selects which **chains** get their scan-in bit flipped (through an
//! XOR/AND pair per chain) during that cycle.
//!
//! Two fidelities are provided and tested to agree:
//!
//! * [`attach_injector`] builds the XOR/AND overlay into the netlist and
//!   returns the [`Injector`] port handle — the paper's actual circuit;
//! * [`ErrorPattern::flip_positions`] computes the equivalent direct
//!   `(chain, depth)` flips for behavioural (fast Monte-Carlo) use.

use crate::{Lfsr, ScanChains};
use scanguard_netlist::{GateKind, Logic, NetId, Netlist, NetlistError};
use scanguard_sim::Simulator;

/// Port handle of the gate-level injector overlay.
///
/// The overlay rewires each chain's first flop: its scan input becomes
/// `si XOR (inj_col AND inj_row[k])`. Driving `inj_col` high during scan
/// cycle `c` with `inj_row[k]` high flips the bit captured by chain `k`
/// in that cycle — exactly the paper's Fig. 6 semantics, with the column
/// injector realised by *when* the testbench raises `inj_col`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Injector {
    /// The column-active input net.
    pub col: NetId,
    /// Per-chain row-select input nets.
    pub rows: Vec<NetId>,
}

impl Injector {
    /// Disarms the injector (col low, all rows low).
    pub fn disarm(&self, sim: &mut Simulator<'_>) {
        sim.set_net(self.col, Logic::Zero);
        for &r in &self.rows {
            sim.set_net(r, Logic::Zero);
        }
    }

    /// Arms the given rows (chains); the flip happens on chains whose row
    /// is armed while `col` is high.
    pub fn arm_rows(&self, sim: &mut Simulator<'_>, rows: &[bool]) {
        assert_eq!(rows.len(), self.rows.len(), "one row flag per chain");
        for (&net, &on) in self.rows.iter().zip(rows) {
            sim.set_net(net, Logic::from(on));
        }
    }

    /// Drives the column-active input.
    pub fn set_col(&self, sim: &mut Simulator<'_>, active: bool) {
        sim.set_net(self.col, Logic::from(active));
    }
}

/// Builds the injector overlay into a scanned netlist.
///
/// Adds input ports `inj_col` and `inj_row[k]` and an XOR/AND pair per
/// chain between the scan-in port and the first flop. Call before
/// building a simulator; the netlist is revalidated.
///
/// # Errors
///
/// Returns a [`NetlistError`] if the injector port names clash.
pub fn attach_injector(
    netlist: &mut Netlist,
    chains: &ScanChains,
) -> Result<Injector, NetlistError> {
    let col = netlist.add_input_port("inj_col")?;
    let mut rows = Vec::with_capacity(chains.width());
    for (k, chain) in chains.chains.iter().enumerate() {
        let row = netlist.add_input_port(&format!("inj_row[{k}]"))?;
        rows.push(row);
        // Wrap whatever currently feeds the first flop's scan pin (the
        // raw si port, or a monitor feedback path attached earlier).
        let first = chain.cells[0];
        let current = netlist.cell(first).inputs()[1];
        let (armed, _) = netlist.add_cell(GateKind::And2, vec![col, row], None);
        let (flipped, _) = netlist.add_cell(GateKind::Xor2, vec![current, armed], None);
        netlist.set_cell_input(first, 1, flipped);
    }
    netlist.revalidate()?;
    Ok(Injector { col, rows })
}

/// An abstract error pattern over a `W x l` scan grid (paper Fig. 7).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ErrorPattern {
    /// One flipped bit (Fig. 7(a)).
    Single {
        /// Target chain (row).
        chain: usize,
        /// Target depth within the chain.
        depth: usize,
    },
    /// A clustered burst (Fig. 7(b)): a contiguous run of chains upset at
    /// the same depth — the shape real rush-current events take, because
    /// neighbouring retention latches share the bounce of the same switch
    /// bank segment.
    Burst {
        /// First upset chain.
        first_chain: usize,
        /// Number of consecutive chains upset.
        span: usize,
        /// Depth within the chains.
        depth: usize,
    },
}

impl ErrorPattern {
    /// Draws a random single-error pattern.
    pub fn random_single(lfsr: &mut Lfsr, width: usize, len: usize) -> Self {
        ErrorPattern::Single {
            chain: lfsr.next_below(width as u64) as usize,
            depth: lfsr.next_below(len as u64) as usize,
        }
    }

    /// Draws a random burst of 2..=`max_span` chains.
    pub fn random_burst(lfsr: &mut Lfsr, width: usize, len: usize, max_span: usize) -> Self {
        let max_span = max_span.clamp(2, width);
        let span = 2 + lfsr.next_below((max_span - 1) as u64) as usize;
        let first_chain = lfsr.next_below((width - span + 1) as u64) as usize;
        ErrorPattern::Burst {
            first_chain,
            span,
            depth: lfsr.next_below(len as u64) as usize,
        }
    }

    /// The `(chain, depth)` positions this pattern flips.
    #[must_use]
    pub fn flip_positions(&self) -> Vec<(usize, usize)> {
        match *self {
            ErrorPattern::Single { chain, depth } => vec![(chain, depth)],
            ErrorPattern::Burst {
                first_chain,
                span,
                depth,
            } => (first_chain..first_chain + span)
                .map(|c| (c, depth))
                .collect(),
        }
    }

    /// Number of bit flips.
    #[must_use]
    pub fn error_count(&self) -> usize {
        match *self {
            ErrorPattern::Single { .. } => 1,
            ErrorPattern::Burst { span, .. } => span,
        }
    }

    /// Applies the pattern directly to flip-flop state (the behavioural
    /// fast path, equivalent to one armed circulation through the
    /// gate-level injector).
    pub fn apply_direct(&self, sim: &mut Simulator<'_>, chains: &ScanChains) {
        for (chain, depth) in self.flip_positions() {
            let cell = chains.chains[chain].cells[depth];
            let v = sim.ff_value(cell);
            sim.force_ff(cell, !v);
        }
    }

    /// Applies the pattern to a plain bit matrix `state[chain][depth]`.
    pub fn apply_to_matrix(&self, state: &mut [Vec<bool>]) {
        for (chain, depth) in self.flip_positions() {
            state[chain][depth] = !state[chain][depth];
        }
    }

    /// The scan cycle at which the gate-level injector must arm its
    /// column input so a full `l`-cycle circulation lands the flip at the
    /// pattern's depth: a bit flipped on entry at cycle `t` is shifted
    /// `l - 1 - t` more times, ending at depth `l - 1 - t`.
    #[must_use]
    pub fn arm_cycle(&self, chain_len: usize) -> usize {
        let depth = match *self {
            ErrorPattern::Single { depth, .. } | ErrorPattern::Burst { depth, .. } => depth,
        };
        chain_len - 1 - depth
    }

    /// Row flags (one per chain) for the gate-level injector.
    #[must_use]
    pub fn row_flags(&self, width: usize) -> Vec<bool> {
        let mut rows = vec![false; width];
        for (chain, _) in self.flip_positions() {
            rows[chain] = true;
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{insert_scan, ScanConfig};
    use scanguard_netlist::{CellLibrary, NetlistBuilder};

    fn scanned_design(ffs: usize, chains: usize) -> (Netlist, ScanChains) {
        let mut b = NetlistBuilder::new("regs");
        for i in 0..ffs {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            b.output(&format!("q[{i}]"), q);
        }
        let mut nl = b.finish().unwrap();
        let sc = insert_scan(&mut nl, &ScanConfig::with_chains(chains)).unwrap();
        (nl, sc)
    }

    fn init_pattern(w: usize, l: usize) -> Vec<Vec<Logic>> {
        (0..w)
            .map(|k| {
                (0..l)
                    .map(|i| Logic::from((k * 3 + i * 5) % 2 == 0))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn single_pattern_flips_one_position() {
        let p = ErrorPattern::Single { chain: 2, depth: 3 };
        assert_eq!(p.flip_positions(), vec![(2, 3)]);
        assert_eq!(p.error_count(), 1);
        assert_eq!(p.arm_cycle(13), 9);
    }

    #[test]
    fn burst_pattern_is_contiguous() {
        let p = ErrorPattern::Burst {
            first_chain: 4,
            span: 3,
            depth: 7,
        };
        assert_eq!(p.flip_positions(), vec![(4, 7), (5, 7), (6, 7)]);
        assert_eq!(p.error_count(), 3);
        let rows = p.row_flags(10);
        assert_eq!(rows.iter().filter(|&&r| r).count(), 3);
        assert!(rows[4] && rows[5] && rows[6]);
    }

    #[test]
    fn random_patterns_stay_in_bounds() {
        let mut lfsr = Lfsr::maximal(16, 0x55AA);
        for _ in 0..200 {
            let p = ErrorPattern::random_single(&mut lfsr, 8, 13);
            let (c, d) = p.flip_positions()[0];
            assert!(c < 8 && d < 13);
            let p = ErrorPattern::random_burst(&mut lfsr, 8, 13, 5);
            for (c, d) in p.flip_positions() {
                assert!(c < 8 && d < 13, "burst out of bounds: ({c},{d})");
            }
        }
    }

    #[test]
    fn gate_level_injector_matches_direct_flip() {
        // Circulate a 2x4 scan grid through the armed injector; the final
        // state must equal a direct flip of the same positions.
        let (mut nl, sc) = scanned_design(8, 2);
        let inj = attach_injector(&mut nl, &sc).unwrap();
        let lib = CellLibrary::st120nm();
        let l = sc.max_len();
        let w = sc.width();
        let pattern = ErrorPattern::Burst {
            first_chain: 0,
            span: 2,
            depth: 1,
        };

        // Run A: gate-level injection during circulation.
        let mut sim = Simulator::new(&nl, &lib);
        for i in 0..8 {
            sim.set_port_bool(&format!("d[{i}]"), false).unwrap();
        }
        sc.set_scan_enable(&mut sim, true);
        inj.disarm(&mut sim);
        let init = init_pattern(w, l);
        sc.load(&mut sim, &init);
        inj.arm_rows(&mut sim, &pattern.row_flags(w));
        for t in 0..l {
            inj.set_col(&mut sim, t == pattern.arm_cycle(l));
            let fb: Vec<Logic> = sc.chains.iter().map(|c| sim.value(c.so)).collect();
            sc.shift(&mut sim, &fb);
        }
        let gate_level = sc.snapshot(&sim);

        // Run B: direct behavioural flip.
        let mut sim2 = Simulator::new(&nl, &lib);
        for i in 0..8 {
            sim2.set_port_bool(&format!("d[{i}]"), false).unwrap();
        }
        sc.set_scan_enable(&mut sim2, true);
        inj.disarm(&mut sim2);
        sc.load(&mut sim2, &init);
        pattern.apply_direct(&mut sim2, &sc);
        let direct = sc.snapshot(&sim2);

        assert_eq!(gate_level, direct, "overlay and direct flips must agree");
    }

    #[test]
    fn disarmed_injector_is_transparent() {
        let (mut nl, sc) = scanned_design(8, 2);
        let inj = attach_injector(&mut nl, &sc).unwrap();
        let lib = CellLibrary::st120nm();
        let l = sc.max_len();
        let mut sim = Simulator::new(&nl, &lib);
        for i in 0..8 {
            sim.set_port_bool(&format!("d[{i}]"), false).unwrap();
        }
        sc.set_scan_enable(&mut sim, true);
        inj.disarm(&mut sim);
        let init = init_pattern(sc.width(), l);
        sc.load(&mut sim, &init);
        for _ in 0..l {
            let fb: Vec<Logic> = sc.chains.iter().map(|c| sim.value(c.so)).collect();
            sc.shift(&mut sim, &fb);
        }
        assert_eq!(sc.snapshot(&sim), init, "disarmed circulation is lossless");
    }
}
