//! # scanguard-dft
//!
//! Design-for-test passes for the `scanguard` reproduction of *"Scan Based
//! Methodology for Reliable State Retention Power Gating Designs"*
//! (Yang et al., DATE 2010).
//!
//! The paper reuses manufacturing scan chains as the data channel of its
//! state-monitoring architecture. This crate supplies the passes the
//! original flow delegates to Synopsys DFT Compiler and to RTL scripting:
//!
//! * [`insert_scan`] — replace flip-flops with (retention-)scan flops and
//!   stitch `W` balanced chains (the `W`/`l` trade-off of Tables I/II);
//! * [`configure_test_mode`] — the Fig. 5(b) concatenation muxes that let
//!   the tester see `T` long chains while the monitor sees `W` short
//!   ones, with proven test neutrality;
//! * [`attach_injector`] / [`ErrorPattern`] — the Fig. 6 row/column error
//!   injector, at gate level and as an equivalent behavioural model;
//! * [`Lfsr`] — the pattern-generation primitive the paper's injector
//!   uses.
//!
//! # Examples
//!
//! ```
//! use scanguard_dft::{insert_scan, ScanConfig};
//! use scanguard_netlist::NetlistBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new("four_regs");
//! for i in 0..4 {
//!     let d = b.input(&format!("d[{i}]"));
//!     let (q, _) = b.dff(&format!("r{i}"), d);
//!     b.output(&format!("q[{i}]"), q);
//! }
//! let mut netlist = b.finish()?;
//! let chains = insert_scan(&mut netlist, &ScanConfig::with_chains(2))?;
//! assert_eq!(chains.width(), 2);
//! assert_eq!(chains.max_len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
// Bit-indexed loops are the clearer idiom for scan/test pattern handling.
#![allow(clippy::needless_range_loop)]

mod error;
mod faultsim;
mod inject;
mod lfsr;
mod placement;
mod recover;
mod scan;
mod testmode;
mod upsetsim;

pub use error::DftError;
pub use faultsim::{
    enumerate_faults, fault_coverage, fault_coverage_obs, CoverageReport, Fault, FaultSimConfig,
    FaultSimEngine, ScanAccess, StuckAt,
};
pub use inject::{attach_injector, ErrorPattern, Injector};
pub use lfsr::Lfsr;
pub use placement::{insert_scan_placed, ChainOrder, Placement};
pub use recover::{recover_scan_chains, recover_scan_chains_with, RecoverConfig};
pub use scan::{insert_scan, insert_scan_ordered, FlopStyle, ScanChain, ScanChains, ScanConfig};
pub use testmode::{configure_test_mode, TestModeConfig};
pub use upsetsim::{
    monitor_pass_outcomes, MonitorPassConfig, MonitorPassPorts, UpsetOutcome, UpsetSimEngine,
};
