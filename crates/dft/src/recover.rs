//! Scan-chain recovery from a bare netlist.
//!
//! [`insert_scan`](crate::insert_scan) returns a [`ScanChains`]
//! handle alongside the rewritten netlist, but that metadata does not
//! survive serialization: a design imported from structural Verilog
//! (`scanguard_netlist::from_verilog`) arrives as nets and cells only.
//! [`recover_scan_chains`] reconstructs the handle from the netlist
//! itself by walking the scan-path wiring:
//!
//! 1. the scan-enable net is the `se` input port;
//! 2. each `si[k]` input port is traced through its combinational
//!    fanout cone (tolerating the Fig. 5(b) test-mode concatenation
//!    muxes) to the unique scan flop whose `SI` pin it reaches;
//! 3. the chain is followed flop-to-flop via direct `Q -> SI` wiring;
//! 4. the tail's `Q` must be exported as the `so[k]` output port.
//!
//! Every scan flop must land on exactly one chain and sample the shared
//! scan-enable net; anything else is a [`DftError::Recover`].

use std::collections::{HashMap, HashSet};

use scanguard_netlist::{CellId, NetId, Netlist};

use crate::error::DftError;
use crate::scan::{ScanChain, ScanChains};

/// Port-naming convention used by [`recover_scan_chains_with`].
///
/// The defaults match what [`insert_scan`](crate::insert_scan) creates:
/// scan enable `se`, chain inputs `si[k]`, chain outputs `so[k]`.
#[derive(Debug, Clone)]
pub struct RecoverConfig {
    /// Scan-enable input port name.
    pub se_port: String,
    /// Prefix of the per-chain scan-in ports (`<si_prefix>[k]`).
    pub si_prefix: String,
    /// Prefix of the per-chain scan-out ports (`<so_prefix>[k]`).
    pub so_prefix: String,
}

impl Default for RecoverConfig {
    fn default() -> Self {
        RecoverConfig {
            se_port: "se".into(),
            si_prefix: "si".into(),
            so_prefix: "so".into(),
        }
    }
}

/// Recovers the scan-chain structure of `netlist` using the default
/// `se`/`si[k]`/`so[k]` port convention.
///
/// The result is equivalent to the [`ScanChains`] that
/// [`insert_scan`](crate::insert_scan) originally returned for the
/// design, which makes imported netlists first-class citizens for fault
/// simulation (`ScanAccess::Direct`).
///
/// # Errors
///
/// [`DftError::Recover`] if the ports are missing, a scan-in does not
/// reach a unique scan flop, the chain wiring is broken, a scan-out
/// port disagrees with the chain tail, a flop samples the wrong
/// scan-enable, or some scan flop is on no chain at all.
///
/// # Examples
///
/// ```
/// use scanguard_dft::{insert_scan, recover_scan_chains, ScanConfig};
/// use scanguard_netlist::NetlistBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("regs");
/// for i in 0..6 {
///     let d = b.input(&format!("d[{i}]"));
///     let (q, _) = b.dff(&format!("r{i}"), d);
///     b.output(&format!("q[{i}]"), q);
/// }
/// let mut netlist = b.finish()?;
/// let inserted = insert_scan(&mut netlist, &ScanConfig::with_chains(2))?;
///
/// // Round-trip the netlist through structural Verilog: the handle is
/// // lost, but recovery rebuilds it exactly.
/// let text = scanguard_netlist::to_verilog(&netlist);
/// let back = scanguard_netlist::from_verilog(&text)?;
/// let recovered = recover_scan_chains(&back)?;
/// assert_eq!(recovered.width(), inserted.width());
/// assert_eq!(recovered.chains[0].cells, inserted.chains[0].cells);
/// # Ok(())
/// # }
/// ```
pub fn recover_scan_chains(netlist: &Netlist) -> Result<ScanChains, DftError> {
    recover_scan_chains_with(netlist, &RecoverConfig::default())
}

/// [`recover_scan_chains`] with explicit port names.
///
/// # Errors
///
/// As [`recover_scan_chains`].
pub fn recover_scan_chains_with(
    netlist: &Netlist,
    config: &RecoverConfig,
) -> Result<ScanChains, DftError> {
    let err = |msg: String| DftError::Recover(msg);
    let se = netlist
        .port(&config.se_port)
        .map_err(|_| err(format!("no scan-enable input port `{}`", config.se_port)))?;

    // Scan flops indexed by the net on their SI pin (pin order D, SI, SE).
    let scan_flops: Vec<CellId> = netlist
        .cells()
        .filter(|(_, c)| c.kind().is_scan())
        .map(|(id, _)| id)
        .collect();
    let mut by_si: HashMap<NetId, CellId> = HashMap::new();
    for &id in &scan_flops {
        let si = netlist.cell(id).inputs()[1];
        if by_si.insert(si, id).is_some() {
            return Err(err(format!(
                "net {si} feeds the SI pin of more than one scan flop"
            )));
        }
    }

    // Combinational fanout: net -> (consuming cell, pin index).
    let mut fanout: HashMap<NetId, Vec<(CellId, usize)>> = HashMap::new();
    for (id, cell) in netlist.cells() {
        for (pin, &input) in cell.inputs().iter().enumerate() {
            fanout.entry(input).or_default().push((id, pin));
        }
    }

    let mut chains = Vec::new();
    let mut claimed: HashSet<CellId> = HashSet::new();
    for k in 0.. {
        let si_name = format!("{}[{k}]", config.si_prefix);
        let Ok(si) = netlist.port(&si_name) else {
            break;
        };
        let head = trace_head(netlist, &fanout, si, &si_name)?;

        // Follow direct Q -> SI links to the end of the chain.
        let mut cells = vec![head];
        let mut cursor = head;
        loop {
            let q = netlist.cell(cursor).output();
            match by_si.get(&q) {
                Some(&next) => {
                    if claimed.contains(&next) || cells.contains(&next) {
                        return Err(err(format!(
                            "scan chain {k} loops back onto an already-chained flop"
                        )));
                    }
                    cells.push(next);
                    cursor = next;
                }
                None => break,
            }
        }

        let so = netlist.cell(cursor).output();
        let so_name = format!("{}[{k}]", config.so_prefix);
        let so_port = netlist
            .port(&so_name)
            .map_err(|_| err(format!("no scan-out output port `{so_name}` for chain {k}")))?;
        if so_port != so {
            return Err(err(format!(
                "output port `{so_name}` is not driven by the tail of scan chain {k}"
            )));
        }

        for &id in &cells {
            let cell = netlist.cell(id);
            if cell.inputs()[2] != se {
                return Err(err(format!(
                    "flop {id} on chain {k} does not sample scan-enable `{}`",
                    config.se_port
                )));
            }
            claimed.insert(id);
        }
        chains.push(ScanChain { si, so, cells });
    }

    if chains.is_empty() {
        return Err(err(format!(
            "no `{}[0]` scan-in port: design has no recoverable scan chains",
            config.si_prefix
        )));
    }
    if claimed.len() != scan_flops.len() {
        return Err(err(format!(
            "{} of {} scan flops are not on any recovered chain",
            scan_flops.len() - claimed.len(),
            scan_flops.len()
        )));
    }
    Ok(ScanChains {
        se,
        chains,
        se_port: config.se_port.clone(),
    })
}

/// Traces `si` through combinational cells to the unique scan flop
/// whose SI pin it reaches.
///
/// A plain stitched design reaches the head flop directly; a design
/// that went through [`configure_test_mode`](crate::configure_test_mode)
/// reaches it through the concatenation mux in front of the chain. The
/// trace refuses to cross sequential cells, and demands exactly one SI
/// landing site.
fn trace_head(
    netlist: &Netlist,
    fanout: &HashMap<NetId, Vec<(CellId, usize)>>,
    si: NetId,
    si_name: &str,
) -> Result<CellId, DftError> {
    let mut frontier = vec![si];
    let mut seen: HashSet<NetId> = frontier.iter().copied().collect();
    let mut heads: Vec<CellId> = Vec::new();
    while let Some(net) = frontier.pop() {
        for &(cell, pin) in fanout.get(&net).map_or(&[][..], |v| v) {
            let kind = netlist.cell(cell).kind();
            if kind.is_scan() && pin == 1 {
                if !heads.contains(&cell) {
                    heads.push(cell);
                }
            } else if !kind.is_sequential() {
                let out = netlist.cell(cell).output();
                if seen.insert(out) {
                    frontier.push(out);
                }
            }
        }
    }
    match heads.as_slice() {
        [head] => Ok(*head),
        [] => Err(DftError::Recover(format!(
            "scan-in port `{si_name}` does not reach any scan flop SI pin"
        ))),
        _ => Err(DftError::Recover(format!(
            "scan-in port `{si_name}` reaches {} scan flop SI pins (ambiguous chain head)",
            heads.len()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{insert_scan, ScanConfig};
    use crate::testmode::configure_test_mode;
    use scanguard_netlist::{from_verilog, to_verilog, NetlistBuilder};

    fn flops(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new("regs");
        for i in 0..n {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            b.output(&format!("q[{i}]"), q);
        }
        b.finish().unwrap()
    }

    fn assert_chains_eq(a: &ScanChains, b: &ScanChains) {
        assert_eq!(a.se, b.se);
        assert_eq!(a.se_port, b.se_port);
        assert_eq!(a.width(), b.width());
        for (ca, cb) in a.chains.iter().zip(&b.chains) {
            assert_eq!(ca.si, cb.si);
            assert_eq!(ca.so, cb.so);
            assert_eq!(ca.cells, cb.cells);
        }
    }

    #[test]
    fn recovers_inserted_chains_exactly() {
        for w in [1, 2, 3] {
            let mut nl = flops(8);
            let inserted = insert_scan(&mut nl, &ScanConfig::with_chains(w)).unwrap();
            let recovered = recover_scan_chains(&nl).unwrap();
            assert_chains_eq(&inserted, &recovered);
        }
    }

    #[test]
    fn recovers_retention_chains() {
        let mut nl = flops(5);
        let inserted = insert_scan(&mut nl, &ScanConfig::retention_with_chains(2)).unwrap();
        let recovered = recover_scan_chains(&nl).unwrap();
        assert_chains_eq(&inserted, &recovered);
    }

    #[test]
    fn recovery_survives_verilog_round_trip() {
        let mut nl = flops(9);
        let inserted = insert_scan(&mut nl, &ScanConfig::with_chains(3)).unwrap();
        let back = from_verilog(&to_verilog(&nl)).unwrap();
        let recovered = recover_scan_chains(&back).unwrap();
        assert_chains_eq(&inserted, &recovered);
    }

    #[test]
    fn recovery_tolerates_test_mode_muxes() {
        let mut nl = flops(8);
        let inserted = insert_scan(&mut nl, &ScanConfig::with_chains(4)).unwrap();
        configure_test_mode(&mut nl, &inserted, 2).unwrap();
        let recovered = recover_scan_chains(&nl).unwrap();
        assert_chains_eq(&inserted, &recovered);
    }

    #[test]
    fn missing_ports_are_reported() {
        let nl = flops(4);
        let e = recover_scan_chains(&nl).unwrap_err();
        assert!(
            e.to_string().contains("no scan-enable input port `se`"),
            "{e}"
        );
    }

    #[test]
    fn unchained_scan_flops_are_reported() {
        // A design with scan ports but one extra scan flop hanging off
        // its own enable: recovery must refuse to silently drop it.
        let mut b = NetlistBuilder::new("extra");
        let d = b.input("d");
        let si = b.input_bus("si", 1);
        let se = b.input("se");
        let (q, _) = b.sdff("s0", d, si[0], se);
        b.output_bus("so", &[q]);
        let other_se = b.input("se2");
        let (q2, _) = b.sdff("orphan", d, d, other_se);
        b.output("o2", q2);
        let nl = b.finish().unwrap();
        let e = recover_scan_chains(&nl).unwrap_err();
        assert!(
            e.to_string().contains("not on any recovered chain")
                || e.to_string().contains("scan-enable"),
            "{e}"
        );
    }

    #[test]
    fn wrong_scan_enable_is_reported() {
        let mut b = NetlistBuilder::new("badse");
        let d = b.input("d");
        let si = b.input_bus("si", 1);
        b.input("se");
        let not_se = b.input("mode");
        let (q, _) = b.sdff("s0", d, si[0], not_se);
        b.output_bus("so", &[q]);
        let nl = b.finish().unwrap();
        let e = recover_scan_chains(&nl).unwrap_err();
        assert!(e.to_string().contains("does not sample scan-enable"), "{e}");
    }
}
