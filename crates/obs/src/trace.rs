//! The trace sinks: JSON-lines event stream and Chrome trace-event
//! format (load the latter in `chrome://tracing` or
//! <https://ui.perfetto.dev>).

use crate::event::{ArgValue, Event, EventKind, Lane};
use serde::{Number, Value};

/// One JSON object per line, in emission order — the raw structured
/// stream (each line round-trips through [`Event`]'s serde impls).
///
/// # Errors
///
/// Returns the encoder's message on failure (cannot happen for this
/// tree shape).
pub fn to_jsonl(events: &[Event]) -> Result<String, String> {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).map_err(|e| e.to_string())?);
        out.push('\n');
    }
    Ok(out)
}

/// Stable numeric thread id of a lane (Chrome traces key lanes by
/// `tid`).
#[must_use]
pub fn lane_tid(lane: Lane) -> u64 {
    match lane {
        Lane::Controller => 0,
        Lane::Main => 1,
        Lane::Worker(w) => 10 + u64::from(w),
        Lane::Request(r) => 1000 + u64::from(r),
    }
}

/// Human-readable lane name shown in the trace viewer.
#[must_use]
pub fn lane_name(lane: Lane) -> String {
    match lane {
        Lane::Controller => "controller".to_owned(),
        Lane::Main => "main".to_owned(),
        Lane::Worker(w) => format!("worker-{w}"),
        Lane::Request(r) => format!("request-{r}"),
    }
}

fn arg_value(v: &ArgValue) -> Value {
    match v {
        ArgValue::U(u) => Value::Num(Number::U(*u)),
        ArgValue::F(f) => Value::Num(Number::F(*f)),
        ArgValue::S(s) => Value::Str(s.clone()),
    }
}

fn metadata(name: &str, tid: u64, value: &str) -> Value {
    Value::Object(vec![
        ("name".to_owned(), Value::Str(name.to_owned())),
        ("ph".to_owned(), Value::Str("M".to_owned())),
        ("pid".to_owned(), Value::Num(Number::U(1))),
        ("tid".to_owned(), Value::Num(Number::U(tid))),
        (
            "args".to_owned(),
            Value::Object(vec![("name".to_owned(), Value::Str(value.to_owned()))]),
        ),
    ])
}

/// Chrome trace-event JSON: one lane per worker thread plus the
/// controller phase-timeline lane, with `ts` in microseconds.
///
/// Events are stably sorted by wall-clock timestamp; each lane is
/// written by a single thread, so its own order (and therefore the B/E
/// nesting per lane) is preserved and per-lane `ts` is monotone.
///
/// # Errors
///
/// Returns the encoder's message on failure (cannot happen for this
/// tree shape).
pub fn to_chrome_trace(events: &[Event]) -> Result<String, String> {
    let mut entries: Vec<Value> = Vec::with_capacity(events.len() + 8);
    entries.push(Value::Object(vec![
        ("name".to_owned(), Value::Str("process_name".to_owned())),
        ("ph".to_owned(), Value::Str("M".to_owned())),
        ("pid".to_owned(), Value::Num(Number::U(1))),
        ("tid".to_owned(), Value::Num(Number::U(0))),
        (
            "args".to_owned(),
            Value::Object(vec![(
                "name".to_owned(),
                Value::Str("scanguard".to_owned()),
            )]),
        ),
    ]));

    let mut lanes: Vec<Lane> = events.iter().map(|e| e.lane).collect();
    lanes.sort_by_key(|&l| lane_tid(l));
    lanes.dedup();
    for lane in lanes {
        entries.push(metadata("thread_name", lane_tid(lane), &lane_name(lane)));
    }

    let mut ordered: Vec<&Event> = events.iter().collect();
    ordered.sort_by_key(|e| e.ts_ns);
    for ev in ordered {
        let ph = match ev.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        let mut args = vec![
            ("cycle".to_owned(), Value::Num(Number::U(ev.cycle))),
            ("seq".to_owned(), Value::Num(Number::U(ev.seq))),
        ];
        args.extend(ev.args.iter().map(|(k, v)| (k.clone(), arg_value(v))));
        let mut obj = vec![
            ("name".to_owned(), Value::Str(ev.name.clone())),
            ("cat".to_owned(), Value::Str("scanguard".to_owned())),
            ("ph".to_owned(), Value::Str(ph.to_owned())),
            (
                "ts".to_owned(),
                Value::Num(Number::F(ev.ts_ns as f64 / 1000.0)),
            ),
            ("pid".to_owned(), Value::Num(Number::U(1))),
            ("tid".to_owned(), Value::Num(Number::U(lane_tid(ev.lane)))),
        ];
        if ev.kind == EventKind::Instant {
            obj.push(("s".to_owned(), Value::Str("t".to_owned())));
        }
        obj.push(("args".to_owned(), Value::Object(args)));
        entries.push(Value::Object(obj));
    }

    let doc = Value::Object(vec![
        ("traceEvents".to_owned(), Value::Array(entries)),
        ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
    ]);
    serde_json::to_string(&doc).map_err(|e| e.to_string())
}

impl crate::Recorder {
    /// The JSONL sink over everything recorded so far.
    ///
    /// # Errors
    ///
    /// Returns the encoder's message on failure.
    pub fn to_jsonl(&self) -> Result<String, String> {
        to_jsonl(&self.events())
    }

    /// The Chrome-trace sink over everything recorded so far.
    ///
    /// # Errors
    ///
    /// Returns the encoder's message on failure.
    pub fn to_chrome_trace(&self) -> Result<String, String> {
        to_chrome_trace(&self.events())
    }
}
