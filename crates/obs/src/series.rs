//! Time-series metrics: a fixed-capacity ring of periodic
//! [`MetricsSnapshot`] samples and the windowed rates derived from it.
//!
//! A long-running daemon cannot answer "how busy is it *now*" from a
//! lifetime counter — `serve.requests = 4021` says nothing about
//! whether the last ten seconds served four thousand requests or none.
//! The [`SeriesRing`] closes that gap: a background sampler pushes one
//! [`SeriesSample`] per tick (every counter, deterministic and
//! volatile, under one timestamp), old samples fall off the back, and
//! [`SeriesRing::rates`] differences the newest sample against the
//! oldest one inside the requested window to produce per-second rates
//! plus a handful of named saturation gauges (cache hit rate, pool
//! busy fraction).
//!
//! The ring itself is deliberately dumb — no derivation at record
//! time, just copies — so a sample costs one snapshot walk and the
//! sampler thread can run at any interval without touching hot paths.

use crate::metrics::MetricsSnapshot;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// One periodic observation: every counter value at one instant.
///
/// Histograms are not carried — rates difference counters, and the
/// histogram `count`/`sum` pairs that matter for rates (none today)
/// would be sampled as counters by the caller.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SeriesSample {
    /// Milliseconds since the sampler's epoch (daemon start).
    pub t_ms: u64,
    /// Deterministic counters at `t_ms`, by name.
    pub counters: BTreeMap<String, u64>,
    /// Volatile counters at `t_ms`, by name.
    pub volatile: BTreeMap<String, u64>,
}

/// Windowed rates derived from the ring: the newest sample differenced
/// against the oldest sample still inside the window.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SeriesRates {
    /// Actual span between the two samples differenced (0 when fewer
    /// than two samples exist).
    pub window_ms: u64,
    /// Samples currently held by the ring.
    pub samples: u64,
    /// Per-second first derivative of every counter that moved inside
    /// the window (unchanged counters are omitted to keep the payload
    /// proportional to activity, not to registry size).
    pub per_second: BTreeMap<String, f64>,
    /// Named saturation/efficiency gauges derived from counter deltas:
    /// `cache_hit_rate` (explore synthesis cache, 0..=1),
    /// `pool_busy_fraction` (worker busy-ns over busy+idle, 0..=1).
    pub derived: BTreeMap<String, f64>,
}

impl SeriesRates {
    /// A rate set with every value zeroed but the key shape preserved —
    /// what `--deterministic` reports instead of wall-clock-dependent
    /// numbers.
    #[must_use]
    pub fn zeroed(&self) -> SeriesRates {
        SeriesRates {
            window_ms: 0,
            samples: 0,
            per_second: self.per_second.keys().map(|k| (k.clone(), 0.0)).collect(),
            derived: self.derived.keys().map(|k| (k.clone(), 0.0)).collect(),
        }
    }
}

/// A fixed-capacity, thread-safe ring of [`SeriesSample`]s.
#[derive(Debug)]
pub struct SeriesRing {
    capacity: usize,
    inner: Mutex<VecDeque<SeriesSample>>,
}

impl SeriesRing {
    /// A ring holding at most `capacity` samples (clamped to >= 2 so a
    /// rate is always derivable once two ticks have passed).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        SeriesRing {
            capacity,
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Maximum samples held.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently held.
    ///
    /// # Panics
    ///
    /// Propagates a poisoned ring lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("series ring").len()
    }

    /// Whether no sample has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records one sample at `t_ms`, evicting the oldest when full.
    ///
    /// # Panics
    ///
    /// Propagates a poisoned ring lock.
    pub fn record(&self, t_ms: u64, snap: &MetricsSnapshot) {
        let sample = SeriesSample {
            t_ms,
            counters: snap.counters.clone(),
            volatile: snap.volatile.clone(),
        };
        let mut ring = self.inner.lock().expect("series ring");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(sample);
    }

    /// A copy of the held samples, oldest first.
    ///
    /// # Panics
    ///
    /// Propagates a poisoned ring lock.
    #[must_use]
    pub fn samples(&self) -> Vec<SeriesSample> {
        self.inner
            .lock()
            .expect("series ring")
            .iter()
            .cloned()
            .collect()
    }

    /// Windowed rates: the newest sample differenced against the oldest
    /// sample at most `window_ms` older (or the oldest held, when the
    /// ring does not reach back that far). With fewer than two samples
    /// every rate is empty and `window_ms` is 0.
    ///
    /// # Panics
    ///
    /// Propagates a poisoned ring lock.
    #[must_use]
    pub fn rates(&self, window_ms: u64) -> SeriesRates {
        let ring = self.inner.lock().expect("series ring");
        let samples = ring.len() as u64;
        let Some(newest) = ring.back() else {
            return SeriesRates {
                window_ms: 0,
                samples,
                per_second: BTreeMap::new(),
                derived: BTreeMap::new(),
            };
        };
        // The oldest sample still inside [newest - window, newest].
        let floor = newest.t_ms.saturating_sub(window_ms);
        let oldest = ring
            .iter()
            .find(|s| s.t_ms >= floor && s.t_ms < newest.t_ms)
            .or_else(|| ring.iter().find(|s| s.t_ms < newest.t_ms));
        let Some(oldest) = oldest else {
            return SeriesRates {
                window_ms: 0,
                samples,
                per_second: BTreeMap::new(),
                derived: BTreeMap::new(),
            };
        };
        derive_rates(oldest, newest, samples)
    }
}

/// Counter delta between two samples (new counters count from zero).
fn delta(old: &BTreeMap<String, u64>, new: &BTreeMap<String, u64>, key: &str) -> u64 {
    let b = new.get(key).copied().unwrap_or(0);
    let a = old.get(key).copied().unwrap_or(0);
    b.saturating_sub(a)
}

/// Differences `newest` against `oldest` into per-second rates and the
/// named derived gauges.
fn derive_rates(oldest: &SeriesSample, newest: &SeriesSample, samples: u64) -> SeriesRates {
    let dt_ms = newest.t_ms.saturating_sub(oldest.t_ms);
    let dt_s = dt_ms as f64 / 1000.0;
    let mut per_second = BTreeMap::new();
    if dt_ms > 0 {
        for map in [
            (&oldest.counters, &newest.counters),
            (&oldest.volatile, &newest.volatile),
        ] {
            for name in map.1.keys() {
                let d = delta(map.0, map.1, name);
                if d > 0 {
                    per_second.insert(name.clone(), d as f64 / dt_s);
                }
            }
        }
    }
    let mut derived = BTreeMap::new();
    // Synthesis-cache hit rate over the window: of the lookups the
    // explorer made, how many were free.
    let hits = delta(&oldest.counters, &newest.counters, "explore.cache.hits");
    let misses = delta(&oldest.counters, &newest.counters, "explore.cache.misses");
    if hits + misses > 0 {
        derived.insert(
            "cache_hit_rate".to_owned(),
            hits as f64 / (hits + misses) as f64,
        );
    }
    // Pool busy fraction: worker busy-ns over busy+idle across every
    // worker lane that reported inside the window.
    let mut busy = 0u64;
    let mut idle = 0u64;
    for name in newest.volatile.keys() {
        if name.starts_with("par.worker.") {
            if name.ends_with(".busy_ns") {
                busy += delta(&oldest.volatile, &newest.volatile, name);
            } else if name.ends_with(".idle_ns") {
                idle += delta(&oldest.volatile, &newest.volatile, name);
            }
        }
    }
    if busy + idle > 0 {
        derived.insert(
            "pool_busy_fraction".to_owned(),
            busy as f64 / (busy + idle) as f64,
        );
    }
    SeriesRates {
        window_ms: dt_ms,
        samples,
        per_second,
        derived,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, RecorderConfig};

    fn recorder() -> Recorder {
        Recorder::new(RecorderConfig {
            metrics: true,
            ..RecorderConfig::default()
        })
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let rec = recorder();
        let ring = SeriesRing::new(3);
        for t in 0..5 {
            rec.counter("x").inc();
            ring.record(t * 100, &rec.metrics_snapshot());
        }
        let samples = ring.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].t_ms, 200);
        assert_eq!(samples[2].t_ms, 400);
        assert_eq!(samples[2].counters["x"], 5);
    }

    #[test]
    fn capacity_is_clamped_to_two() {
        assert_eq!(SeriesRing::new(0).capacity(), 2);
        assert_eq!(SeriesRing::new(1).capacity(), 2);
        assert_eq!(SeriesRing::new(64).capacity(), 64);
    }

    #[test]
    fn rates_need_two_samples() {
        let rec = recorder();
        let ring = SeriesRing::new(8);
        assert!(ring.rates(1000).per_second.is_empty());
        ring.record(0, &rec.metrics_snapshot());
        let one = ring.rates(1000);
        assert_eq!(one.window_ms, 0);
        assert_eq!(one.samples, 1);
        assert!(one.per_second.is_empty());
    }

    #[test]
    fn per_second_rates_difference_the_window() {
        let rec = recorder();
        let ring = SeriesRing::new(8);
        rec.counter("serve.requests").add(10);
        ring.record(0, &rec.metrics_snapshot());
        rec.counter("serve.requests").add(30);
        ring.record(2000, &rec.metrics_snapshot());
        let rates = ring.rates(10_000);
        assert_eq!(rates.window_ms, 2000);
        let rps = rates.per_second["serve.requests"];
        assert!((rps - 15.0).abs() < 1e-9, "30 in 2 s = 15/s, got {rps}");
    }

    #[test]
    fn window_picks_the_oldest_sample_inside_it() {
        let rec = recorder();
        let ring = SeriesRing::new(8);
        for t in [0u64, 1000, 2000, 3000] {
            rec.counter("c").add(10);
            ring.record(t, &rec.metrics_snapshot());
        }
        // Window of 1.5 s from t=3000 reaches back to t=2000 only.
        let narrow = ring.rates(1500);
        assert_eq!(narrow.window_ms, 1000);
        // A huge window falls back to the oldest held sample.
        let wide = ring.rates(1_000_000);
        assert_eq!(wide.window_ms, 3000);
    }

    #[test]
    fn unchanged_counters_are_omitted() {
        let rec = recorder();
        let ring = SeriesRing::new(4);
        rec.counter("still").add(7);
        rec.counter("moving").add(1);
        ring.record(0, &rec.metrics_snapshot());
        rec.counter("moving").add(1);
        ring.record(1000, &rec.metrics_snapshot());
        let rates = ring.rates(5000);
        assert!(rates.per_second.contains_key("moving"));
        assert!(!rates.per_second.contains_key("still"));
    }

    #[test]
    fn derived_gauges_track_cache_and_pool() {
        let rec = recorder();
        let ring = SeriesRing::new(4);
        ring.record(0, &rec.metrics_snapshot());
        rec.counter("explore.cache.hits").add(3);
        rec.counter("explore.cache.misses").add(1);
        rec.counter_volatile("par.worker.00.busy_ns").add(750);
        rec.counter_volatile("par.worker.00.idle_ns").add(250);
        ring.record(1000, &rec.metrics_snapshot());
        let rates = ring.rates(5000);
        assert!((rates.derived["cache_hit_rate"] - 0.75).abs() < 1e-9);
        assert!((rates.derived["pool_busy_fraction"] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn zeroed_preserves_shape_and_drops_values() {
        let rec = recorder();
        let ring = SeriesRing::new(4);
        rec.counter("a").add(1);
        ring.record(0, &rec.metrics_snapshot());
        rec.counter("a").add(1);
        ring.record(500, &rec.metrics_snapshot());
        let z = ring.rates(5000).zeroed();
        assert_eq!(z.window_ms, 0);
        assert_eq!(z.samples, 0);
        assert_eq!(z.per_second["a"], 0.0);
    }
}
