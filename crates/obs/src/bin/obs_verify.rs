//! `obs-verify` — schema validator for emitted trace files.
//!
//! ```text
//! obs-verify events.jsonl             # one scanguard-obs Event per line
//! obs-verify trace.json               # Chrome trace-event JSON
//! obs-verify --profile events.jsonl   # + fold into a span profile and
//!                                     #   check the telescope identity
//! ```
//!
//! `--profile` additionally builds the wall-time profile over the
//! event stream and verifies trace/profile consistency: spans must be
//! well-nested per lane and every node's `self + Σ child-total` must
//! telescope exactly to its `total` (a violation means the trace's
//! timestamps are inconsistent — a child outliving its parent).
//!
//! Exits non-zero (naming the offending line/event) when the file does
//! not conform; CI runs it against the coverage smoke run's output.

use scanguard_obs::{Event, Profile};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let profile_mode = args.iter().position(|a| a == "--profile");
    if let Some(i) = profile_mode {
        args.remove(i);
    }
    let [path] = args.as_slice() else {
        eprintln!("usage: obs-verify [--profile] <events.jsonl | trace.json>");
        return ExitCode::FAILURE;
    };
    let doc = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = if profile_mode.is_some() {
        verify_profile(&doc, path)
    } else if path.ends_with(".jsonl") {
        verify_jsonl(&doc)
    } else {
        verify_chrome(&doc)
    };
    match result {
        Ok(summary) => {
            println!("{path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `--profile` mode: the stream must pass the plain JSONL checks AND
/// fold into a consistent wall-time profile — spans well-nested per
/// lane, telescope identity (`self + Σ child-total == total`) exact on
/// every call-tree node.
fn verify_profile(doc: &str, path: &str) -> Result<String, String> {
    if !path.ends_with(".jsonl") {
        return Err("--profile needs the .jsonl event stream, not a Chrome trace".to_owned());
    }
    verify_jsonl(doc)?;
    let mut events = Vec::new();
    for (i, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev: Event = serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(ev);
    }
    let profile = Profile::from_events(&events)?;
    profile.verify()?;
    Ok(format!(
        "{} spans on {} lanes fold into a consistent profile",
        profile.spans,
        profile.lanes.len()
    ))
}

/// Every line must deserialize as an [`Event`], with unique `seq`.
fn verify_jsonl(doc: &str) -> Result<String, String> {
    let mut seen = std::collections::HashSet::new();
    let mut count = 0usize;
    for (i, line) in doc.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev: Event = serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if !seen.insert(ev.seq) {
            return Err(format!("line {}: duplicate seq {}", i + 1, ev.seq));
        }
        count += 1;
    }
    if count == 0 {
        return Err("no events".to_owned());
    }
    Ok(format!("{count} events ok"))
}

/// The file must be valid Chrome trace JSON: a `traceEvents` array
/// whose non-metadata entries carry `name`/`ph`/`ts`/`pid`/`tid`, with
/// `ts` monotonically non-decreasing per `tid` lane and balanced B/E
/// nesting per lane.
fn verify_chrome(doc: &str) -> Result<String, String> {
    let root: serde::Value = serde_json::from_str(doc).map_err(|e| e.to_string())?;
    let serde::Value::Object(fields) = &root else {
        return Err("root is not an object".to_owned());
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| match v {
            serde::Value::Array(a) => Some(a),
            _ => None,
        })
        .ok_or("missing traceEvents array")?;
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    let mut open: HashMap<u64, u64> = HashMap::new();
    let mut lanes = std::collections::HashSet::new();
    let mut count = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let serde::Value::Object(obj) = ev else {
            return Err(format!("event {i}: not an object"));
        };
        let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let ph = field("ph")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = field("tid")
            .and_then(serde::Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        if field("name").and_then(serde::Value::as_str).is_none() {
            return Err(format!("event {i}: missing name"));
        }
        if ph == "M" {
            continue;
        }
        let ts = field("ts")
            .and_then(serde::Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "event {i}: ts {ts} < {prev} goes backwards on tid {tid}"
                ));
            }
        }
        last_ts.insert(tid, ts);
        lanes.insert(tid);
        match ph {
            "B" => *open.entry(tid).or_insert(0) += 1,
            "E" => {
                let depth = open.entry(tid).or_insert(0);
                if *depth == 0 {
                    return Err(format!("event {i}: E without B on tid {tid}"));
                }
                *depth -= 1;
            }
            "i" | "X" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
        count += 1;
    }
    if let Some((tid, depth)) = open.iter().find(|(_, &d)| d > 0) {
        return Err(format!("{depth} unclosed span(s) on tid {tid}"));
    }
    if count == 0 {
        return Err("no events".to_owned());
    }
    Ok(format!("{count} events on {} lanes ok", lanes.len()))
}
