//! # scanguard-obs
//!
//! Structured observability for the `scanguard` reproduction of *"Scan
//! Based Methodology for Reliable State Retention Power Gating
//! Designs"* (Yang et al., DATE 2010): the paper's flow is a *sequence*
//! (Fig. 3(b): encode → sleep → wake → decode/check) whose claims are
//! per-phase cycle and energy budgets, and this crate is how the rest
//! of the workspace exposes where those cycles, that energy and the
//! wall-clock actually go.
//!
//! Three pieces, no external dependencies beyond the vendored serde:
//!
//! * a **span/event API** ([`Recorder::begin`], [`Recorder::end`],
//!   [`Recorder::instant`], [`PhaseLog`]) recording onto per-thread
//!   timeline [`Lane`]s;
//! * a **counters/histograms registry** ([`Recorder::counter`],
//!   [`Recorder::histogram`]) with pre-resolved lock-free handles and a
//!   [`MetricsSnapshot`] whose deterministic sections are
//!   byte-identical across thread counts (volatile wall-clock and
//!   scheduling numbers are carried separately and excluded from `==`,
//!   the same convention as `CoverageReport::wall_ms`);
//! * three **sinks**: a leveled human log ([`Recorder::log`]), a
//!   JSON-lines event stream ([`to_jsonl`]) and Chrome trace-event JSON
//!   ([`to_chrome_trace`]) viewable in `chrome://tracing`/Perfetto with
//!   one lane per pool worker plus a controller phase-timeline lane.
//!
//! Zero-cost when disabled: there is no global state — a layer that was
//! not handed a recorder pays nothing, and disabled metric handles
//! reduce to a null check (asserted by a counting-allocator test on the
//! simulator hot path).
//!
//! # Examples
//!
//! ```
//! use scanguard_obs::{arg, Lane, Recorder, RecorderConfig};
//!
//! let rec = Recorder::new(RecorderConfig {
//!     trace: true,
//!     metrics: true,
//!     ..RecorderConfig::default()
//! });
//! let settles = rec.counter("sim.settle.sparse");
//! rec.begin(Lane::Main, "pattern", 0);
//! settles.inc();
//! rec.end(Lane::Main, "pattern", 41, vec![arg("bits", 64u64)]);
//! assert_eq!(rec.metrics_snapshot().counters["sim.settle.sparse"], 1);
//! assert!(rec.to_chrome_trace().unwrap().contains("traceEvents"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod event;
mod metrics;
mod profile;
mod prom;
mod recorder;
mod series;
mod trace;

pub use event::{arg, ArgValue, Event, EventKind, Lane};
pub use metrics::{CounterHandle, HistogramHandle, HistogramSnapshot, MetricsSnapshot};
pub use profile::{FlatRow, LaneProfile, Profile, ProfileNode};
pub use prom::{prom_name, to_prometheus, PROM_CONTENT_TYPE};
pub use recorder::{Level, PhaseLog, Recorder, RecorderConfig};
pub use series::{SeriesRates, SeriesRing, SeriesSample};
pub use trace::{lane_name, lane_tid, to_chrome_trace, to_jsonl};
