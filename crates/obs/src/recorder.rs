//! The [`Recorder`]: one instance per run, explicitly threaded to the
//! layers it observes.
//!
//! There is deliberately no global/static recorder — tests run in
//! parallel, and a process-wide registry would bleed one run's metrics
//! into another's. The CLI owns an `Arc<Recorder>` and hands references
//! down; library code takes `Option<&Recorder>` (or an attach method)
//! and does nothing when given none.

use crate::event::{ArgValue, Event, EventKind, Lane};
use crate::metrics::{CounterCell, CounterHandle, HistoCell, HistogramHandle, MetricsSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Log-sink verbosity threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing, not even errors.
    Off,
    /// Unrecoverable problems.
    Error,
    /// Suspicious conditions.
    Warn,
    /// Progress lines (the default).
    Info,
    /// Per-stage detail.
    Debug,
    /// Everything.
    Trace,
}

impl Level {
    /// The lowercase name (`"info"`, ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(Level::Off),
            "error" => Ok(Level::Error),
            "warn" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level {other:?} (off | error | warn | info | debug | trace)"
            )),
        }
    }
}

/// What a [`Recorder`] should collect.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Log-sink threshold (messages above it are dropped).
    pub level: Level,
    /// Collect trace events (spans/instants) for the JSONL and
    /// Chrome-trace sinks.
    pub trace: bool,
    /// Collect counters/histograms.
    pub metrics: bool,
    /// Buffer log lines instead of writing them to stderr (tests).
    pub capture_logs: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            level: Level::Info,
            trace: false,
            metrics: false,
            capture_logs: false,
        }
    }
}

/// A structured event/metrics recorder.
///
/// Zero-cost when disabled: code that was not handed a recorder pays
/// nothing; code holding one pays a branch per log/event call when the
/// corresponding collection is off, and disabled metric handles are
/// no-op null checks (see the counting-allocator test in
/// `scanguard-sim`).
pub struct Recorder {
    level: Level,
    trace_on: bool,
    metrics_on: bool,
    epoch: Instant,
    seq: AtomicU64,
    events: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistoCell>>>,
    captured: Option<Mutex<Vec<String>>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("level", &self.level)
            .field("trace_on", &self.trace_on)
            .field("metrics_on", &self.metrics_on)
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(RecorderConfig::default())
    }
}

impl Recorder {
    /// Builds a recorder.
    #[must_use]
    pub fn new(cfg: RecorderConfig) -> Self {
        Recorder {
            level: cfg.level,
            trace_on: cfg.trace,
            metrics_on: cfg.metrics,
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            captured: cfg.capture_logs.then(|| Mutex::new(Vec::new())),
        }
    }

    /// A recorder that collects nothing and logs nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Recorder::new(RecorderConfig {
            level: Level::Off,
            trace: false,
            metrics: false,
            capture_logs: false,
        })
    }

    /// The log-sink threshold.
    #[must_use]
    pub fn level(&self) -> Level {
        self.level
    }

    /// Whether trace events are being collected.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.trace_on
    }

    /// Whether counters/histograms are being collected.
    #[must_use]
    pub fn metrics_enabled(&self) -> bool {
        self.metrics_on
    }

    // -------------------------------------------------------------- log

    /// Emits one log line if `level` passes the threshold. `Info` lines
    /// print bare (they are user-facing progress); other levels are
    /// prefixed with their name.
    pub fn log(&self, level: Level, msg: &str) {
        if level == Level::Off || level > self.level {
            return;
        }
        let line = if level == Level::Info {
            msg.to_owned()
        } else {
            format!("{}: {msg}", level.name())
        };
        match &self.captured {
            Some(buf) => buf.lock().expect("log buffer").push(line),
            None => eprintln!("{line}"),
        }
    }

    /// [`log`](Self::log) at `Warn`.
    pub fn warn(&self, msg: &str) {
        self.log(Level::Warn, msg);
    }

    /// [`log`](Self::log) at `Info`.
    pub fn info(&self, msg: &str) {
        self.log(Level::Info, msg);
    }

    /// [`log`](Self::log) at `Debug`.
    pub fn debug(&self, msg: &str) {
        self.log(Level::Debug, msg);
    }

    /// The buffered log lines (empty unless built with
    /// [`capture_logs`](RecorderConfig::capture_logs)).
    #[must_use]
    pub fn captured_logs(&self) -> Vec<String> {
        self.captured
            .as_ref()
            .map(|b| b.lock().expect("log buffer").clone())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------ events

    fn push(
        &self,
        kind: EventKind,
        lane: Lane,
        name: &str,
        cycle: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        if !self.trace_on {
            return;
        }
        let ev = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            name: name.to_owned(),
            lane,
            kind,
            ts_ns: u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            cycle,
            args,
        };
        self.events.lock().expect("event buffer").push(ev);
    }

    /// Opens a span on `lane`.
    pub fn begin(&self, lane: Lane, name: &str, cycle: u64) {
        self.push(EventKind::Begin, lane, name, cycle, Vec::new());
    }

    /// Closes the innermost open span on `lane`; `args` describe the
    /// completed span.
    pub fn end(&self, lane: Lane, name: &str, cycle: u64, args: Vec<(String, ArgValue)>) {
        self.push(EventKind::End, lane, name, cycle, args);
    }

    /// Emits a zero-duration mark on `lane`.
    pub fn instant(&self, lane: Lane, name: &str, cycle: u64, args: Vec<(String, ArgValue)>) {
        self.push(EventKind::Instant, lane, name, cycle, args);
    }

    /// A copy of every event recorded so far, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("event buffer").clone()
    }

    // ----------------------------------------------------------- metrics

    /// Resolves (registering on first use) a deterministic counter.
    /// Returns a disabled handle when metrics are off.
    #[must_use]
    pub fn counter(&self, name: &str) -> CounterHandle {
        self.register_counter(name, false)
    }

    /// Resolves a volatile counter — wall-clock or scheduling-dependent
    /// observations, excluded from snapshot equality.
    #[must_use]
    pub fn counter_volatile(&self, name: &str) -> CounterHandle {
        self.register_counter(name, true)
    }

    fn register_counter(&self, name: &str, volatile: bool) -> CounterHandle {
        if !self.metrics_on {
            return CounterHandle::disabled();
        }
        let mut map = self.counters.lock().expect("counter registry");
        let cell = map
            .entry(name.to_owned())
            .or_insert_with(|| {
                Arc::new(CounterCell {
                    value: AtomicU64::new(0),
                    volatile,
                })
            })
            .clone();
        CounterHandle(Some(cell))
    }

    /// Resolves (registering on first use) a deterministic histogram.
    /// Returns a disabled handle when metrics are off.
    #[must_use]
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.register_histogram(name, false)
    }

    /// Resolves a volatile histogram — wall-clock observations (request
    /// latency), excluded from snapshot equality.
    #[must_use]
    pub fn histogram_volatile(&self, name: &str) -> HistogramHandle {
        self.register_histogram(name, true)
    }

    fn register_histogram(&self, name: &str, volatile: bool) -> HistogramHandle {
        if !self.metrics_on {
            return HistogramHandle::disabled();
        }
        let mut map = self.histograms.lock().expect("histogram registry");
        let cell = map
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(HistoCell::new(volatile)))
            .clone();
        HistogramHandle(Some(cell))
    }

    /// A point-in-time snapshot of every registered metric.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        let mut volatile = BTreeMap::new();
        for (name, cell) in self.counters.lock().expect("counter registry").iter() {
            let v = cell.value.load(Ordering::Relaxed);
            if cell.volatile {
                volatile.insert(name.clone(), v);
            } else {
                counters.insert(name.clone(), v);
            }
        }
        let mut histograms = BTreeMap::new();
        let mut volatile_histograms = BTreeMap::new();
        for (name, cell) in self.histograms.lock().expect("histogram registry").iter() {
            if cell.volatile {
                volatile_histograms.insert(name.clone(), cell.snapshot());
            } else {
                histograms.insert(name.clone(), cell.snapshot());
            }
        }
        MetricsSnapshot {
            counters,
            histograms,
            volatile,
            volatile_histograms,
        }
    }
}

/// Tracks an FSM's phase timeline on one lane: each
/// [`transition`](Self::transition) closes the previous phase's span
/// (annotated with its cycle count) and opens the next.
#[derive(Debug)]
pub struct PhaseLog {
    lane: Lane,
    current: Option<String>,
    entered_cycle: u64,
}

impl PhaseLog {
    /// A phase log for `lane` with no phase open.
    #[must_use]
    pub fn new(lane: Lane) -> Self {
        PhaseLog {
            lane,
            current: None,
            entered_cycle: 0,
        }
    }

    /// Records that the FSM is in `phase` at `cycle`. A no-op while the
    /// phase is unchanged; on a change, the ending span gets a
    /// `cycles` argument (time spent in it) plus `args`.
    pub fn transition(
        &mut self,
        rec: &Recorder,
        phase: &str,
        cycle: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        if self.current.as_deref() == Some(phase) {
            return;
        }
        self.close(rec, cycle, args);
        rec.begin(self.lane, phase, cycle);
        self.current = Some(phase.to_owned());
        self.entered_cycle = cycle;
    }

    /// Closes the open phase span (if any) without opening another.
    pub fn finish(&mut self, rec: &Recorder, cycle: u64, args: Vec<(String, ArgValue)>) {
        self.close(rec, cycle, args);
    }

    fn close(&mut self, rec: &Recorder, cycle: u64, mut args: Vec<(String, ArgValue)>) {
        if let Some(name) = self.current.take() {
            args.push(crate::event::arg(
                "cycles",
                cycle.saturating_sub(self.entered_cycle),
            ));
            rec.end(self.lane, &name, cycle, args);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_collects_nothing() {
        let rec = Recorder::disabled();
        rec.begin(Lane::Main, "x", 0);
        rec.end(Lane::Main, "x", 1, Vec::new());
        rec.counter("c").add(3);
        rec.histogram("h").record(7);
        assert!(rec.events().is_empty());
        let snap = rec.metrics_snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn metrics_snapshot_separates_volatile() {
        let rec = Recorder::new(RecorderConfig {
            metrics: true,
            ..RecorderConfig::default()
        });
        rec.counter("work.items").add(10);
        rec.counter_volatile("work.idle_ns").add(12345);
        let a = rec.metrics_snapshot();
        assert_eq!(a.counters.get("work.items"), Some(&10));
        assert_eq!(a.volatile.get("work.idle_ns"), Some(&12345));
        // Equality ignores the volatile section.
        rec.counter_volatile("work.idle_ns").add(999);
        let b = rec.metrics_snapshot();
        assert_eq!(a, b);
        assert_eq!(
            a.deterministic_json().unwrap(),
            b.deterministic_json().unwrap()
        );
    }

    #[test]
    fn volatile_histograms_report_apart_and_never_compare() {
        let rec = Recorder::new(RecorderConfig {
            metrics: true,
            ..RecorderConfig::default()
        });
        rec.histogram("work.sizes").record(8);
        rec.histogram_volatile("request.latency_us").record(1500);
        let a = rec.metrics_snapshot();
        assert!(a.histograms.contains_key("work.sizes"));
        assert!(!a.histograms.contains_key("request.latency_us"));
        assert_eq!(a.volatile_histograms["request.latency_us"].count, 1);
        // Equality and the deterministic sink ignore the volatile side.
        rec.histogram_volatile("request.latency_us").record(9000);
        let b = rec.metrics_snapshot();
        assert_eq!(a, b);
        assert_eq!(
            a.deterministic_json().unwrap(),
            b.deterministic_json().unwrap()
        );
        assert!(!a.deterministic_json().unwrap().contains("latency_us"));
    }

    #[test]
    fn log_respects_threshold_and_quietness() {
        let rec = Recorder::new(RecorderConfig {
            level: Level::Warn,
            capture_logs: true,
            ..RecorderConfig::default()
        });
        rec.info("progress line");
        rec.warn("something odd");
        rec.debug("detail");
        assert_eq!(rec.captured_logs(), vec!["warn: something odd".to_owned()]);
    }

    #[test]
    fn level_parses_and_orders() {
        assert!("info".parse::<Level>().unwrap() < "trace".parse::<Level>().unwrap());
        assert!("bogus".parse::<Level>().is_err());
    }

    #[test]
    fn phase_log_closes_spans_with_cycle_deltas() {
        let rec = Recorder::new(RecorderConfig {
            trace: true,
            ..RecorderConfig::default()
        });
        let mut pl = PhaseLog::new(Lane::Controller);
        pl.transition(&rec, "Save", 0, Vec::new());
        pl.transition(&rec, "Save", 1, Vec::new()); // unchanged: no-op
        pl.transition(&rec, "Sleep", 2, Vec::new());
        pl.finish(&rec, 6, Vec::new());
        let evs = rec.events();
        let shape: Vec<(crate::event::EventKind, &str)> =
            evs.iter().map(|e| (e.kind, e.name.as_str())).collect();
        use crate::event::EventKind::{Begin, End};
        assert_eq!(
            shape,
            vec![
                (Begin, "Save"),
                (End, "Save"),
                (Begin, "Sleep"),
                (End, "Sleep")
            ]
        );
        assert_eq!(evs[1].args, vec![("cycles".to_owned(), ArgValue::U(2))]);
        assert_eq!(evs[3].args, vec![("cycles".to_owned(), ArgValue::U(4))]);
    }
}
