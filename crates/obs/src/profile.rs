//! Span-based wall-time profiler: an aggregation pass over recorded
//! trace events that answers "where did the time go" per span *name*
//! and per stack *path*.
//!
//! The recorder already captures every span edge (Begin/End with
//! wall-clock `ts_ns`, one writer thread per lane). This module folds
//! that stream into a call tree per lane — node key = the stack path
//! of span names — accumulating three numbers per node:
//!
//! * `calls` — how many spans closed at this path;
//! * `total_ns` — wall time with this path open (children included);
//! * `self_ns` — `total_ns` minus the time attributed to direct
//!   children, i.e. time spent *in this span's own code*.
//!
//! Because children are keyed under their parent path, the telescope
//! identity `self_ns + Σ child.total_ns == total_ns` holds exactly per
//! node — [`Profile::verify`] checks it (and flags the one way it can
//! break: a child span measuring *longer* than its enclosing parent,
//! which means the trace's timestamps are inconsistent).
//!
//! Exports: [`Profile::collapsed`] writes the folded-stack text format
//! (`lane;parent;child self_ns` per line) that `flamegraph.pl`,
//! inferno and speedscope all consume; [`Profile::flat`] is the
//! per-name table the CLI prints.

use crate::event::{Event, EventKind, Lane};
use crate::trace::lane_name;
use std::collections::BTreeMap;

/// One node of the call tree: a unique stack path of span names.
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Span name at this path position.
    pub name: String,
    /// Spans that closed at this path.
    pub calls: u64,
    /// Wall nanoseconds with this path open (children included).
    pub total_ns: u64,
    /// Wall nanoseconds attributed to this span itself:
    /// `total_ns - Σ direct-child total_ns` (saturating).
    pub self_ns: u64,
    /// Direct children, sorted by name.
    pub children: Vec<ProfileNode>,
}

/// One lane's call tree.
#[derive(Debug, Clone)]
pub struct LaneProfile {
    /// Human-readable lane name (`controller`, `worker-3`, ...).
    pub lane: String,
    /// Top-level spans on this lane, sorted by name.
    pub roots: Vec<ProfileNode>,
}

/// A whole trace folded into per-lane call trees.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Lanes in tid order.
    pub lanes: Vec<LaneProfile>,
    /// Spans folded in.
    pub spans: u64,
}

/// Arena node used while folding (children by name for O(log n)
/// lookup; flattened into [`ProfileNode`] at the end).
#[derive(Debug, Default)]
struct ArenaNode {
    calls: u64,
    total_ns: u64,
    child_ns: u64,
    children: BTreeMap<String, usize>,
}

/// One open span on the walk stack.
struct OpenFrame {
    name: String,
    node: usize,
    began_ns: u64,
}

fn fold_lane(events: &[&Event]) -> Result<(Vec<ProfileNode>, u64), String> {
    let mut arena: Vec<ArenaNode> = vec![ArenaNode::default()]; // 0 = virtual root
    let mut stack: Vec<OpenFrame> = Vec::new();
    let mut spans = 0u64;
    for ev in events {
        match ev.kind {
            EventKind::Begin => {
                let parent = stack.last().map_or(0, |f| f.node);
                let node = match arena[parent].children.get(&ev.name) {
                    Some(&idx) => idx,
                    None => {
                        let idx = arena.len();
                        arena.push(ArenaNode::default());
                        arena[parent].children.insert(ev.name.clone(), idx);
                        idx
                    }
                };
                stack.push(OpenFrame {
                    name: ev.name.clone(),
                    node,
                    began_ns: ev.ts_ns,
                });
            }
            EventKind::End => {
                let Some(frame) = stack.pop() else {
                    return Err(format!(
                        "span {:?} ends at seq {} with no span open",
                        ev.name, ev.seq
                    ));
                };
                if frame.name != ev.name {
                    return Err(format!(
                        "span {:?} ends at seq {} but {:?} is the innermost open span",
                        ev.name, ev.seq, frame.name
                    ));
                }
                let duration = ev.ts_ns.saturating_sub(frame.began_ns);
                arena[frame.node].calls += 1;
                arena[frame.node].total_ns += duration;
                if let Some(parent) = stack.last() {
                    arena[parent.node].child_ns += duration;
                }
                spans += 1;
            }
            EventKind::Instant => {}
        }
    }
    if let Some(open) = stack.last() {
        return Err(format!("span {:?} never ends on its lane", open.name));
    }
    let roots = flatten(&arena, 0);
    Ok((roots, spans))
}

fn flatten(arena: &[ArenaNode], idx: usize) -> Vec<ProfileNode> {
    arena[idx]
        .children
        .iter()
        .map(|(name, &child)| {
            let n = &arena[child];
            ProfileNode {
                name: name.clone(),
                calls: n.calls,
                total_ns: n.total_ns,
                self_ns: n.total_ns.saturating_sub(n.child_ns),
                children: flatten(arena, child),
            }
        })
        .collect()
}

/// One row of the flat (per-name) profile table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatRow {
    /// Span name.
    pub name: String,
    /// Spans closed under this name, at any path.
    pub calls: u64,
    /// Summed `self_ns` across every path position.
    pub self_ns: u64,
    /// Summed `total_ns` across *outermost* occurrences only (a
    /// recursive span's inner frames are already inside the outer
    /// frame's total, so counting them again would exceed wall time).
    pub total_ns: u64,
}

impl Profile {
    /// Folds a recorded event stream into per-lane call trees.
    ///
    /// # Errors
    ///
    /// Returns a message when the stream is not well-nested on some
    /// lane: an `End` with no matching `Begin`, a name mismatch at
    /// close, or a span left open at end of stream.
    pub fn from_events(events: &[Event]) -> Result<Profile, String> {
        let mut by_lane: Vec<(Lane, Vec<&Event>)> = Vec::new();
        for ev in events {
            match by_lane.iter_mut().find(|(l, _)| *l == ev.lane) {
                Some((_, list)) => list.push(ev),
                None => by_lane.push((ev.lane, vec![ev])),
            }
        }
        by_lane.sort_by_key(|&(lane, _)| crate::trace::lane_tid(lane));
        let mut lanes = Vec::with_capacity(by_lane.len());
        let mut spans = 0u64;
        for (lane, list) in by_lane {
            let (roots, n) =
                fold_lane(&list).map_err(|e| format!("lane {}: {e}", lane_name(lane)))?;
            spans += n;
            if !roots.is_empty() {
                lanes.push(LaneProfile {
                    lane: lane_name(lane),
                    roots,
                });
            }
        }
        Ok(Profile { lanes, spans })
    }

    /// The folded-stack text export: one `lane;path;to;span weight`
    /// line per node, weight = `self_ns`, sorted lexicographically.
    /// Feed it to `flamegraph.pl`, inferno or speedscope.
    #[must_use]
    pub fn collapsed(&self) -> String {
        let mut lines = Vec::new();
        for lane in &self.lanes {
            for root in &lane.roots {
                collect_collapsed(&mut lines, &lane.lane, root);
            }
        }
        lines.sort();
        let mut out = String::new();
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// The per-name flat table, sorted by descending `self_ns` then
    /// name (stable for equal times).
    #[must_use]
    pub fn flat(&self) -> Vec<FlatRow> {
        let mut rows: BTreeMap<String, FlatRow> = BTreeMap::new();
        for lane in &self.lanes {
            for root in &lane.roots {
                collect_flat_rec(&mut rows, root, &mut Vec::new());
            }
        }
        let mut out: Vec<FlatRow> = rows.into_values().collect();
        out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        out
    }

    /// Checks the telescope identity on every node: `self_ns + Σ
    /// direct-child total_ns == total_ns`, exactly. A violation means
    /// a child span measured longer than its parent — inconsistent
    /// timestamps in the trace.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending path.
    pub fn verify(&self) -> Result<(), String> {
        for lane in &self.lanes {
            for root in &lane.roots {
                verify_node(&lane.lane, root)?;
            }
        }
        Ok(())
    }
}

fn collect_collapsed(lines: &mut Vec<String>, prefix: &str, node: &ProfileNode) {
    let path = format!("{prefix};{}", node.name);
    lines.push(format!("{path} {}", node.self_ns));
    for child in &node.children {
        collect_collapsed(lines, &path, child);
    }
}

/// Walks the tree accumulating flat rows; `path` carries the ancestor
/// names so a recursive span's inner totals are not double-counted.
fn collect_flat_rec(
    rows: &mut BTreeMap<String, FlatRow>,
    node: &ProfileNode,
    path: &mut Vec<String>,
) {
    let inside_same = path.iter().any(|n| n == &node.name);
    let row = rows.entry(node.name.clone()).or_insert_with(|| FlatRow {
        name: node.name.clone(),
        calls: 0,
        self_ns: 0,
        total_ns: 0,
    });
    row.calls += node.calls;
    row.self_ns += node.self_ns;
    if !inside_same {
        row.total_ns += node.total_ns;
    }
    path.push(node.name.clone());
    for child in &node.children {
        collect_flat_rec(rows, child, path);
    }
    path.pop();
}

fn verify_node(path: &str, node: &ProfileNode) -> Result<(), String> {
    let here = format!("{path};{}", node.name);
    let child_total: u64 = node.children.iter().map(|c| c.total_ns).sum();
    let telescoped = node.self_ns.checked_add(child_total);
    if telescoped != Some(node.total_ns) {
        return Err(format!(
            "{here}: self {} + children {} != total {} (children outlive their parent)",
            node.self_ns, child_total, node.total_ns
        ));
    }
    for child in &node.children {
        verify_node(&here, child)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, RecorderConfig};

    fn traced() -> Recorder {
        Recorder::new(RecorderConfig {
            trace: true,
            ..RecorderConfig::default()
        })
    }

    /// Events with hand-written timestamps (the recorder stamps real
    /// wall time, so synthetic shapes are easier to assert against).
    fn ev(seq: u64, name: &str, kind: EventKind, ts_ns: u64) -> Event {
        Event {
            seq,
            name: name.to_owned(),
            lane: Lane::Main,
            kind,
            ts_ns,
            cycle: 0,
            args: Vec::new(),
        }
    }

    #[test]
    fn nested_spans_fold_into_a_tree_with_self_times() {
        use EventKind::{Begin, End};
        let events = vec![
            ev(0, "run", Begin, 0),
            ev(1, "settle", Begin, 100),
            ev(2, "settle", End, 400),
            ev(3, "settle", Begin, 500),
            ev(4, "settle", End, 600),
            ev(5, "run", End, 1000),
        ];
        let p = Profile::from_events(&events).unwrap();
        assert_eq!(p.spans, 3);
        assert_eq!(p.lanes.len(), 1);
        let run = &p.lanes[0].roots[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.calls, 1);
        assert_eq!(run.total_ns, 1000);
        assert_eq!(run.self_ns, 600, "1000 - (300 + 100) child time");
        let settle = &run.children[0];
        assert_eq!(settle.calls, 2);
        assert_eq!(settle.total_ns, 400);
        assert_eq!(settle.self_ns, 400);
        p.verify().unwrap();
    }

    #[test]
    fn collapsed_export_is_sorted_and_weighted_by_self_time() {
        use EventKind::{Begin, End};
        let events = vec![
            ev(0, "b", Begin, 0),
            ev(1, "a", Begin, 10),
            ev(2, "a", End, 20),
            ev(3, "b", End, 100),
        ];
        let p = Profile::from_events(&events).unwrap();
        assert_eq!(p.collapsed(), "main;b 90\nmain;b;a 10\n");
    }

    #[test]
    fn flat_table_handles_recursion_without_double_counting_total() {
        use EventKind::{Begin, End};
        let events = vec![
            ev(0, "f", Begin, 0),
            ev(1, "f", Begin, 10),
            ev(2, "f", End, 60),
            ev(3, "f", End, 100),
        ];
        let p = Profile::from_events(&events).unwrap();
        let flat = p.flat();
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].calls, 2);
        assert_eq!(flat[0].self_ns, 100, "50 inner + 50 outer-self");
        assert_eq!(flat[0].total_ns, 100, "outermost occurrence only");
    }

    #[test]
    fn unbalanced_streams_are_rejected_with_the_offender_named() {
        use EventKind::{Begin, End};
        let stray_end = vec![ev(0, "x", End, 5)];
        assert!(Profile::from_events(&stray_end)
            .unwrap_err()
            .contains("no span open"));
        let mismatch = vec![ev(0, "x", Begin, 0), ev(1, "y", End, 5)];
        assert!(Profile::from_events(&mismatch)
            .unwrap_err()
            .contains("innermost"));
        let unclosed = vec![ev(0, "x", Begin, 0)];
        assert!(Profile::from_events(&unclosed)
            .unwrap_err()
            .contains("never ends"));
    }

    #[test]
    fn lanes_fold_independently() {
        use EventKind::{Begin, End};
        let mut events = vec![ev(0, "w", Begin, 0)];
        events.push(Event {
            lane: Lane::Worker(0),
            ..ev(1, "task", Begin, 10)
        });
        events.push(Event {
            lane: Lane::Worker(0),
            ..ev(2, "task", End, 30)
        });
        events.push(ev(3, "w", End, 100));
        let p = Profile::from_events(&events).unwrap();
        assert_eq!(p.lanes.len(), 2);
        assert_eq!(p.lanes[0].lane, "main");
        assert_eq!(p.lanes[1].lane, "worker-0");
        p.verify().unwrap();
    }

    #[test]
    fn real_recorder_spans_verify() {
        let rec = traced();
        rec.begin(Lane::Main, "outer", 0);
        rec.begin(Lane::Main, "inner", 0);
        std::thread::sleep(std::time::Duration::from_millis(1));
        rec.end(Lane::Main, "inner", 1, Vec::new());
        rec.end(Lane::Main, "outer", 2, Vec::new());
        let p = Profile::from_events(&rec.events()).unwrap();
        p.verify().unwrap();
        assert_eq!(p.spans, 2);
        let outer = &p.lanes[0].roots[0];
        assert!(outer.total_ns >= outer.children[0].total_ns);
    }
}
