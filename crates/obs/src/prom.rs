//! Prometheus text exposition (format version 0.0.4) over a
//! [`MetricsSnapshot`].
//!
//! Hand-rolled writer, no dependency: the format is line-oriented —
//! `# TYPE` headers followed by `name{labels} value` samples — and the
//! only subtlety is histograms, which Prometheus models as *cumulative*
//! buckets keyed by an inclusive upper bound label `le`. Our log2
//! buckets `[2^(b-1), 2^b)` hold integers, so bucket `b` maps exactly
//! onto `le="2^b - 1"`, and the mandatory `+Inf` bucket carries the
//! total count.
//!
//! Metric names are sanitized into the Prometheus grammar
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`) under a `scanguard_` namespace:
//! `serve.requests` becomes `scanguard_serve_requests_total`. Counter
//! samples get the conventional `_total` suffix; histograms and gauges
//! keep their bare name. Output order is deterministic (sorted
//! registries, caller-ordered gauges) so the exposition body is stable
//! for a stable snapshot.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::fmt::Write as _;

/// The `Content-Type` a Prometheus scraper expects for this body.
pub const PROM_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Sanitizes one metric name into the Prometheus grammar under the
/// `scanguard_` namespace (dots and any other illegal byte become
/// underscores).
#[must_use]
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("scanguard_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a float the way Prometheus expects (plain decimal; integers
/// without a trailing `.0` are fine — scrapers parse both).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else if v.is_nan() {
        "NaN".to_owned()
    } else {
        format!("{v}")
    }
}

fn write_counter(out: &mut String, name: &str, value: u64) {
    let n = prom_name(name);
    let _ = writeln!(out, "# TYPE {n}_total counter");
    let _ = writeln!(out, "{n}_total {value}");
}

fn write_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let n = prom_name(name);
    let _ = writeln!(out, "# TYPE {n} histogram");
    let mut cumulative = 0u64;
    for &(lo, count) in &h.buckets {
        cumulative += count;
        // Inclusive upper bound of the log2 bucket starting at `lo`:
        // bucket 0 holds only zeros; bucket [2^(b-1), 2^b) of integers
        // tops out at 2^b - 1 (u64::MAX for the last bucket, which
        // Prometheus spells +Inf).
        let le = if lo == 0 {
            "0".to_owned()
        } else {
            match lo.checked_mul(2) {
                Some(hi) => (hi - 1).to_string(),
                None => "+Inf".to_owned(),
            }
        };
        let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let top_is_inf = h
        .buckets
        .last()
        .is_some_and(|&(lo, _)| lo.checked_mul(2).is_none());
    if !top_is_inf {
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
    }
    let _ = writeln!(out, "{n}_sum {}", h.sum);
    let _ = writeln!(out, "{n}_count {}", h.count);
}

/// Renders `snap` plus caller-supplied gauges (uptime, queue depth,
/// derived rates) as one Prometheus 0.0.4 exposition body.
///
/// Deterministic and volatile sections both export — a scraper wants
/// everything, and the deterministic/volatile split is a *comparison*
/// contract, not a visibility one.
#[must_use]
pub fn to_prometheus(snap: &MetricsSnapshot, gauges: &[(String, f64)]) -> String {
    let mut out = String::new();
    for (name, &value) in &snap.counters {
        write_counter(&mut out, name, value);
    }
    for (name, &value) in &snap.volatile {
        write_counter(&mut out, name, value);
    }
    for (name, h) in &snap.histograms {
        write_histogram(&mut out, name, h);
    }
    for (name, h) in &snap.volatile_histograms {
        write_histogram(&mut out, name, h);
    }
    for (name, value) in gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", fmt_f64(*value));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, RecorderConfig};

    fn snapshot_with(f: impl FnOnce(&Recorder)) -> MetricsSnapshot {
        let rec = Recorder::new(RecorderConfig {
            metrics: true,
            ..RecorderConfig::default()
        });
        f(&rec);
        rec.metrics_snapshot()
    }

    #[test]
    fn names_are_sanitized_into_the_grammar() {
        assert_eq!(prom_name("serve.requests"), "scanguard_serve_requests");
        assert_eq!(
            prom_name("par.worker.00.busy_ns"),
            "scanguard_par_worker_00_busy_ns"
        );
        assert_eq!(prom_name("a-b c"), "scanguard_a_b_c");
    }

    #[test]
    fn counters_export_with_total_suffix_and_type_line() {
        let snap = snapshot_with(|rec| rec.counter("serve.requests").add(42));
        let body = to_prometheus(&snap, &[]);
        assert!(body.contains("# TYPE scanguard_serve_requests_total counter"));
        assert!(
            body.contains("\nscanguard_serve_requests_total 42\n") || body.starts_with("# TYPE")
        );
        assert!(body
            .lines()
            .any(|l| l == "scanguard_serve_requests_total 42"));
    }

    #[test]
    fn histograms_export_cumulative_buckets() {
        let snap = snapshot_with(|rec| {
            let h = rec.histogram("dft.fault_cycles");
            for v in [0, 1, 1, 3, 16] {
                h.record(v);
            }
        });
        let body = to_prometheus(&snap, &[]);
        let lines: Vec<&str> = body
            .lines()
            .filter(|l| l.starts_with("scanguard_dft_fault_cycles"))
            .collect();
        assert_eq!(
            lines,
            vec![
                "scanguard_dft_fault_cycles_bucket{le=\"0\"} 1",
                "scanguard_dft_fault_cycles_bucket{le=\"1\"} 3",
                "scanguard_dft_fault_cycles_bucket{le=\"3\"} 4",
                "scanguard_dft_fault_cycles_bucket{le=\"31\"} 5",
                "scanguard_dft_fault_cycles_bucket{le=\"+Inf\"} 5",
                "scanguard_dft_fault_cycles_sum 21",
                "scanguard_dft_fault_cycles_count 5",
            ]
        );
    }

    #[test]
    fn saturating_top_bucket_is_inf_not_duplicated() {
        let snap = snapshot_with(|rec| rec.histogram("h").record(u64::MAX));
        let body = to_prometheus(&snap, &[]);
        let inf_lines = body.lines().filter(|l| l.contains("le=\"+Inf\"")).count();
        assert_eq!(inf_lines, 1, "exactly one +Inf bucket:\n{body}");
        assert!(body.contains("scanguard_h_count 1"));
    }

    #[test]
    fn gauges_export_in_caller_order() {
        let snap = snapshot_with(|_| {});
        let body = to_prometheus(
            &snap,
            &[
                ("serve.uptime_ms".to_owned(), 1234.0),
                ("rate.requests_per_s".to_owned(), 2.5),
            ],
        );
        assert!(body.contains("# TYPE scanguard_serve_uptime_ms gauge"));
        assert!(body.lines().any(|l| l == "scanguard_serve_uptime_ms 1234"));
        assert!(body
            .lines()
            .any(|l| l == "scanguard_rate_requests_per_s 2.5"));
    }

    #[test]
    fn volatile_metrics_are_exported_too() {
        let snap = snapshot_with(|rec| {
            rec.counter_volatile("par.workers").add(4);
            rec.histogram_volatile("serve.request_latency_us")
                .record(100);
        });
        let body = to_prometheus(&snap, &[]);
        assert!(body.contains("scanguard_par_workers_total 4"));
        assert!(body.contains("scanguard_serve_request_latency_us_count 1"));
    }
}
