//! The counters/histograms registry.
//!
//! Instrumented code resolves a [`CounterHandle`] or
//! [`HistogramHandle`] once (at attach time) and then updates it with
//! relaxed atomics — no locks, no allocation, nothing on the hot path
//! but a null check and a `fetch_add`. A handle from a recorder with
//! metrics disabled is empty and every update is a no-op.
//!
//! Determinism: counter and histogram updates are commutative sums, so
//! a [`MetricsSnapshot`] is a pure function of the work done, not of
//! the thread count — *except* for metrics registered as volatile
//! (wall-clock, per-worker scheduling), which are reported separately
//! and excluded from equality, exactly like `wall_ms` today.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log2 histogram buckets: bucket 0 holds zeros, bucket `b`
/// (b >= 1) holds values in `[2^(b-1), 2^b)`.
const BUCKETS: usize = 65;

/// The shared cell behind a [`CounterHandle`].
#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    pub(crate) value: AtomicU64,
    /// Volatile counters (wall-clock, per-worker scheduling) are
    /// reported apart from the deterministic ones.
    pub(crate) volatile: bool,
}

/// A resolved counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(pub(crate) Option<Arc<CounterCell>>);

impl CounterHandle {
    /// A permanently disabled handle (every update is a no-op).
    #[must_use]
    pub const fn disabled() -> Self {
        CounterHandle(None)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// The shared cell behind a [`HistogramHandle`].
#[derive(Debug)]
pub(crate) struct HistoCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Volatile histograms (request latencies, anything wall-clock)
    /// are reported apart from the deterministic ones.
    pub(crate) volatile: bool,
}

impl HistoCell {
    pub(crate) fn new(volatile: bool) -> Self {
        HistoCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            volatile,
        }
    }
}

/// Index of the log2 bucket holding `v`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `b`.
fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// A resolved histogram. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(pub(crate) Option<Arc<HistoCell>>);

impl HistogramHandle {
    /// A permanently disabled handle (every update is a no-op).
    #[must_use]
    pub const fn disabled() -> Self {
        HistogramHandle(None)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(v, Ordering::Relaxed);
            cell.min.fetch_min(v, Ordering::Relaxed);
            cell.max.fetch_max(v, Ordering::Relaxed);
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty log2 buckets as `(inclusive lower bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0..=1.0`) estimated from the log2 buckets:
    /// the target rank is located by cumulative count, then linearly
    /// interpolated across the bucket's value range `[lo, hi]`. Exact
    /// for bucket 0 (zeros); within one bucket width otherwise; `0.0`
    /// for an empty histogram. The estimate is clamped to the recorded
    /// `[min, max]`, so `percentile(1.0)` returns the true maximum.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for &(lo, n) in &self.buckets {
            let before = cumulative as f64;
            cumulative += n;
            if (cumulative as f64) >= target {
                let hi = bucket_hi(lo);
                let frac = if n == 0 {
                    0.0
                } else {
                    ((target - before) / n as f64).clamp(0.0, 1.0)
                };
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Median estimate ([`percentile`](Self::percentile) at 0.5).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> f64 {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// Inclusive upper bound of the log2 bucket starting at `lo`.
fn bucket_hi(lo: u64) -> u64 {
    if lo == 0 {
        0
    } else {
        lo.checked_mul(2).map_or(u64::MAX, |hi| hi - 1)
    }
}

impl HistoCell {
    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(b, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then_some((bucket_lo(b), c))
                })
                .collect(),
        }
    }
}

/// Point-in-time view of the whole registry.
///
/// `counters` and `histograms` are deterministic — byte-identical
/// across thread counts for the same work. `volatile` holds wall-clock
/// and per-worker scheduling numbers; it is excluded from `==` (the
/// `wall_ms` convention) and from
/// [`deterministic_json`](Self::deterministic_json).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Deterministic counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Deterministic histograms, sorted by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Nondeterministic observations (idle nanoseconds, per-worker task
    /// counts). Reported, never compared.
    pub volatile: BTreeMap<String, u64>,
    /// Nondeterministic histograms (request latency in wall-clock
    /// units). Reported, never compared.
    pub volatile_histograms: BTreeMap<String, HistogramSnapshot>,
}

impl PartialEq for MetricsSnapshot {
    fn eq(&self, other: &Self) -> bool {
        // The volatile sections are scheduling/wall-clock noise, not
        // part of the snapshot's identity.
        self.counters == other.counters && self.histograms == other.histograms
    }
}

impl MetricsSnapshot {
    /// Pretty JSON of the full snapshot (volatile section included).
    ///
    /// # Errors
    ///
    /// Returns the encoder's message on failure (cannot happen for this
    /// tree shape).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Pretty JSON of the deterministic sections only — byte-identical
    /// across thread counts.
    ///
    /// # Errors
    ///
    /// Returns the encoder's message on failure (cannot happen for this
    /// tree shape).
    pub fn deterministic_json(&self) -> Result<String, String> {
        let doc = serde::Value::Object(vec![
            (
                "counters".to_owned(),
                serde::Serialize::to_value(&self.counters),
            ),
            (
                "histograms".to_owned(),
                serde::Serialize::to_value(&self.histograms),
            ),
        ]);
        serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(2), 2);
        assert_eq!(bucket_lo(3), 4);
    }

    #[test]
    fn disabled_handles_are_no_ops() {
        let c = CounterHandle::disabled();
        c.add(5);
        c.inc();
        let h = HistogramHandle::disabled();
        h.record(42);
        // Nothing to observe — the point is that none of this panics or
        // allocates.
    }

    #[test]
    fn percentiles_of_an_empty_histogram_are_zero() {
        let cell = Arc::new(HistoCell::new(false));
        let s = cell.snapshot();
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.p99(), 0.0);
        assert_eq!(s.percentile(1.0), 0.0);
    }

    #[test]
    fn percentiles_within_a_single_bucket_interpolate_its_range() {
        let cell = Arc::new(HistoCell::new(false));
        let h = HistogramHandle(Some(cell.clone()));
        // 100 samples all in bucket [16, 32).
        for _ in 0..100 {
            h.record(20);
        }
        let s = cell.snapshot();
        let p50 = s.p50();
        assert!(
            (16.0..32.0).contains(&p50),
            "p50 must land in the bucket, got {p50}"
        );
        // Clamped to the recorded extremes: max is exact.
        assert_eq!(s.percentile(1.0), 20.0);
        assert_eq!(s.percentile(0.0), 20.0);
    }

    #[test]
    fn percentiles_cross_buckets_at_the_right_rank() {
        let cell = Arc::new(HistoCell::new(false));
        let h = HistogramHandle(Some(cell.clone()));
        // 90 small samples, 10 large ones: p50 stays small, p99 large.
        for _ in 0..90 {
            h.record(4);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let s = cell.snapshot();
        assert!(
            s.p50() < 8.0,
            "p50 {} must sit in the [4,8) bucket",
            s.p50()
        );
        assert!(
            s.p99() >= 512.0,
            "p99 {} must reach the large bucket",
            s.p99()
        );
        assert!(s.p99() <= 1000.0, "p99 {} clamps to the max", s.p99());
    }

    #[test]
    fn percentiles_survive_saturating_values() {
        let cell = Arc::new(HistoCell::new(false));
        let h = HistogramHandle(Some(cell.clone()));
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = cell.snapshot();
        assert_eq!(s.percentile(1.0), u64::MAX as f64);
        assert!(s.p50() >= (1u64 << 63) as f64, "p50 in the top bucket");
        assert!(s.p50().is_finite());
    }

    #[test]
    fn zeros_bucket_is_exact() {
        let cell = Arc::new(HistoCell::new(false));
        let h = HistogramHandle(Some(cell.clone()));
        for _ in 0..5 {
            h.record(0);
        }
        h.record(100);
        let s = cell.snapshot();
        assert_eq!(s.p50(), 0.0);
    }

    #[test]
    fn histogram_snapshot_summarizes() {
        let cell = Arc::new(HistoCell::new(false));
        let h = HistogramHandle(Some(cell.clone()));
        for v in [0, 1, 1, 3, 16] {
            h.record(v);
        }
        let s = cell.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 21);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 16);
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (2, 1), (16, 1)]);
    }
}
