//! The counters/histograms registry.
//!
//! Instrumented code resolves a [`CounterHandle`] or
//! [`HistogramHandle`] once (at attach time) and then updates it with
//! relaxed atomics — no locks, no allocation, nothing on the hot path
//! but a null check and a `fetch_add`. A handle from a recorder with
//! metrics disabled is empty and every update is a no-op.
//!
//! Determinism: counter and histogram updates are commutative sums, so
//! a [`MetricsSnapshot`] is a pure function of the work done, not of
//! the thread count — *except* for metrics registered as volatile
//! (wall-clock, per-worker scheduling), which are reported separately
//! and excluded from equality, exactly like `wall_ms` today.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log2 histogram buckets: bucket 0 holds zeros, bucket `b`
/// (b >= 1) holds values in `[2^(b-1), 2^b)`.
const BUCKETS: usize = 65;

/// The shared cell behind a [`CounterHandle`].
#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    pub(crate) value: AtomicU64,
    /// Volatile counters (wall-clock, per-worker scheduling) are
    /// reported apart from the deterministic ones.
    pub(crate) volatile: bool,
}

/// A resolved counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(pub(crate) Option<Arc<CounterCell>>);

impl CounterHandle {
    /// A permanently disabled handle (every update is a no-op).
    #[must_use]
    pub const fn disabled() -> Self {
        CounterHandle(None)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
}

/// The shared cell behind a [`HistogramHandle`].
#[derive(Debug)]
pub(crate) struct HistoCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    /// Volatile histograms (request latencies, anything wall-clock)
    /// are reported apart from the deterministic ones.
    pub(crate) volatile: bool,
}

impl HistoCell {
    pub(crate) fn new(volatile: bool) -> Self {
        HistoCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            volatile,
        }
    }
}

/// Index of the log2 bucket holding `v`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `b`.
fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// A resolved histogram. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(pub(crate) Option<Arc<HistoCell>>);

impl HistogramHandle {
    /// A permanently disabled handle (every update is a no-op).
    #[must_use]
    pub const fn disabled() -> Self {
        HistogramHandle(None)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(v, Ordering::Relaxed);
            cell.min.fetch_min(v, Ordering::Relaxed);
            cell.max.fetch_max(v, Ordering::Relaxed);
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty log2 buckets as `(inclusive lower bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistoCell {
    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(b, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then_some((bucket_lo(b), c))
                })
                .collect(),
        }
    }
}

/// Point-in-time view of the whole registry.
///
/// `counters` and `histograms` are deterministic — byte-identical
/// across thread counts for the same work. `volatile` holds wall-clock
/// and per-worker scheduling numbers; it is excluded from `==` (the
/// `wall_ms` convention) and from
/// [`deterministic_json`](Self::deterministic_json).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Deterministic counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Deterministic histograms, sorted by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Nondeterministic observations (idle nanoseconds, per-worker task
    /// counts). Reported, never compared.
    pub volatile: BTreeMap<String, u64>,
    /// Nondeterministic histograms (request latency in wall-clock
    /// units). Reported, never compared.
    pub volatile_histograms: BTreeMap<String, HistogramSnapshot>,
}

impl PartialEq for MetricsSnapshot {
    fn eq(&self, other: &Self) -> bool {
        // The volatile sections are scheduling/wall-clock noise, not
        // part of the snapshot's identity.
        self.counters == other.counters && self.histograms == other.histograms
    }
}

impl MetricsSnapshot {
    /// Pretty JSON of the full snapshot (volatile section included).
    ///
    /// # Errors
    ///
    /// Returns the encoder's message on failure (cannot happen for this
    /// tree shape).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// Pretty JSON of the deterministic sections only — byte-identical
    /// across thread counts.
    ///
    /// # Errors
    ///
    /// Returns the encoder's message on failure (cannot happen for this
    /// tree shape).
    pub fn deterministic_json(&self) -> Result<String, String> {
        let doc = serde::Value::Object(vec![
            (
                "counters".to_owned(),
                serde::Serialize::to_value(&self.counters),
            ),
            (
                "histograms".to_owned(),
                serde::Serialize::to_value(&self.histograms),
            ),
        ]);
        serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_lo(1), 1);
        assert_eq!(bucket_lo(2), 2);
        assert_eq!(bucket_lo(3), 4);
    }

    #[test]
    fn disabled_handles_are_no_ops() {
        let c = CounterHandle::disabled();
        c.add(5);
        c.inc();
        let h = HistogramHandle::disabled();
        h.record(42);
        // Nothing to observe — the point is that none of this panics or
        // allocates.
    }

    #[test]
    fn histogram_snapshot_summarizes() {
        let cell = Arc::new(HistoCell::new(false));
        let h = HistogramHandle(Some(cell.clone()));
        for v in [0, 1, 1, 3, 16] {
            h.record(v);
        }
        let s = cell.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 21);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 16);
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (2, 1), (16, 1)]);
    }
}
