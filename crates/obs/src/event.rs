//! The structured event model shared by every sink.
//!
//! An [`Event`] is one point (or span edge) on a timeline lane. It
//! carries two clocks: `cycle`, the *logical* timestamp (simulation
//! clock cycles — deterministic, part of the event's identity), and
//! `ts_ns`, the wall-clock nanoseconds since the recorder's epoch
//! (measurement noise, carried only so the Chrome-trace sink can lay
//! spans out proportionally).

/// The timeline a trace event belongs to.
///
/// By convention each lane is written by exactly one thread — the
/// controller/main lanes by the driving thread, each worker lane by its
/// pool worker — which is what makes per-lane timestamps monotone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Lane {
    /// The power-gating controller FSM phase timeline (also run-level
    /// phases of a batch job: golden run, fault fan-out, merge).
    Controller,
    /// The driving thread's own work.
    Main,
    /// One worker of the deterministic pool, by worker index.
    Worker(u32),
    /// One daemon request, by request id — a served request's spans
    /// live on their own lane so concurrent requests never interleave
    /// on the main timeline.
    Request(u32),
}

/// What kind of timeline mark an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    /// A span opens on its lane.
    Begin,
    /// The most recently opened span on the same lane closes.
    End,
    /// A zero-duration mark.
    Instant,
}

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ArgValue {
    /// An unsigned integer (counts, indices, cycle deltas).
    U(u64),
    /// A float (energy, percentages).
    F(f64),
    /// A string (names, outcomes).
    S(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::S(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::S(v)
    }
}

/// Builds one `(key, value)` argument pair.
pub fn arg(key: &str, value: impl Into<ArgValue>) -> (String, ArgValue) {
    (key.to_owned(), value.into())
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Event {
    /// Global emission sequence number (unique per recorder).
    pub seq: u64,
    /// Span or mark name.
    pub name: String,
    /// The timeline lane.
    pub lane: Lane,
    /// Span edge or instant mark.
    pub kind: EventKind,
    /// Wall-clock nanoseconds since the recorder's epoch. Measurement
    /// noise — never part of a byte-identity comparison (the same
    /// convention as `CoverageReport::wall_ms`).
    pub ts_ns: u64,
    /// Logical timestamp: the simulation cycle (or item index) the
    /// event belongs to. Deterministic.
    pub cycle: u64,
    /// Free-form payload, in emission order.
    pub args: Vec<(String, ArgValue)>,
}
