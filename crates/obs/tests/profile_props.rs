//! Property tests of the span profiler: any well-nested span forest,
//! folded into a [`Profile`], must satisfy the telescope identity
//! `self_ns + Σ child.total_ns == total_ns` at every node (that is
//! what [`Profile::verify`] checks), conserve wall time between the
//! flat table and the tree, and survive a collapsed-stack round of
//! bookkeeping without inventing or losing nanoseconds.

use proptest::prelude::*;
use scanguard_obs::{Event, EventKind, Lane, Profile, ProfileNode};

/// A recipe for one span: time before it opens, time spent in its own
/// code after the children close, and nested children.
#[derive(Debug, Clone)]
struct SpanTree {
    name: usize,
    pre_gap_ns: u64,
    self_tail_ns: u64,
    children: Vec<SpanTree>,
}

const NAMES: [&str; 4] = ["synthesize", "simulate", "merge", "report"];

/// Depth-bounded recursive strategy: a span with up to 3 children per
/// level, `depth` levels deep.
fn span_strategy(depth: u32) -> BoxedStrategy<SpanTree> {
    let children = if depth == 0 {
        Just(Vec::new()).boxed()
    } else {
        collection::vec(span_strategy(depth - 1), 0..4).boxed()
    };
    (0..NAMES.len(), 0u64..1000, 0u64..1000, children)
        .prop_map(|(name, pre, tail, children)| SpanTree {
            name,
            pre_gap_ns: pre,
            self_tail_ns: tail,
            children,
        })
        .boxed()
}

/// Emits the Begin/End event pair(s) for one span tree, advancing the
/// lane clock, and returns the span's total duration.
fn emit(tree: &SpanTree, lane: Lane, t: &mut u64, seq: &mut u64, out: &mut Vec<Event>) -> u64 {
    *t += tree.pre_gap_ns;
    let began = *t;
    out.push(Event {
        seq: *seq,
        name: NAMES[tree.name].to_owned(),
        lane,
        kind: EventKind::Begin,
        ts_ns: began,
        cycle: 0,
        args: Vec::new(),
    });
    *seq += 1;
    for child in &tree.children {
        emit(child, lane, t, seq, out);
    }
    *t += tree.self_tail_ns;
    let ended = *t;
    out.push(Event {
        seq: *seq,
        name: NAMES[tree.name].to_owned(),
        lane,
        kind: EventKind::End,
        ts_ns: ended,
        cycle: 0,
        args: Vec::new(),
    });
    *seq += 1;
    ended - began
}

fn events_for(forest: &[SpanTree], lanes: usize) -> Vec<Event> {
    let mut out = Vec::new();
    let mut seq = 0u64;
    for (i, tree) in forest.iter().enumerate() {
        let lane = match i % lanes {
            0 => Lane::Main,
            n => Lane::Worker((n - 1) as u32),
        };
        // Each lane keeps its own clock; restarting at 0 per tree is
        // fine because only deltas matter to the fold.
        let mut t = 0u64;
        emit(tree, lane, &mut t, &mut seq, &mut out);
    }
    out
}

fn count_spans(forest: &[SpanTree]) -> u64 {
    forest
        .iter()
        .map(|t| 1 + count_spans(&t.children))
        .sum::<u64>()
}

fn sum_self(nodes: &[ProfileNode]) -> u64 {
    nodes
        .iter()
        .map(|n| n.self_ns + sum_self(&n.children))
        .sum()
}

fn sum_calls(nodes: &[ProfileNode]) -> u64 {
    nodes.iter().map(|n| n.calls + sum_calls(&n.children)).sum()
}

proptest! {
    /// Any well-nested forest folds into a profile whose telescope
    /// identity verifies, whose call count matches the span count, and
    /// whose wall time is conserved: per lane, Σ self over the whole
    /// tree equals Σ total over the roots, and the collapsed export
    /// carries exactly the tree's self times.
    #[test]
    fn telescope_identity_holds_for_any_well_nested_forest(
        forest in collection::vec(span_strategy(3), 1..6),
        lanes in 1usize..4,
    ) {
        let events = events_for(&forest, lanes);
        let profile = Profile::from_events(&events).expect("well-nested stream folds");
        profile.verify().expect("telescope identity");
        prop_assert_eq!(profile.spans, count_spans(&forest));
        prop_assert_eq!(
            profile.lanes.iter().map(|l| sum_calls(&l.roots)).sum::<u64>(),
            count_spans(&forest)
        );
        for lane in &profile.lanes {
            let roots_total: u64 = lane.roots.iter().map(|n| n.total_ns).sum();
            prop_assert_eq!(
                sum_self(&lane.roots), roots_total,
                "wall time must be conserved on lane {}", lane.lane
            );
        }
        // The collapsed export is the same numbers, one line per path.
        let collapsed_total: u64 = profile
            .collapsed()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        let tree_total: u64 = profile.lanes.iter().map(|l| sum_self(&l.roots)).sum();
        prop_assert_eq!(collapsed_total, tree_total);
    }

    /// Truncating the stream mid-span (dropping the final End) is
    /// always rejected — the profiler refuses inconsistent traces
    /// rather than silently inventing a duration.
    #[test]
    fn truncated_streams_are_rejected(
        forest in collection::vec(span_strategy(2), 1..4),
    ) {
        let mut events = events_for(&forest, 1);
        events.pop();
        prop_assert!(Profile::from_events(&events).is_err());
    }
}
