//! Sink conformance: JSONL round-trips through serde, the Chrome trace
//! is valid JSON with monotone per-lane timestamps, and a multi-thread
//! recording still yields well-formed lanes.

use scanguard_obs::{
    arg, to_chrome_trace, to_jsonl, Event, EventKind, Lane, Recorder, RecorderConfig,
};

fn tracing() -> Recorder {
    Recorder::new(RecorderConfig {
        trace: true,
        metrics: true,
        ..RecorderConfig::default()
    })
}

/// A recording with all three lane kinds, nested spans, instants and
/// every argument type.
fn sample() -> Recorder {
    let rec = tracing();
    rec.begin(Lane::Controller, "golden", 0);
    rec.instant(Lane::Controller, "merge", 3, vec![arg("faults", 7u64)]);
    rec.end(
        Lane::Controller,
        "golden",
        40,
        vec![arg("energy_pj", 1.25), arg("outcome", "ok")],
    );
    rec.begin(Lane::Main, "outer", 0);
    rec.begin(Lane::Main, "inner", 1);
    rec.end(Lane::Main, "inner", 2, Vec::new());
    rec.end(Lane::Main, "outer", 3, Vec::new());
    for w in 0..3u32 {
        rec.begin(Lane::Worker(w), "worker", 0);
        rec.end(Lane::Worker(w), "worker", 9, vec![arg("tasks", 4u64)]);
    }
    rec
}

#[test]
fn jsonl_round_trips_through_serde_json() {
    let rec = sample();
    let original = rec.events();
    let doc = rec.to_jsonl().unwrap();
    let parsed: Vec<Event> = doc
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(parsed, original);
    // And each line re-encodes to the same bytes (stable rendering).
    for (line, ev) in doc.lines().zip(&parsed) {
        assert_eq!(line, serde_json::to_string(ev).unwrap());
    }
}

#[test]
fn chrome_trace_is_valid_json_with_monotone_ts_per_lane() {
    let doc = sample().to_chrome_trace().unwrap();
    let root: serde::Value = serde_json::from_str(&doc).unwrap();
    let serde::Value::Object(fields) = &root else {
        panic!("chrome trace root must be an object");
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| match v {
            serde::Value::Array(a) => Some(a),
            _ => None,
        })
        .expect("traceEvents array");
    let mut last_ts = std::collections::HashMap::new();
    let mut named_lanes = 0;
    for ev in events {
        let serde::Value::Object(obj) = ev else {
            panic!("trace event must be an object")
        };
        let field = |name: &str| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let ph = field("ph").and_then(serde::Value::as_str).unwrap();
        let tid = field("tid").and_then(serde::Value::as_u64).unwrap();
        if ph == "M" {
            named_lanes += 1;
            continue;
        }
        let ts = field("ts").and_then(serde::Value::as_f64).unwrap();
        if let Some(&prev) = last_ts.get(&tid) {
            assert!(ts >= prev, "ts went backwards on tid {tid}: {ts} < {prev}");
        }
        last_ts.insert(tid, ts);
    }
    // process_name + controller + main + 3 workers.
    assert_eq!(named_lanes, 6);
    assert_eq!(last_ts.len(), 5, "controller, main and 3 worker lanes");
}

#[test]
fn lanes_written_from_many_threads_stay_monotone() {
    let rec = tracing();
    std::thread::scope(|s| {
        for w in 0..8u32 {
            let rec = &rec;
            s.spawn(move || {
                rec.begin(Lane::Worker(w), "worker", 0);
                for i in 0..50u64 {
                    rec.instant(Lane::Worker(w), "tick", i, Vec::new());
                }
                rec.end(Lane::Worker(w), "worker", 50, Vec::new());
            });
        }
    });
    let events = rec.events();
    assert_eq!(events.len(), 8 * 52);
    // Per-lane ts monotone in buffer order (each lane has one writer).
    let mut last = std::collections::HashMap::new();
    for ev in &events {
        if let Some(&prev) = last.get(&ev.lane) {
            assert!(ev.ts_ns >= prev);
        }
        last.insert(ev.lane, ev.ts_ns);
    }
    // The chrome sink's stable sort must preserve that.
    let doc = to_chrome_trace(&events).unwrap();
    assert!(serde_json::from_str::<serde::Value>(&doc).is_ok());
}

#[test]
fn disabled_trace_yields_empty_sinks() {
    let rec = Recorder::disabled();
    rec.begin(Lane::Main, "x", 0);
    rec.end(Lane::Main, "x", 1, Vec::new());
    assert_eq!(rec.to_jsonl().unwrap(), "");
    let doc = rec.to_chrome_trace().unwrap();
    assert!(doc.contains("traceEvents"));
    assert!(!doc.contains("\"ph\":\"B\""));
}

#[test]
fn event_kinds_and_args_survive_the_jsonl_sink() {
    let rec = tracing();
    rec.instant(
        Lane::Worker(2),
        "fault",
        17,
        vec![arg("cell", 5u64), arg("pct", 0.5), arg("stuck", "one")],
    );
    let doc = to_jsonl(&rec.events()).unwrap();
    let ev: Event = serde_json::from_str(doc.trim()).unwrap();
    assert_eq!(ev.kind, EventKind::Instant);
    assert_eq!(ev.lane, Lane::Worker(2));
    assert_eq!(ev.cycle, 17);
    assert_eq!(ev.args.len(), 3);
}
