//! # scanguard-bench
//!
//! Shared helpers for the per-table/figure bench targets (the actual
//! experiments live in `scanguard-harness`; the benches format and
//! compare against the paper's published numbers from
//! [`scanguard_harness::paper`]).
//!
//! Run everything with `cargo bench --workspace`; individual
//! reproductions with e.g.
//! `cargo bench -p scanguard-bench --bench table1_crc16`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use scanguard_core::CostRow;
use scanguard_harness::paper::PaperCostRow;

/// Reads an experiment-scale override from the environment
/// (`SCANGUARD_<NAME>`), falling back to `default`. Used to scale
/// Monte-Carlo sequence counts up to paper scale when desired.
#[must_use]
pub fn env_scale(name: &str, default: u64) -> u64 {
    std::env::var(format!("SCANGUARD_{name}"))
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Renders a measured [`CostRow`] next to its paper counterpart as two
/// lines (`paper:` / `ours:`).
#[must_use]
pub fn compare_cost_rows(paper: &PaperCostRow, ours: &CostRow) -> Vec<String> {
    vec![
        format!(
            "W={:<3} paper: l={:<4} {:>7.0}um^2 {:>5.1}% enc {:>5.2}mW dec {:>5.2}mW t={:>6.0}ns E={:>6.2}/{:<6.2}nJ",
            paper.chains,
            paper.chain_len,
            paper.area_um2,
            paper.overhead_pct,
            paper.enc_power_mw,
            paper.dec_power_mw,
            paper.latency_ns,
            paper.enc_energy_nj,
            paper.dec_energy_nj
        ),
        format!(
            "      ours:  l={:<4} {:>7.0}um^2 {:>5.1}% enc {:>5.2}mW dec {:>5.2}mW t={:>6.0}ns E={:>6.2}/{:<6.2}nJ",
            ours.chain_len,
            ours.area_um2,
            ours.overhead_pct,
            ours.enc_power_mw,
            ours.dec_power_mw,
            ours.latency_ns,
            ours.enc_energy_nj,
            ours.dec_energy_nj
        ),
    ]
}

/// Checks the qualitative *shape* agreement between a measured sweep and
/// the paper's sweep: monotonicity of latency/energy/area overhead in W.
/// Returns a list of human-readable violations (empty = shape holds).
#[must_use]
pub fn check_sweep_shape(paper: &[PaperCostRow], ours: &[CostRow]) -> Vec<String> {
    let mut violations = Vec::new();
    if paper.len() != ours.len() {
        violations.push(format!(
            "row count mismatch: paper {} vs ours {}",
            paper.len(),
            ours.len()
        ));
        return violations;
    }
    for (p, o) in paper.iter().zip(ours) {
        if p.chains != o.chains {
            violations.push(format!("W mismatch: {} vs {}", p.chains, o.chains));
        }
        if (p.latency_ns - o.latency_ns).abs() > 1e-6 {
            violations.push(format!(
                "W={}: latency {} != paper {} (l x T is exact)",
                p.chains, o.latency_ns, p.latency_ns
            ));
        }
    }
    for w in ours.windows(2) {
        if w[1].latency_ns >= w[0].latency_ns {
            violations.push("latency must fall with W".to_owned());
        }
        if w[1].enc_energy_nj >= w[0].enc_energy_nj {
            violations.push("encode energy must fall with W".to_owned());
        }
        if w[1].overhead_pct <= w[0].overhead_pct {
            violations.push("area overhead must grow with W".to_owned());
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanguard_harness::paper::TABLE1;

    fn fake_row(chains: usize, chain_len: usize, latency: f64, energy: f64, ovh: f64) -> CostRow {
        CostRow {
            code: "CRC-16".into(),
            chains,
            chain_len,
            area_um2: 80_000.0,
            overhead_pct: ovh,
            enc_power_mw: 5.0,
            dec_power_mw: 5.0,
            latency_ns: latency,
            enc_energy_nj: energy,
            dec_energy_nj: energy,
        }
    }

    #[test]
    fn shape_checker_accepts_paper_like_sweeps() {
        let ours: Vec<CostRow> = TABLE1
            .iter()
            .map(|p| {
                fake_row(
                    p.chains,
                    p.chain_len,
                    p.latency_ns,
                    p.enc_energy_nj,
                    p.overhead_pct,
                )
            })
            .collect();
        assert!(check_sweep_shape(&TABLE1, &ours).is_empty());
    }

    #[test]
    fn shape_checker_flags_inverted_trends() {
        let mut ours: Vec<CostRow> = TABLE1
            .iter()
            .map(|p| {
                fake_row(
                    p.chains,
                    p.chain_len,
                    p.latency_ns,
                    p.enc_energy_nj,
                    p.overhead_pct,
                )
            })
            .collect();
        ours[4].enc_energy_nj = 99.0;
        assert!(!check_sweep_shape(&TABLE1, &ours).is_empty());
    }

    #[test]
    fn env_scale_defaults() {
        assert_eq!(env_scale("DEFINITELY_UNSET_VAR_X", 7), 7);
    }

    #[test]
    fn compare_renders_both_lines() {
        let ours = fake_row(4, 260, 2600.0, 12.0, 3.0);
        let lines = compare_cost_rows(&TABLE1[0], &ours);
        assert!(lines[0].contains("paper:"));
        assert!(lines[1].contains("ours:"));
    }
}
