//! **Detection design-space ablation**: even parity vs. CRC-16 — two
//! detection-only monitors with opposite scaling. Parity stores one bit
//! per word per block (`W/4 x l` bits total = proportional to the state
//! size), while the wide-input CRC block stores a flat 32 bits and only
//! its XOR network grows with W. The crossover decides which detector a
//! given design should use — a point the paper's Sec. V design space
//! does not explore.
//!
//! Run: `cargo bench -p scanguard-bench --bench ablation_detection`

use scanguard_core::{measure_cost, CodeChoice, Synthesizer};
use scanguard_designs::Fifo;
use scanguard_harness::{print_table, PAPER_W_SWEEP};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("comparing detection-only monitors on the 32x32 FIFO...");
    let mut rows = Vec::new();
    let mut parity_overheads = Vec::new();
    let mut crc_overheads = Vec::new();
    for &w in &PAPER_W_SWEEP {
        let build = |code: CodeChoice| {
            let fifo = Fifo::generate(32, 32);
            let d = Synthesizer::new(fifo.netlist)
                .chains(w)
                .code(code)
                .build()
                .expect("synthesis");
            measure_cost(&d, w as u64)
        };
        let parity = build(CodeChoice::Parity { group_width: 4 });
        let crc = build(CodeChoice::Crc16);
        parity_overheads.push(parity.overhead_pct);
        crc_overheads.push(crc.overhead_pct);
        rows.push(format!(
            "W={:<3} l={:<4} parity: {:>5.1}% {:>5.2} mW   crc-16: {:>5.1}% {:>5.2} mW",
            w,
            parity.chain_len,
            parity.overhead_pct,
            parity.enc_power_mw,
            crc.overhead_pct,
            crc.enc_power_mw
        ));
    }
    print_table(
        "detection monitors: even parity (per-4-chain blocks) vs one wide CRC-16",
        "config      parity area/power        crc area/power",
        &rows,
    );

    // Shape: parity's overhead is ~constant in W (store = total bits / 4
    // regardless of W), CRC's grows mildly; parity detects only
    // odd-weight patterns while CRC catches bursts — so CRC wins overall
    // unless area at low W dominates all else.
    let mut ok = true;
    let parity_span = parity_overheads.iter().fold(f64::MIN, |a, &b| a.max(b))
        - parity_overheads.iter().fold(f64::MAX, |a, &b| a.min(b));
    if parity_span > 8.0 {
        println!("FAIL: parity store is W-invariant; overhead span {parity_span:.1} too wide");
        ok = false;
    }
    for w in crc_overheads.windows(2) {
        if w[1] <= w[0] {
            println!("FAIL: CRC overhead must grow with W");
            ok = false;
        }
    }
    println!(
        "reading: parity stores state/4 bits regardless of W ({:.1}%-ish flat); CRC stays\n\
         cheaper at every paper configuration AND detects even-weight bursts —\n\
         which is why the paper's detector is CRC-16.",
        parity_overheads[0]
    );
    println!("shape check: {}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
