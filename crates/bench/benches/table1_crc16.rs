//! **Table I reproduction**: encoding/decoding circuit area overhead,
//! power, latency and energy for CRC-16 across scan-chain
//! configurations W in {4, 8, 16, 40, 80} on the 32x32 FIFO.
//!
//! Run: `cargo bench -p scanguard-bench --bench table1_crc16`

use scanguard_bench::{check_sweep_shape, compare_cost_rows};
use scanguard_harness::paper::TABLE1;
use scanguard_harness::{print_table, table1};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("measuring Table I (CRC-16 sweep on the 32x32 FIFO)...");
    let rows = table1();
    let mut rendered = Vec::new();
    for (paper, ours) in TABLE1.iter().zip(&rows) {
        rendered.extend(compare_cost_rows(paper, ours));
    }
    print_table(
        "Table I — 32x32 FIFO, CRC-16, 100 MHz (paper: ST 120nm / ours: calibrated 120nm-class)",
        "rows alternate paper / measured",
        &rendered,
    );
    let violations = check_sweep_shape(&TABLE1, &rows);
    if violations.is_empty() {
        println!("shape check: PASS (latency/energy fall with W, overhead grows)");
    } else {
        println!("shape check: FAIL");
        for v in &violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
