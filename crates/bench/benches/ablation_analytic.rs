//! **Design-decision ablation**: costs from *constructed gates* (the
//! default, DESIGN.md decision 1) versus the closed-form analytic model
//! — quantifying how much a formula-only evaluation would miss.
//!
//! Run: `cargo bench -p scanguard-bench --bench ablation_analytic`

use scanguard_core::{analytic_cost, CodeChoice, Synthesizer};
use scanguard_designs::Fifo;
use scanguard_harness::{print_table, PAPER_W_SWEEP};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("comparing constructed vs analytic monitor area on the 32x32 FIFO...");
    let mut rows = Vec::new();
    let mut worst_ratio: f64 = 1.0;
    for code in [CodeChoice::crc16(), CodeChoice::hamming7_4()] {
        for &w in &PAPER_W_SWEEP {
            let fifo = Fifo::generate(32, 32);
            let design = Synthesizer::new(fifo.netlist)
                .chains(w)
                .code(code)
                .build()
                .expect("synthesis");
            let constructed = design.protected.total_area_um2 - design.baseline.total_area_um2;
            let analytic = analytic_cost(1040, w, code, &design.library, 100.0);
            let ratio = analytic.monitor_area_um2 / constructed;
            worst_ratio = worst_ratio.max(ratio.max(1.0 / ratio));
            rows.push(format!(
                "{:<13} W={:<3} constructed {:>8.0} um^2   analytic {:>8.0} um^2   ratio {:>5.2}",
                code.name(),
                w,
                constructed,
                analytic.monitor_area_um2,
                ratio
            ));
        }
    }
    print_table(
        "constructed-gates vs closed-form monitor area",
        "code          W    constructed            analytic             ratio",
        &rows,
    );
    println!("worst-case disagreement: x{worst_ratio:.2}");
    let ok = worst_ratio < 2.0;
    println!(
        "shape check: {} (analytic tracks construction within 2x; the\n\
         constructed number is authoritative because it prices every real\n\
         gate: sequencers, syndrome cones, feedback XORs, mode muxes)",
        if ok { "PASS" } else { "FAIL" }
    );
    if !ok {
        std::process::exit(1);
    }
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
