//! **Table II reproduction**: the same sweep as Table I with
//! Hamming(7,4) correction instead of CRC-16 detection.
//!
//! Run: `cargo bench -p scanguard-bench --bench table2_hamming74`

use scanguard_bench::{check_sweep_shape, compare_cost_rows};
use scanguard_harness::paper::{TABLE1, TABLE2};
use scanguard_harness::{print_table, table1, table2};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("measuring Table II (Hamming(7,4) sweep on the 32x32 FIFO)...");
    let rows = table2();
    let mut rendered = Vec::new();
    for (paper, ours) in TABLE2.iter().zip(&rows) {
        rendered.extend(compare_cost_rows(paper, ours));
    }
    print_table(
        "Table II — 32x32 FIFO, Hamming(7,4), 100 MHz",
        "rows alternate paper / measured",
        &rendered,
    );
    let violations = check_sweep_shape(&TABLE2, &rows);
    if !violations.is_empty() {
        println!("shape check: FAIL");
        for v in &violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
    // Cross-table relation the paper highlights: Hamming costs far more
    // area than CRC but only 20-40% more power (scan switching is the
    // common dominant term).
    println!("cross-checking against Table I (CRC-16)...");
    let crc = table1();
    let mut relation_ok = true;
    for (h, c) in rows.iter().zip(&crc) {
        let area_ratio = h.overhead_pct / c.overhead_pct.max(1e-9);
        let power_ratio = h.enc_power_mw / c.enc_power_mw;
        println!(
            "  W={:<3} overhead x{:.1}, power x{:.2} (paper: x{:.1} / x{:.2})",
            h.chains,
            area_ratio,
            power_ratio,
            TABLE2[0].overhead_pct / TABLE1[0].overhead_pct,
            TABLE2[0].enc_power_mw / TABLE1[0].enc_power_mw
        );
        if h.overhead_pct <= c.overhead_pct || power_ratio <= 1.0 {
            relation_ok = false;
        }
    }
    println!("shape check: {}", if relation_ok { "PASS" } else { "FAIL" });
    if !relation_ok {
        std::process::exit(1);
    }
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
