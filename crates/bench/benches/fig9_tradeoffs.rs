//! **Fig. 9 reproduction**: the trade-off curves derived from Tables
//! I/II — (a) area overhead and coding power vs. number of scan chains,
//! (b) latency and energy vs. number of scan chains, for CRC-16 and
//! Hamming(7,4).
//!
//! Run: `cargo bench -p scanguard-bench --bench fig9_tradeoffs`

use scanguard_harness::paper::{TABLE1, TABLE2};
use scanguard_harness::{print_table, table1, table2};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("measuring Fig. 9 series (both sweeps)...");
    let crc = table1();
    let ham = table2();

    // (a) area overhead % and coding power vs W.
    let mut a = Vec::new();
    a.push(format!(
        "{:>3} | {:>9} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
        "W", "crc%", "crc% (p)", "ham%", "ham% (p)", "crc mW", "crc (p)", "ham mW", "ham (p)"
    ));
    for i in 0..crc.len() {
        a.push(format!(
            "{:>3} | {:>9.1} {:>9.1} {:>9.1} {:>9.1} | {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            crc[i].chains,
            crc[i].overhead_pct,
            TABLE1[i].overhead_pct,
            ham[i].overhead_pct,
            TABLE2[i].overhead_pct,
            crc[i].enc_power_mw,
            TABLE1[i].enc_power_mw,
            ham[i].enc_power_mw,
            TABLE2[i].enc_power_mw
        ));
    }
    print_table(
        "Fig. 9(a) — area overhead and coding power vs number of scan chains ((p) = paper)",
        "",
        &a,
    );

    // (b) latency and energy vs W.
    let mut b = Vec::new();
    b.push(format!(
        "{:>3} | {:>9} {:>9} | {:>9} {:>9} {:>9} {:>9}",
        "W", "t(ns)", "t (p)", "crc nJ", "crc (p)", "ham nJ", "ham (p)"
    ));
    for i in 0..crc.len() {
        b.push(format!(
            "{:>3} | {:>9.0} {:>9.0} | {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            crc[i].chains,
            crc[i].latency_ns,
            TABLE1[i].latency_ns,
            crc[i].enc_energy_nj,
            TABLE1[i].enc_energy_nj,
            ham[i].enc_energy_nj,
            TABLE2[i].enc_energy_nj
        ));
    }
    print_table(
        "Fig. 9(b) — latency and coding energy vs number of scan chains ((p) = paper)",
        "",
        &b,
    );

    // Shape assertions from the paper's reading of Fig. 9:
    // latency identical for both codes; Hamming energy 20-40%+ above
    // CRC; both fall steeply with W.
    let mut ok = true;
    for i in 0..crc.len() {
        if (crc[i].latency_ns - ham[i].latency_ns).abs() > 1e-9 {
            println!("FAIL: latency depends only on chain length");
            ok = false;
        }
        if ham[i].enc_energy_nj <= crc[i].enc_energy_nj {
            println!("FAIL: Hamming coding energy must exceed CRC");
            ok = false;
        }
    }
    let latency_drop = crc[0].latency_ns / crc.last().unwrap().latency_ns;
    println!("latency drop W=4 -> W=80: x{latency_drop:.0} (paper: x20)");
    if (latency_drop - 20.0).abs() > 1e-6 {
        ok = false;
    }
    println!("shape check: {}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
