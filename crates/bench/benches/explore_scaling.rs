//! Thread-scaling of the design-space explorer: the same space at 1, 2,
//! 4 and 8 workers. The work list is dominated by synthesis, which the
//! cache dedups to one build per `(W, code)`, so the curve shows how
//! well the work-stealing pool packs unequal build times. (On a
//! single-core host the curve is flat — the pool can only trade
//! context switches, not add throughput.)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scanguard_explore::{explore, DesignSpec, SpaceSpec};

fn spec() -> SpaceSpec {
    let mut spec = SpaceSpec::paper(DesignSpec::Fifo {
        depth: 32,
        width: 32,
    });
    spec.trials = 100;
    spec
}

fn bench_explore_scaling(c: &mut Criterion) {
    let spec = spec();
    let points = spec.enumerate().len() as u64;
    let mut group = c.benchmark_group("explore_scaling");
    group.throughput(Throughput::Elements(points));
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(&format!("threads/{threads}"), |b| {
            b.iter(|| explore(&spec, threads).expect("explore"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_explore_scaling);
criterion_main!(benches);
