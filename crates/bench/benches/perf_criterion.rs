//! Criterion micro-benchmarks of the substrate itself: code throughput,
//! simulator cycle rate and full protect/sleep/wake latency. These do
//! not reproduce a paper figure; they quantify the reproduction's own
//! performance.
//!
//! Run: `cargo bench -p scanguard-bench --bench perf_criterion`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use scanguard_codes::{BlockCode, Crc, Hamming, SequenceCodec};
use scanguard_core::{CodeChoice, Synthesizer};
use scanguard_designs::Fifo;
use scanguard_netlist::{CellLibrary, Logic};
use scanguard_sim::Simulator;

fn bench_codes(c: &mut Criterion) {
    let mut g = c.benchmark_group("codes");
    let code = Hamming::h7_4();
    g.throughput(Throughput::Elements(1));
    g.bench_function("hamming7_4_encode", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37);
            code.encode(x & 0xF)
        });
    });
    g.bench_function("hamming7_4_correct", |b| {
        let parity = code.encode(0b1010);
        b.iter(|| code.correct(std::hint::black_box(0b1011), parity));
    });
    let crc = Crc::crc16_ccitt();
    let bits: Vec<bool> = (0..1000).map(|i| i % 3 == 0).collect();
    g.throughput(Throughput::Elements(1000));
    g.bench_function("crc16_1000_bits", |b| {
        b.iter(|| crc.checksum_bits(std::hint::black_box(&bits)));
    });
    let codec = SequenceCodec::new(Box::new(Hamming::h7_4()));
    g.bench_function("sequence_protect_1000_bits", |b| {
        b.iter(|| codec.protect(std::hint::black_box(&bits)));
    });
    let parities = codec.protect(&bits);
    g.bench_function("sequence_recover_1000_bits", |b| {
        b.iter_batched(
            || bits.clone(),
            |mut seq| codec.recover(&mut seq, &parities),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    let fifo = Fifo::generate(32, 32);
    let lib = CellLibrary::st120nm();
    let nl = fifo.netlist.clone();
    g.throughput(Throughput::Elements(nl.cell_count() as u64));
    g.bench_function("fifo32x32_step", |b| {
        let mut sim = Simulator::new(&nl, &lib);
        sim.set_port("rst", Logic::One).unwrap();
        sim.set_port("wr_en", Logic::Zero).unwrap();
        sim.set_port("rd_en", Logic::Zero).unwrap();
        for i in 0..32 {
            sim.set_port(&format!("din[{i}]"), Logic::Zero).unwrap();
        }
        sim.step();
        sim.set_port("rst", Logic::Zero).unwrap();
        b.iter(|| sim.step());
    });
    g.finish();
}

fn bench_flow(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow");
    g.sample_size(10);
    g.bench_function("synthesize_fifo32x32_hamming_w80", |b| {
        b.iter_batched(
            || Fifo::generate(32, 32).netlist,
            |nl| {
                Synthesizer::new(nl)
                    .chains(80)
                    .code(CodeChoice::hamming7_4())
                    .build()
                    .expect("synthesis")
            },
            BatchSize::LargeInput,
        );
    });
    let fifo = Fifo::generate(32, 32);
    let design = Synthesizer::new(fifo.netlist)
        .chains(80)
        .code(CodeChoice::hamming7_4())
        .build()
        .expect("synthesis");
    g.bench_function("sleep_wake_cycle_fifo32x32_w80", |b| {
        let mut rt = design.runtime();
        rt.load_random_state(1);
        b.iter(|| rt.sleep_wake(|_, _| 0));
    });
    g.finish();
}

criterion_group!(benches, bench_codes, bench_simulator, bench_flow);
criterion_main!(benches);
