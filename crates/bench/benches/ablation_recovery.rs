//! **E9 ablation**: hardware in-stream correction (Hamming monitor)
//! versus CRC-16 detection with software checkpoint reload through the
//! manufacturing-test pins — the paper's Sec. V closing alternative
//! ("if large area overhead is not acceptable then the approach of CRC
//! error detection with software recovery may be considered"),
//! quantified on the 32x32 FIFO.
//!
//! Run: `cargo bench -p scanguard-bench --bench ablation_recovery`

use scanguard_harness::{ablation_recovery, print_table};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("comparing recovery schemes on the 32x32 FIFO (80 chains, 4 test pins)...");
    let rows = ablation_recovery(32, 32, 80, 4);
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{:<34} {:>8.1} {:>9} {:>10.2} {:>10} {:>11.1}",
                r.scheme,
                r.monitor_overhead_pct,
                r.recovery_cycles,
                r.recovery_energy_nj,
                r.recovered,
                r.break_even_us
            )
        })
        .collect();
    print_table(
        "E9 — recovery schemes (single retention upset)",
        &format!(
            "{:<34} {:>8} {:>9} {:>10} {:>10} {:>11}",
            "scheme", "area%", "cycles", "energy nJ", "recovered", "brk-even us"
        ),
        &rendered,
    );

    let hw = &rows[0];
    let sw = &rows[1];
    let mut ok = true;
    if !(hw.recovered && sw.recovered) {
        println!("FAIL: both schemes must recover a single upset");
        ok = false;
    }
    if hw.monitor_overhead_pct <= sw.monitor_overhead_pct {
        println!("FAIL: hardware correction must cost more area");
        ok = false;
    }
    if sw.recovery_cycles <= hw.recovery_cycles {
        println!("FAIL: software reload must cost more latency");
        ok = false;
    }
    println!(
        "reading: the software path saves {:.0} area points and pays x{:.0} recovery latency —\n\
         the trade the paper describes qualitatively in Sec. V.",
        hw.monitor_overhead_pct - sw.monitor_overhead_pct,
        sw.recovery_cycles as f64 / hw.recovery_cycles.max(1) as f64
    );
    println!("shape check: {}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
