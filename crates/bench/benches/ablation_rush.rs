//! **E7 ablation**: rush-current reduction techniques (paper refs [7]
//! and [8]) versus the proposed scan-based monitoring, over Monte-Carlo
//! wake events on the paper's 80x13 retention array.
//!
//! The paper's Sec. I argument, quantified: reduction techniques lower
//! the *probability* of upsets but cannot repair the ones that still
//! happen; monitoring adds wake latency but recovers the state.
//!
//! Trials scale with `SCANGUARD_RUSH_TRIALS` (default 2000).
//!
//! Run: `cargo bench -p scanguard-bench --bench ablation_rush`

use scanguard_bench::env_scale;
use scanguard_harness::{ablation_rush, print_table};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let trials = env_scale("RUSH_TRIALS", 2000);
    println!("running rush-current ablation: {trials} wake events per strategy...");
    let rows = ablation_rush(80, 13, trials, 0xE7);
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{:<32} {:>8.3} {:>8} {:>9.3} {:>10.3}",
                r.strategy, r.peak_bounce_v, r.wake_cycles, r.upset_prob, r.residual_prob
            )
        })
        .collect();
    print_table(
        "E7 — wake strategies vs proposed monitoring (80x13 retention array)",
        &format!(
            "{:<32} {:>8} {:>8} {:>9} {:>10}",
            "strategy", "bounceV", "cycles", "P(upset)", "P(corrupt)"
        ),
        &rendered,
    );

    let by = |n: &str| {
        rows.iter()
            .find(|r| r.strategy.starts_with(n))
            .expect("row")
    };
    let full = by("full-bank");
    let stag8 = by("staggered x8 [");
    let proposed = by("full-bank + monitor");
    let mut ok = true;
    if stag8.peak_bounce_v >= full.peak_bounce_v {
        println!("FAIL: staggering must reduce bounce");
        ok = false;
    }
    if proposed.residual_prob >= full.residual_prob {
        println!("FAIL: monitoring must reduce residual corruption");
        ok = false;
    }
    if (full.residual_prob - full.upset_prob).abs() > 1e-12 {
        println!("FAIL: without monitoring, every upset stays");
        ok = false;
    }
    if proposed.wake_cycles <= full.wake_cycles {
        println!("FAIL: monitoring must cost decode latency");
        ok = false;
    }
    println!("shape check: {}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
