//! **E8 ablation**: plain Hamming vs. extended Hamming (SEC-DED) under
//! the same-word double errors that defeat Sec. IV's experiment 2 —
//! plain Hamming frequently *miscorrects* (adds a third wrong bit),
//! SEC-DED never does.
//!
//! Trials scale with `SCANGUARD_SECDED_TRIALS` (default 100,000).
//!
//! Run: `cargo bench -p scanguard-bench --bench ablation_secded`

use scanguard_bench::env_scale;
use scanguard_harness::{ablation_secded, print_table};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let trials = env_scale("SECDED_TRIALS", 100_000);
    println!("running SEC-DED ablation: {trials} same-word double errors per code...");
    let rows = ablation_secded(trials, 0xE8);
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{:<18} {:>14.3} {:>16.3}",
                r.code, r.avg_residual_bits, r.miscorrection_rate
            )
        })
        .collect();
    print_table(
        "E8 — double-error behaviour: plain vs extended Hamming",
        &format!(
            "{:<18} {:>14} {:>16}",
            "code", "residual bits", "P(miscorrect)"
        ),
        &rendered,
    );
    let plain = &rows[0];
    let ext = &rows[1];
    let mut ok = true;
    if ext.miscorrection_rate != 0.0 {
        println!("FAIL: SEC-DED must never miscorrect a double");
        ok = false;
    }
    if plain.miscorrection_rate <= 0.2 {
        println!("FAIL: plain Hamming should miscorrect a large share of doubles");
        ok = false;
    }
    if ext.avg_residual_bits > 2.0 {
        println!("FAIL: SEC-DED leaves exactly the injected bits");
        ok = false;
    }
    println!(
        "reading: upgrading the monitor to SEC-DED costs one extra parity row per block\n\
         but turns the paper's 'burst errors corrupt additional state via miscorrection'\n\
         failure mode into clean detection."
    );
    println!("shape check: {}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
