//! Thread- and engine-scaling of the fault-dropping stuck-at fault
//! simulator: the same fault sample at 1, 2, 4 and 8 workers, for both
//! the scalar engine (one simulator per fault) and the bit-parallel
//! wide engine (63 faults per 64-lane simulator word). Each fault is an
//! independent simulation, and fault dropping makes the per-fault cost
//! wildly unequal (a blatant fault stops after one pattern; an
//! undetected one runs the full set), so the thread curve shows how
//! well the work-stealing pool packs the skewed queue, while the
//! scalar-vs-wide gap at equal thread count is the PPSFP payoff. (On a
//! single-core host the thread curves are flat; the engine gap is not.)

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use scanguard_designs::Fifo;
use scanguard_dft::{
    enumerate_faults, fault_coverage, insert_scan, FaultSimConfig, FaultSimEngine, ScanAccess,
    ScanConfig,
};
use scanguard_netlist::CellLibrary;

fn bench_faultsim_scaling(c: &mut Criterion) {
    let fifo = Fifo::generate(16, 16);
    let mut nl = fifo.netlist;
    let chains = insert_scan(&mut nl, &ScanConfig::with_chains(16)).expect("scan insertion");
    let lib = CellLibrary::st120nm();
    let faults = enumerate_faults(&nl);
    let sample = 64usize.min(faults.len());

    let mut group = c.benchmark_group("faultsim_scaling");
    group.throughput(Throughput::Elements(sample as u64));
    group.sample_size(10);
    for engine in [FaultSimEngine::Scalar, FaultSimEngine::Wide] {
        for threads in [1usize, 2, 4, 8] {
            let cfg = FaultSimConfig {
                patterns: 8,
                max_faults: Some(sample),
                threads,
                engine,
                ..FaultSimConfig::default()
            };
            group.bench_function(&format!("{}/threads/{threads}", engine.name()), |b| {
                b.iter(|| {
                    fault_coverage(&nl, ScanAccess::Direct(&chains), &lib, &faults, &cfg)
                        .expect("fault simulation")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_faultsim_scaling);
criterion_main!(benches);
