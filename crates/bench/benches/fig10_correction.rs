//! **Fig. 10 reproduction**: error-correction ability of the four
//! Hamming codes when 1..=10 errors are injected into 1000-bit test
//! sequences (the paper simulated one million sequences; scale ours with
//! `SCANGUARD_FIG10_SEQS`, default 50,000 per point).
//!
//! Run: `cargo bench -p scanguard-bench --bench fig10_correction`

use scanguard_bench::env_scale;
use scanguard_harness::paper::FIG10_ANCHORS;
use scanguard_harness::{fig10_family, print_table, Fig10Config};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let sequences = env_scale("FIG10_SEQS", 50_000);
    println!("running Fig. 10 Monte-Carlo: 4 codes x 10 error counts x {sequences} sequences...");
    let cfg = Fig10Config {
        sequences,
        ..Fig10Config::default()
    };
    let family = fig10_family(&cfg);

    let mut rows = Vec::new();
    let header = {
        let mut h = format!("{:<16}", "injected");
        for k in 1..=10 {
            h.push_str(&format!("{k:>7}"));
        }
        h
    };
    for (name, pts) in &family {
        let mut line = format!("{name:<16}");
        for p in pts {
            line.push_str(&format!("{:>7.2}", p.corrected_pct));
        }
        rows.push(line);
    }
    print_table(
        "Fig. 10 — % errors corrected vs injected errors per 1000-bit sequence",
        &header,
        &rows,
    );

    println!("paper anchor points:");
    let mut ok = true;
    for (code, injected, paper_pct) in FIG10_ANCHORS {
        let ours = family
            .iter()
            .find(|(n, _)| n == code)
            .and_then(|(_, pts)| pts.iter().find(|p| p.injected == injected))
            .expect("anchor point measured");
        println!(
            "  {code} @ {injected} errors: paper {paper_pct:.2}%, ours {:.2}%",
            ours.corrected_pct
        );
        // Shape tolerance: within 12 percentage points of the paper
        // (the paper's injection details — burstiness, counting — are
        // under-specified; ordering matters more than magnitude).
        if (ours.corrected_pct - paper_pct).abs() > 12.0 {
            println!("    WARN: deviation exceeds 12 points");
        }
    }
    // Hard shape requirements: family ordering at every error count and
    // monotone decrease.
    for k in 0..10 {
        let col: Vec<f64> = family.iter().map(|(_, pts)| pts[k].corrected_pct).collect();
        if !(col[0] >= col[1] && col[1] >= col[2] && col[2] >= col[3]) {
            println!(
                "FAIL: family ordering violated at {} errors: {col:?}",
                k + 1
            );
            ok = false;
        }
    }
    for (name, pts) in &family {
        if pts[0].corrected_pct < 99.999 {
            println!("FAIL: {name} must correct 100% of single errors");
            ok = false;
        }
        if pts[9].corrected_pct > pts[1].corrected_pct {
            println!("FAIL: {name} correction must degrade with error count");
            ok = false;
        }
    }
    println!("shape check: {}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
