//! **Sec. IV validation reproduction**: the Fig. 8 testbench on the
//! 32x32 FIFO with 80 chains of 13 — experiment 1 (single errors:
//! 100% detected and corrected, zero comparator mismatches) and
//! experiment 2 (clustered multi-errors: detected, not corrected by
//! plain Hamming; CRC-16 detects everything).
//!
//! Sequences per experiment scale with `SCANGUARD_SEC4_SEQS`
//! (default 40; the paper ran 1e8 on FPGA).
//!
//! Run: `cargo bench -p scanguard-bench --bench validation_sec4`

use scanguard_bench::env_scale;
use scanguard_harness::{print_table, validation};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let sequences = env_scale("SEC4_SEQS", 40);
    println!("running Sec. IV validation on the 32x32 FIFO, 80 chains, {sequences} sequences per experiment...");
    let runs = validation(32, 32, 80, sequences);

    let fmt = |name: &str, s: &scanguard_harness::ValidationStats| {
        format!(
            "{name:<28} seq={:<5} inj={:<5} reported={:<5} corrected={:<5} mismatches={}",
            s.sequences,
            s.injected_bits,
            s.errors_reported,
            s.sequences_recovered,
            s.comparator_mismatches
        )
    };
    print_table(
        "Sec. IV — Fig. 8 testbench (paper: 1e8 FPGA sequences; outcomes are structural)",
        "experiment                    results",
        &[
            fmt("1: Hamming, single error", &runs.hamming_single),
            fmt("2: Hamming, burst errors", &runs.hamming_burst),
            fmt("2b: CRC-16, burst errors", &runs.crc_burst),
        ],
    );

    let mut ok = true;
    let s = &runs.hamming_single;
    if s.errors_reported != s.sequences || s.sequences_recovered != s.sequences {
        println!("FAIL: experiment 1 must detect and correct every single error");
        ok = false;
    }
    if s.comparator_mismatches != 0 {
        println!("FAIL: experiment 1 comparator must never fire");
        ok = false;
    }
    let b = &runs.hamming_burst;
    if b.sequences_recovered >= b.sequences / 2 {
        println!("FAIL: experiment 2 bursts must defeat plain Hamming correction");
        ok = false;
    }
    let c = &runs.crc_burst;
    if c.errors_reported != c.sequences {
        println!("FAIL: CRC-16 must detect every burst");
        ok = false;
    }
    println!(
        "paper: 'all injected single errors are corrected and all multiple errors are accurately detected'"
    );
    println!("shape check: {}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
