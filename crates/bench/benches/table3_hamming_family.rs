//! **Table III reproduction**: area overhead and power of the Hamming
//! code family — (7,4), (15,11), (31,26), (63,57) — each with the
//! paper's matched chain count (56, 55, 52, 57) on the 32x32 FIFO.
//!
//! Run: `cargo bench -p scanguard-bench --bench table3_hamming_family`

use scanguard_harness::paper::TABLE3;
use scanguard_harness::{print_table, table3};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("measuring Table III (Hamming family on the 32x32 FIFO)...");
    let rows = table3();
    let mut rendered = Vec::new();
    for (paper, ours) in TABLE3.iter().zip(&rows) {
        rendered.push(format!(
            "{:<15} W={:<3} paper: {:>7.0}um^2 {:>5.1}% enc {:>4.2}mW dec {:>4.2}mW cap {:>5.2}%",
            paper.code,
            paper.chains,
            paper.total_area_um2,
            paper.overhead_pct,
            paper.enc_power_mw,
            paper.dec_power_mw,
            paper.capability_pct
        ));
        rendered.push(format!(
            "{:<15}       ours:  {:>7.0}um^2 {:>5.1}% enc {:>4.2}mW dec {:>4.2}mW cap {:>5.2}%",
            "",
            ours.total_area_um2,
            ours.overhead_pct,
            ours.enc_power_mw,
            ours.dec_power_mw,
            ours.capability_pct
        ));
    }
    print_table(
        "Table III — Hamming code family, 32x32 FIFO, 100 MHz",
        "rows alternate paper / measured",
        &rendered,
    );

    // Shape: overhead and capability strictly decreasing down the
    // family; capability column matches the paper exactly (1/n).
    let mut ok = true;
    for w in rows.windows(2) {
        if w[1].overhead_pct >= w[0].overhead_pct {
            println!("FAIL: overhead must fall down the family");
            ok = false;
        }
        if w[1].enc_power_mw >= w[0].enc_power_mw {
            println!("FAIL: encode power must fall down the family");
            ok = false;
        }
    }
    for (p, o) in TABLE3.iter().zip(&rows) {
        if (p.capability_pct - o.capability_pct).abs() > 0.05 {
            println!(
                "FAIL: capability {} vs paper {}",
                o.capability_pct, p.capability_pct
            );
            ok = false;
        }
    }
    let reduction_ours = rows[0].overhead_pct / rows[3].overhead_pct;
    let reduction_paper = TABLE3[0].overhead_pct / TABLE3[3].overhead_pct;
    println!("overhead span (7,4)/(63,57): ours x{reduction_ours:.1}, paper x{reduction_paper:.1}");
    println!("shape check: {}", if ok { "PASS" } else { "FAIL" });
    if !ok {
        std::process::exit(1);
    }
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
