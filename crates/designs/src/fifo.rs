//! The paper's case-study circuit: a `depth x width` synchronous FIFO.
//!
//! The paper validates on a 32x32-bit FIFO "because it has high density
//! of flip-flops and no error masking": 1024 storage flops plus two
//! pointers and an occupancy counter — 1040 flip-flops, matching the
//! 80-chains-of-13 configuration of Sec. IV.
//!
//! The generator emits a flat gate-level netlist: registered circular
//! buffer, one-hot write-row decode, a read mux tree, and `full`/`empty`
//! derived from the counter. A cycle-exact software [`FifoModel`] golden
//! reference is provided for testbenches (the role FIFO_B plays in the
//! paper's Fig. 8).

use crate::arith::{decrementer, equals_const, incrementer, is_zero, mux_bus, mux_tree};
use scanguard_netlist::{CellId, NetId, Netlist, NetlistBuilder};
use std::collections::VecDeque;

/// A generated FIFO netlist plus its interesting cell groups.
///
/// Ports: `rst`, `wr_en`, `rd_en`, `din[width]` inputs; `dout[width]`,
/// `full`, `empty` outputs. Writes and reads are gated internally against
/// `full`/`empty`, and `dout` combinationally shows the head entry.
///
/// # Examples
///
/// ```
/// use scanguard_designs::Fifo;
///
/// let fifo = Fifo::generate(32, 32);
/// assert_eq!(fifo.netlist.ff_count(), 1040); // the paper's flop count
/// ```
#[derive(Debug, Clone)]
pub struct Fifo {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Number of entries (power of two).
    pub depth: usize,
    /// Bits per entry.
    pub width: usize,
    /// Storage flops, row-major (`storage[r * width + c]`).
    pub storage_cells: Vec<CellId>,
    /// Pointer and counter flops (write ptr, read ptr, count; LSB first
    /// within each group).
    pub control_cells: Vec<CellId>,
}

impl Fifo {
    /// Generates a `depth x width` FIFO.
    ///
    /// # Panics
    ///
    /// Panics unless `depth` is a power of two `>= 2` and `width >= 1`.
    #[must_use]
    pub fn generate(depth: usize, width: usize) -> Self {
        assert!(
            depth.is_power_of_two() && depth >= 2,
            "depth must be a power of two >= 2"
        );
        assert!(width >= 1, "width must be at least 1");
        let ptr_bits = depth.trailing_zeros() as usize;
        let cnt_bits = ptr_bits + 1;

        let mut b = NetlistBuilder::new(&format!("fifo{depth}x{width}"));
        let rst = b.input("rst");
        let wr_en = b.input("wr_en");
        let rd_en = b.input("rd_en");
        let din = b.input_bus("din", width);

        // State registers with pre-declared d nets (closed below).
        let reg_group = |b: &mut NetlistBuilder, name: &str, bits: usize| {
            let mut ds = Vec::with_capacity(bits);
            let mut qs = Vec::with_capacity(bits);
            let mut cells = Vec::with_capacity(bits);
            for i in 0..bits {
                let d = b.net(&format!("{name}_d{i}"));
                let (q, cell) = b.dff(&format!("{name}{i}"), d);
                ds.push(d);
                qs.push(q);
                cells.push(cell);
            }
            (ds, qs, cells)
        };
        let (wr_ds, wr_qs, wr_cells) = reg_group(&mut b, "wr_ptr", ptr_bits);
        let (rd_ds, rd_qs, rd_cells) = reg_group(&mut b, "rd_ptr", ptr_bits);
        let (cnt_ds, cnt_qs, cnt_cells) = reg_group(&mut b, "count", cnt_bits);

        let mut storage_cells = Vec::with_capacity(depth * width);
        let mut storage_qs = vec![Vec::with_capacity(width); depth];
        let mut storage_ds = vec![Vec::with_capacity(width); depth];
        for r in 0..depth {
            for c in 0..width {
                let d = b.net(&format!("mem{r}_{c}_d"));
                let (q, cell) = b.dff(&format!("mem{r}_{c}"), d);
                storage_ds[r].push(d);
                storage_qs[r].push(q);
                storage_cells.push(cell);
            }
        }

        // Status flags.
        let full = equals_const(&mut b, &cnt_qs, depth);
        let empty = is_zero(&mut b, &cnt_qs);
        let not_full = b.not(full);
        let not_empty = b.not(empty);
        let do_write = b.and2(wr_en, not_full);
        let do_read = b.and2(rd_en, not_empty);

        // Pointer updates: rst ? 0 : (advance ? ptr+1 : ptr).
        let zero = b.tie_lo();
        let ptr_update = |b: &mut NetlistBuilder, qs: &[NetId], adv: NetId, ds: &[NetId]| {
            let inc = incrementer(b, qs);
            let stepped = mux_bus(b, adv, qs, &inc);
            let zeros = vec![zero; qs.len()];
            let next = mux_bus(b, rst, &stepped, &zeros);
            for (&d, &n) in ds.iter().zip(&next) {
                b.connect(d, n);
            }
        };
        ptr_update(&mut b, &wr_qs, do_write, &wr_ds);
        ptr_update(&mut b, &rd_qs, do_read, &rd_ds);

        // Count update: +1 on write-only, -1 on read-only, else hold.
        let n_read = b.not(do_read);
        let n_write = b.not(do_write);
        let wr_only = b.and2(do_write, n_read);
        let rd_only = b.and2(do_read, n_write);
        let cnt_inc = incrementer(&mut b, &cnt_qs);
        let cnt_dec = decrementer(&mut b, &cnt_qs);
        let after_rd = mux_bus(&mut b, rd_only, &cnt_qs, &cnt_dec);
        let after_wr = mux_bus(&mut b, wr_only, &after_rd, &cnt_inc);
        let cnt_zeros = vec![zero; cnt_bits];
        let cnt_next = mux_bus(&mut b, rst, &after_wr, &cnt_zeros);
        for (&d, &n) in cnt_ds.iter().zip(&cnt_next) {
            b.connect(d, n);
        }

        // Storage: write-row decode + per-cell hold/load mux.
        for r in 0..depth {
            let sel = equals_const(&mut b, &wr_qs, r);
            let row_wr = b.and2(do_write, sel);
            for c in 0..width {
                let next = b.mux2(row_wr, storage_qs[r][c], din[c]);
                b.connect(storage_ds[r][c], next);
            }
        }

        // Read port: width mux trees over the rows.
        let mut dout = Vec::with_capacity(width);
        for c in 0..width {
            let column: Vec<NetId> = (0..depth).map(|r| storage_qs[r][c]).collect();
            dout.push(mux_tree(&mut b, &rd_qs, &column));
        }

        b.output_bus("dout", &dout);
        b.output("full", full);
        b.output("empty", empty);

        let netlist = b.finish().expect("generated FIFO must be well-formed");
        let control_cells = wr_cells
            .into_iter()
            .chain(rd_cells)
            .chain(cnt_cells)
            .collect();
        Fifo {
            netlist,
            depth,
            width,
            storage_cells,
            control_cells,
        }
    }
}

/// Cycle-exact golden model of [`Fifo`] — the error-free reference FIFO_B
/// of the paper's testbench (Fig. 8).
///
/// # Examples
///
/// ```
/// use scanguard_designs::FifoModel;
///
/// let mut m = FifoModel::new(4, 8);
/// m.tick(false, true, false, 0xAB);
/// assert_eq!(m.dout(), Some(0xAB));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoModel {
    depth: usize,
    width: usize,
    entries: VecDeque<u64>,
}

impl FifoModel {
    /// An empty model FIFO.
    ///
    /// # Panics
    ///
    /// Panics unless `depth >= 2` and `1 <= width <= 64`.
    #[must_use]
    pub fn new(depth: usize, width: usize) -> Self {
        assert!(depth >= 2, "depth must be at least 2");
        assert!((1..=64).contains(&width), "width must be 1..=64");
        FifoModel {
            depth,
            width,
            entries: VecDeque::new(),
        }
    }

    /// `true` when no entries are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when `depth` entries are held.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.depth
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The head entry (what `dout` shows), or `None` when empty.
    #[must_use]
    pub fn dout(&self) -> Option<u64> {
        self.entries.front().copied()
    }

    /// Advances one clock with the given controls. Returns the value a
    /// simultaneous read consumed, if any. Writes beyond full and reads
    /// beyond empty are ignored, matching the netlist's internal gating.
    pub fn tick(&mut self, rst: bool, wr_en: bool, rd_en: bool, din: u64) -> Option<u64> {
        if rst {
            self.entries.clear();
            return None;
        }
        let read = if rd_en && !self.is_empty() {
            self.entries.pop_front()
        } else {
            None
        };
        // Note: netlist semantics evaluate full/empty *before* the edge;
        // a simultaneous read frees a slot only for the *next* cycle, so
        // write gating uses the pre-edge occupancy.
        let was_full = self.entries.len() + usize::from(read.is_some()) == self.depth;
        if wr_en && !was_full {
            let mask = if self.width == 64 {
                u64::MAX
            } else {
                (1u64 << self.width) - 1
            };
            self.entries.push_back(din & mask);
        }
        read
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanguard_netlist::{CellLibrary, Logic};
    use scanguard_sim::Simulator;

    /// Harness: drive the netlist FIFO and the golden model together.
    struct Tb<'a> {
        sim: Simulator<'a>,
        width: usize,
    }

    impl<'a> Tb<'a> {
        fn new(nl: &'a Netlist, lib: &'a CellLibrary, width: usize) -> Self {
            let mut sim = Simulator::new(nl, lib);
            sim.set_port("rst", Logic::One).unwrap();
            sim.set_port("wr_en", Logic::Zero).unwrap();
            sim.set_port("rd_en", Logic::Zero).unwrap();
            for i in 0..width {
                sim.set_port(&format!("din[{i}]"), Logic::Zero).unwrap();
            }
            sim.step(); // reset pointers/count
                        // Zero the storage for a deterministic start (real silicon
                        // would come up random; the golden model assumes zeros never
                        // matter because reads are gated by occupancy).
            sim.set_port("rst", Logic::Zero).unwrap();
            Tb { sim, width }
        }

        fn tick(&mut self, wr: bool, rd: bool, din: u64) {
            self.sim.set_port_bool("wr_en", wr).unwrap();
            self.sim.set_port_bool("rd_en", rd).unwrap();
            for i in 0..self.width {
                self.sim
                    .set_port_bool(&format!("din[{i}]"), (din >> i) & 1 == 1)
                    .unwrap();
            }
            self.sim.step();
        }

        fn dout(&mut self) -> u64 {
            self.sim.settle();
            let mut v = 0u64;
            for i in 0..self.width {
                if self.sim.port_value(&format!("dout[{i}]")).unwrap() == Logic::One {
                    v |= 1 << i;
                }
            }
            v
        }

        fn flag(&mut self, name: &str) -> bool {
            self.sim.settle();
            self.sim.port_value(name).unwrap() == Logic::One
        }
    }

    #[test]
    fn flop_budget_matches_paper() {
        let f = Fifo::generate(32, 32);
        assert_eq!(f.netlist.ff_count(), 1040);
        assert_eq!(f.storage_cells.len(), 1024);
        assert_eq!(f.control_cells.len(), 16);
    }

    #[test]
    fn small_fifo_write_then_read() {
        let f = Fifo::generate(4, 8);
        let lib = CellLibrary::st120nm();
        let mut tb = Tb::new(&f.netlist, &lib, 8);
        assert!(tb.flag("empty"));
        assert!(!tb.flag("full"));
        tb.tick(true, false, 0xA5);
        assert!(!tb.flag("empty"));
        assert_eq!(tb.dout(), 0xA5);
        tb.tick(true, false, 0x3C);
        assert_eq!(tb.dout(), 0xA5, "head unchanged by second write");
        tb.tick(false, true, 0);
        assert_eq!(tb.dout(), 0x3C, "head advances after read");
        tb.tick(false, true, 0);
        assert!(tb.flag("empty"));
    }

    #[test]
    fn full_flag_blocks_writes() {
        let f = Fifo::generate(4, 4);
        let lib = CellLibrary::st120nm();
        let mut tb = Tb::new(&f.netlist, &lib, 4);
        for i in 0..4 {
            assert!(!tb.flag("full"));
            tb.tick(true, false, i);
        }
        assert!(tb.flag("full"));
        tb.tick(true, false, 0xF); // must be dropped
        assert_eq!(tb.dout(), 0, "head is the first value written");
        for expect in 0..4 {
            assert_eq!(tb.dout(), expect);
            tb.tick(false, true, 0);
        }
        assert!(tb.flag("empty"));
    }

    #[test]
    fn netlist_matches_golden_model_under_random_traffic() {
        let f = Fifo::generate(8, 8);
        let lib = CellLibrary::st120nm();
        let mut tb = Tb::new(&f.netlist, &lib, 8);
        let mut model = FifoModel::new(8, 8);
        let mut state = 0x12345678u64;
        for step in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let wr = (state >> 60) & 1 == 1;
            let rd = (state >> 61) & 1 == 1;
            let din = (state >> 8) & 0xFF;
            // Compare pre-edge observables.
            assert_eq!(tb.flag("empty"), model.is_empty(), "empty @ {step}");
            assert_eq!(tb.flag("full"), model.is_full(), "full @ {step}");
            if !model.is_empty() {
                assert_eq!(tb.dout(), model.dout().unwrap(), "dout @ {step}");
            }
            tb.tick(wr, rd, din);
            model.tick(false, wr, rd, din);
        }
    }

    #[test]
    fn model_rejects_overflow_and_underflow() {
        let mut m = FifoModel::new(2, 4);
        assert_eq!(m.tick(false, false, true, 0), None, "read while empty");
        m.tick(false, true, false, 1);
        m.tick(false, true, false, 2);
        assert!(m.is_full());
        m.tick(false, true, false, 3); // dropped
        assert_eq!(m.tick(false, false, true, 0), Some(1));
        assert_eq!(m.tick(false, false, true, 0), Some(2));
        assert!(m.is_empty());
    }

    #[test]
    fn simultaneous_read_write_when_full_keeps_occupancy() {
        let mut m = FifoModel::new(2, 4);
        m.tick(false, true, false, 1);
        m.tick(false, true, false, 2);
        assert!(m.is_full());
        // Read+write while full: the read drains one, but the write is
        // gated on the pre-edge full flag (hardware semantics).
        let got = m.tick(false, true, true, 3);
        assert_eq!(got, Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.dout(), Some(2));
    }

    #[test]
    fn reset_clears_model() {
        let mut m = FifoModel::new(4, 4);
        m.tick(false, true, false, 7);
        m.tick(true, false, false, 0);
        assert!(m.is_empty());
    }
}
