//! A small accumulator datapath — a benchmark with *computational* state
//! (the FIFO is pure storage). Protecting a datapath is the harder case
//! the paper's introduction motivates: an upset here corrupts ongoing
//! computation, not just buffered data.
//!
//! Architecture: an accumulator `acc`, a `regs x width` register file,
//! and an ALU executing one of four operations per cycle against a
//! selected register:
//!
//! | `op[1:0]` | effect |
//! |---|---|
//! | 00 | `acc <- acc` (nop) |
//! | 01 | `acc <- acc + rf[addr]` |
//! | 10 | `acc <- acc ^ rf[addr]` |
//! | 11 | `acc <- rf[addr]` (load) |
//!
//! `we` writes `acc` back into `rf[addr]` the same cycle; `li` loads the
//! immediate bus `din` into `acc` (overriding the ALU); `rst` clears the
//! accumulator.

use crate::arith::{equals_const, mux_bus};
use scanguard_netlist::{CellId, NetId, Netlist, NetlistBuilder};

/// A generated datapath plus its register groups.
#[derive(Debug, Clone)]
pub struct Datapath {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Number of general registers.
    pub regs: usize,
    /// Bit width of the accumulator and registers.
    pub width: usize,
    /// Accumulator flops, LSB first.
    pub acc_cells: Vec<CellId>,
    /// Register-file flops, register-major.
    pub reg_cells: Vec<CellId>,
}

impl Datapath {
    /// Generates a datapath with `regs` registers of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics unless `regs` is a power of two `>= 2` and `width >= 1`.
    #[must_use]
    pub fn generate(regs: usize, width: usize) -> Self {
        assert!(
            regs.is_power_of_two() && regs >= 2,
            "regs must be a power of two >= 2"
        );
        assert!(width >= 1, "width must be at least 1");
        let abits = regs.trailing_zeros() as usize;
        let mut b = NetlistBuilder::new(&format!("datapath{regs}x{width}"));
        let rst = b.input("rst");
        let we = b.input("we");
        let li = b.input("li");
        let op = b.input_bus("op", 2);
        let addr = b.input_bus("addr", abits);
        let din = b.input_bus("din", width);

        // Accumulator flops with pre-declared d nets.
        let mut acc_ds = Vec::with_capacity(width);
        let mut acc_qs = Vec::with_capacity(width);
        let mut acc_cells = Vec::with_capacity(width);
        for i in 0..width {
            let d = b.net(&format!("acc_d{i}"));
            let (q, cell) = b.dff(&format!("acc{i}"), d);
            acc_ds.push(d);
            acc_qs.push(q);
            acc_cells.push(cell);
        }

        // Register file flops.
        let mut rf_qs: Vec<Vec<NetId>> = Vec::with_capacity(regs);
        let mut rf_ds: Vec<Vec<NetId>> = Vec::with_capacity(regs);
        let mut reg_cells = Vec::with_capacity(regs * width);
        for r in 0..regs {
            let mut qs = Vec::with_capacity(width);
            let mut ds = Vec::with_capacity(width);
            for c in 0..width {
                let d = b.net(&format!("rf{r}_{c}_d"));
                let (q, cell) = b.dff(&format!("rf{r}_{c}"), d);
                ds.push(d);
                qs.push(q);
                reg_cells.push(cell);
            }
            rf_qs.push(qs);
            rf_ds.push(ds);
        }

        // Operand read: rf[addr], one mux tree per bit.
        let operand: Vec<NetId> = (0..width)
            .map(|c| {
                let column: Vec<NetId> = (0..regs).map(|r| rf_qs[r][c]).collect();
                crate::arith::mux_tree(&mut b, &addr, &column)
            })
            .collect();

        // ALU: ripple adder acc + operand, plus xor and load.
        let mut carry = b.tie_lo();
        let mut sum = Vec::with_capacity(width);
        for i in 0..width {
            let axb = b.xor2(acc_qs[i], operand[i]);
            sum.push(b.xor2(axb, carry));
            // The final carry-out is discarded (wrapping add), so don't
            // generate it.
            if i + 1 < width {
                let ab = b.and2(acc_qs[i], operand[i]);
                let cc = b.and2(axb, carry);
                carry = b.or2(ab, cc);
            }
        }
        let xorred: Vec<NetId> = (0..width).map(|i| b.xor2(acc_qs[i], operand[i])).collect();

        // op decode: 00 hold, 01 add, 10 xor, 11 load.
        let after_lo = mux_bus(&mut b, op[0], &acc_qs, &sum); // op0 selects add
        let after_lo_hi = mux_bus(&mut b, op[0], &xorred, &operand); // when op1 set
        let alu_out = mux_bus(&mut b, op[1], &after_lo, &after_lo_hi);
        let next_acc = mux_bus(&mut b, li, &alu_out, &din);
        let zero = b.tie_lo();
        let zeros = vec![zero; width];
        let acc_next = mux_bus(&mut b, rst, &next_acc, &zeros);
        for (&d, &n) in acc_ds.iter().zip(&acc_next) {
            b.connect(d, n);
        }

        // Write-back: rf[addr] <- acc when we.
        for r in 0..regs {
            let sel = equals_const(&mut b, &addr, r);
            let row_we = b.and2(we, sel);
            for c in 0..width {
                let next = b.mux2(row_we, rf_qs[r][c], acc_qs[c]);
                b.connect(rf_ds[r][c], next);
            }
        }

        b.output_bus("acc", &acc_qs);
        let netlist = b.finish().expect("generated datapath must be well-formed");
        Datapath {
            netlist,
            regs,
            width,
            acc_cells,
            reg_cells,
        }
    }
}

/// Cycle-exact golden model of [`Datapath`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatapathModel {
    width: usize,
    acc: u64,
    regs: Vec<u64>,
}

impl DatapathModel {
    /// A model with all state zeroed.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 63`.
    #[must_use]
    pub fn new(regs: usize, width: usize) -> Self {
        assert!((1..=63).contains(&width), "width must be 1..=63");
        DatapathModel {
            width,
            acc: 0,
            regs: vec![0; regs],
        }
    }

    /// Current accumulator value.
    #[must_use]
    pub fn acc(&self) -> u64 {
        self.acc
    }

    /// Current register value.
    #[must_use]
    pub fn reg(&self, r: usize) -> u64 {
        self.regs[r]
    }

    /// Forces state (for aligning with a netlist snapshot).
    pub fn set_state(&mut self, acc: u64, regs: &[u64]) {
        let mask = self.mask();
        self.acc = acc & mask;
        for (slot, &v) in self.regs.iter_mut().zip(regs) {
            *slot = v & mask;
        }
    }

    fn mask(&self) -> u64 {
        (1u64 << self.width) - 1
    }

    /// One cycle: `op` in 0..=3, register `addr`, write-back `we`,
    /// immediate load `li`/`din`, reset `rst`.
    pub fn tick(&mut self, rst: bool, we: bool, li: bool, din: u64, op: u8, addr: usize) {
        let operand = self.regs[addr];
        let alu = match op & 3 {
            0 => self.acc,
            1 => (self.acc + operand) & self.mask(),
            2 => self.acc ^ operand,
            _ => operand,
        };
        let next_acc = if li { din & self.mask() } else { alu };
        if we {
            self.regs[addr] = self.acc;
        }
        self.acc = if rst { 0 } else { next_acc };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanguard_netlist::{CellLibrary, Logic};
    use scanguard_sim::Simulator;

    struct Tb<'a> {
        sim: Simulator<'a>,
        width: usize,
        abits: usize,
    }

    impl<'a> Tb<'a> {
        fn new(dp: &'a Datapath, lib: &'a CellLibrary) -> Self {
            let mut sim = Simulator::new(&dp.netlist, lib);
            // Reset acc; zero the register file directly (silicon would
            // write it; tests shortcut with force).
            for &cell in &dp.reg_cells {
                sim.force_ff(cell, Logic::Zero);
            }
            sim.set_port("rst", Logic::One).unwrap();
            sim.set_port("we", Logic::Zero).unwrap();
            sim.set_port("li", Logic::Zero).unwrap();
            for i in 0..dp.width {
                sim.set_port(&format!("din[{i}]"), Logic::Zero).unwrap();
            }
            for i in 0..2 {
                sim.set_port(&format!("op[{i}]"), Logic::Zero).unwrap();
            }
            let abits = dp.regs.trailing_zeros() as usize;
            for i in 0..abits {
                sim.set_port(&format!("addr[{i}]"), Logic::Zero).unwrap();
            }
            sim.step();
            sim.set_port("rst", Logic::Zero).unwrap();
            Tb {
                sim,
                width: dp.width,
                abits,
            }
        }

        fn tick(&mut self, we: bool, op: u8, addr: usize) {
            self.tick_li(we, false, 0, op, addr);
        }

        fn tick_li(&mut self, we: bool, li: bool, din: u64, op: u8, addr: usize) {
            self.sim.set_port_bool("we", we).unwrap();
            self.sim.set_port_bool("li", li).unwrap();
            for i in 0..self.width {
                self.sim
                    .set_port_bool(&format!("din[{i}]"), (din >> i) & 1 == 1)
                    .unwrap();
            }
            for i in 0..2 {
                self.sim
                    .set_port_bool(&format!("op[{i}]"), (op >> i) & 1 == 1)
                    .unwrap();
            }
            for i in 0..self.abits {
                self.sim
                    .set_port_bool(&format!("addr[{i}]"), (addr >> i) & 1 == 1)
                    .unwrap();
            }
            self.sim.step();
        }

        fn acc(&mut self) -> u64 {
            self.sim.settle();
            (0..self.width)
                .filter(|i| self.sim.port_value(&format!("acc[{i}]")).unwrap() == Logic::One)
                .fold(0, |a, i| a | (1 << i))
        }
    }

    #[test]
    fn load_add_xor_sequence() {
        let dp = Datapath::generate(4, 8);
        let lib = CellLibrary::st120nm();
        let mut tb = Tb::new(&dp, &lib);
        // acc starts 0; write 0 into r1; load r1 (0); add r1...
        // Use we to stage values: acc=0 -> we r0; op=load r0 keeps 0.
        tb.tick(false, 0, 0);
        assert_eq!(tb.acc(), 0);
        // Build 5 into acc via add of r0 (0) won't work; instead use
        // model-checked random traffic below. Here: check load of a
        // written value.
        // Load an immediate, stash it, and add it back: acc = 2 * 0x2A.
        tb.tick_li(false, true, 0x2A, 0, 0);
        assert_eq!(tb.acc(), 0x2A);
        tb.tick(true, 0, 2); // r2 <- 0x2A
        tb.tick(false, 1, 2); // acc += r2
        assert_eq!(tb.acc(), 0x54);
    }

    #[test]
    fn netlist_matches_golden_model_under_random_traffic() {
        let dp = Datapath::generate(4, 8);
        let lib = CellLibrary::st120nm();
        let mut tb = Tb::new(&dp, &lib);
        let mut model = DatapathModel::new(4, 8);
        let mut state = 0xDEADBEEFu64;
        for step in 0..300 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let we = (state >> 40) & 1 == 1;
            let op = ((state >> 33) & 3) as u8;
            let addr = ((state >> 20) & 3) as usize;
            let li = (state >> 50) & 7 == 0;
            let din = (state >> 4) & 0xFF;
            tb.tick_li(we, li, din, op, addr);
            model.tick(false, we, li, din, op, addr);
            assert_eq!(tb.acc(), model.acc(), "divergence at step {step}");
        }
    }

    #[test]
    fn flop_budget() {
        let dp = Datapath::generate(8, 16);
        assert_eq!(dp.netlist.ff_count(), 16 + 8 * 16);
        assert_eq!(dp.acc_cells.len(), 16);
        assert_eq!(dp.reg_cells.len(), 128);
    }
}
