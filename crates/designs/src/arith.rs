//! Small arithmetic and selection building blocks used by the circuit
//! generators: ripple incrementer/decrementer, equality decoders and mux
//! trees.

use scanguard_netlist::{NetId, NetlistBuilder};

/// Builds `value + 1` over an LSB-first bus; the carry out is dropped
/// (wrap-around), which is exactly what circular FIFO pointers need —
/// so the final carry gate is never built.
pub fn incrementer(b: &mut NetlistBuilder, bits: &[NetId]) -> Vec<NetId> {
    let mut out = Vec::with_capacity(bits.len());
    let mut carry = b.tie_hi();
    for (i, &bit) in bits.iter().enumerate() {
        out.push(b.xor2(bit, carry));
        if i + 1 < bits.len() {
            carry = b.and2(bit, carry);
        }
    }
    out
}

/// Builds `value - 1` over an LSB-first bus (wrap-around): borrow
/// propagates through zero bits. The final borrow is dropped, so its
/// gates are never built.
pub fn decrementer(b: &mut NetlistBuilder, bits: &[NetId]) -> Vec<NetId> {
    let mut out = Vec::with_capacity(bits.len());
    let mut borrow = b.tie_hi();
    for (i, &bit) in bits.iter().enumerate() {
        out.push(b.xor2(bit, borrow));
        if i + 1 < bits.len() {
            let nbit = b.not(bit);
            borrow = b.and2(nbit, borrow);
        }
    }
    out
}

/// Builds the one-hot decode of `bits == index`: an AND over each bit or
/// its complement.
pub fn equals_const(b: &mut NetlistBuilder, bits: &[NetId], index: usize) -> NetId {
    let literals: Vec<NetId> = bits
        .iter()
        .enumerate()
        .map(|(i, &bit)| {
            if (index >> i) & 1 == 1 {
                bit
            } else {
                b.not(bit)
            }
        })
        .collect();
    b.and_tree(&literals)
}

/// Builds a bus-wide 2:1 mux: `sel ? when_one : when_zero`, element-wise.
///
/// # Panics
///
/// Panics if the two buses differ in width.
pub fn mux_bus(
    b: &mut NetlistBuilder,
    sel: NetId,
    when_zero: &[NetId],
    when_one: &[NetId],
) -> Vec<NetId> {
    assert_eq!(when_zero.len(), when_one.len(), "bus widths must match");
    when_zero
        .iter()
        .zip(when_one)
        .map(|(&a, &c)| b.mux2(sel, a, c))
        .collect()
}

/// Builds an N:1 mux tree over `inputs`, selected by an LSB-first select
/// bus. `inputs.len()` must equal `2^sel.len()`.
///
/// # Panics
///
/// Panics if the input count is not `2^sel.len()`.
pub fn mux_tree(b: &mut NetlistBuilder, sel: &[NetId], inputs: &[NetId]) -> NetId {
    assert_eq!(
        inputs.len(),
        1usize << sel.len(),
        "mux tree needs 2^sel inputs"
    );
    let mut level: Vec<NetId> = inputs.to_vec();
    for &s in sel {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks_exact(2) {
            next.push(b.mux2(s, pair[0], pair[1]));
        }
        level = next;
    }
    level[0]
}

/// Builds "all bits zero" detection (a NOR reduction).
pub fn is_zero(b: &mut NetlistBuilder, bits: &[NetId]) -> NetId {
    let any = b.or_tree(bits);
    b.not(any)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanguard_netlist::{CellLibrary, Logic, Netlist};
    use scanguard_sim::Simulator;

    /// Builds a combinational test harness exposing `out[..]` for a
    /// closure-built block over `n` inputs named `in[..]`.
    fn harness(
        n: usize,
        build: impl FnOnce(&mut NetlistBuilder, &[NetId]) -> Vec<NetId>,
    ) -> Netlist {
        let mut b = NetlistBuilder::new("harness");
        let ins = b.input_bus("in", n);
        let outs = build(&mut b, &ins);
        b.output_bus("out", &outs);
        b.finish().unwrap()
    }

    fn eval(nl: &Netlist, input: u64, n_in: usize, n_out: usize) -> u64 {
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(nl, &lib);
        for i in 0..n_in {
            sim.set_port(&format!("in[{i}]"), Logic::from((input >> i) & 1 == 1))
                .unwrap();
        }
        sim.settle();
        let mut out = 0u64;
        for i in 0..n_out {
            if sim.port_value(&format!("out[{i}]")).unwrap() == Logic::One {
                out |= 1 << i;
            }
        }
        out
    }

    #[test]
    fn incrementer_wraps_correctly() {
        let nl = harness(5, incrementer);
        for v in 0u64..32 {
            assert_eq!(eval(&nl, v, 5, 5), (v + 1) % 32, "inc({v})");
        }
    }

    #[test]
    fn decrementer_wraps_correctly() {
        let nl = harness(5, decrementer);
        for v in 0u64..32 {
            assert_eq!(eval(&nl, v, 5, 5), (v + 31) % 32, "dec({v})");
        }
    }

    #[test]
    fn equals_const_is_one_hot() {
        let nl = harness(4, |b, ins| vec![equals_const(b, ins, 9)]);
        for v in 0u64..16 {
            assert_eq!(eval(&nl, v, 4, 1), u64::from(v == 9));
        }
    }

    #[test]
    fn is_zero_detects_zero_only() {
        let nl = harness(6, |b, ins| vec![is_zero(b, ins)]);
        for v in [0u64, 1, 5, 32, 63] {
            assert_eq!(eval(&nl, v, 6, 1), u64::from(v == 0));
        }
    }

    #[test]
    fn mux_tree_selects_each_input() {
        // 8 inputs, 3 select bits: input i = bit i of the input word.
        let mut b = NetlistBuilder::new("mux8");
        let data = b.input_bus("in", 8);
        let sel = b.input_bus("sel", 3);
        let y = mux_tree(&mut b, &sel, &data);
        b.output("y", y);
        let nl = b.finish().unwrap();
        let lib = CellLibrary::st120nm();
        for s in 0..8u64 {
            let mut sim = Simulator::new(&nl, &lib);
            let word = 0b1011_0110u64;
            for i in 0..8 {
                sim.set_port(&format!("in[{i}]"), Logic::from((word >> i) & 1 == 1))
                    .unwrap();
            }
            for i in 0..3 {
                sim.set_port(&format!("sel[{i}]"), Logic::from((s >> i) & 1 == 1))
                    .unwrap();
            }
            sim.settle();
            assert_eq!(
                sim.port_value("y").unwrap(),
                Logic::from((word >> s) & 1 == 1),
                "sel={s}"
            );
        }
    }

    #[test]
    fn mux_bus_switches_whole_bus() {
        let mut b = NetlistBuilder::new("muxbus");
        let a = b.input_bus("a", 3);
        let c = b.input_bus("c", 3);
        let sel = b.input("sel");
        let y = mux_bus(&mut b, sel, &a, &c);
        b.output_bus("y", &y);
        let nl = b.finish().unwrap();
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        for i in 0..3 {
            sim.set_port(&format!("a[{i}]"), Logic::One).unwrap();
            sim.set_port(&format!("c[{i}]"), Logic::Zero).unwrap();
        }
        sim.set_port("sel", Logic::Zero).unwrap();
        sim.settle();
        assert_eq!(sim.port_value("y[1]").unwrap(), Logic::One);
        sim.set_port("sel", Logic::One).unwrap();
        sim.settle();
        assert_eq!(sim.port_value("y[1]").unwrap(), Logic::Zero);
    }
}
