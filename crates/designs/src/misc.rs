//! Additional benchmark circuits: dense-state designs for exercising the
//! protection flow beyond the paper's FIFO case study.

use crate::arith::{incrementer, mux_bus};
use scanguard_netlist::{CellId, NetId, Netlist, NetlistBuilder};

/// Generates an `n`-stage shift register: `si` in, `so` out, all stages
/// exposed as `q[..]`.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// use scanguard_designs::shift_register;
///
/// let nl = shift_register(16);
/// assert_eq!(nl.ff_count(), 16);
/// ```
#[must_use]
pub fn shift_register(n: usize) -> Netlist {
    assert!(n > 0, "need at least one stage");
    let mut b = NetlistBuilder::new(&format!("shift{n}"));
    let si = b.input("si");
    let mut prev = si;
    let mut qs = Vec::with_capacity(n);
    for i in 0..n {
        let (q, _) = b.dff(&format!("s{i}"), prev);
        qs.push(q);
        prev = q;
    }
    b.output("so", prev);
    b.output_bus("q", &qs);
    b.finish().expect("shift register is well-formed")
}

/// Generates a bank of `count` independent `width`-bit up-counters with a
/// shared `en` input and `rst`. Counter `k`'s bits appear as
/// `cnt{k}[0..width]`.
///
/// # Panics
///
/// Panics if `count` or `width` is zero.
///
/// # Examples
///
/// ```
/// use scanguard_designs::counter_bank;
///
/// let nl = counter_bank(4, 8);
/// assert_eq!(nl.ff_count(), 32);
/// ```
#[must_use]
pub fn counter_bank(count: usize, width: usize) -> Netlist {
    assert!(count > 0 && width > 0, "need at least one counter bit");
    let mut b = NetlistBuilder::new(&format!("counters{count}x{width}"));
    let rst = b.input("rst");
    let en = b.input("en");
    let zero = b.tie_lo();
    for k in 0..count {
        let mut ds = Vec::with_capacity(width);
        let mut qs = Vec::with_capacity(width);
        for i in 0..width {
            let d = b.net(&format!("c{k}_d{i}"));
            let (q, _) = b.dff(&format!("c{k}_{i}"), d);
            ds.push(d);
            qs.push(q);
        }
        let inc = incrementer(&mut b, &qs);
        let stepped = mux_bus(&mut b, en, &qs, &inc);
        let zeros = vec![zero; width];
        let next = mux_bus(&mut b, rst, &stepped, &zeros);
        for (&d, &n) in ds.iter().zip(&next) {
            b.connect(d, n);
        }
        b.output_bus(&format!("cnt{k}"), &qs);
    }
    b.finish().expect("counter bank is well-formed")
}

/// Generates a `words x width` register file with one write port
/// (`waddr`, `wdata`, `we`) and combinational read (`raddr` -> `rdata`).
///
/// # Panics
///
/// Panics unless `words` is a power of two `>= 2` and `width >= 1`.
///
/// # Examples
///
/// ```
/// use scanguard_designs::register_file;
///
/// let nl = register_file(8, 16);
/// assert_eq!(nl.ff_count(), 128);
/// ```
#[must_use]
pub fn register_file(words: usize, width: usize) -> Netlist {
    assert!(
        words.is_power_of_two() && words >= 2,
        "words must be a power of two >= 2"
    );
    assert!(width >= 1, "width must be at least 1");
    let abits = words.trailing_zeros() as usize;
    let mut b = NetlistBuilder::new(&format!("regfile{words}x{width}"));
    let we = b.input("we");
    let waddr = b.input_bus("waddr", abits);
    let wdata = b.input_bus("wdata", width);
    let raddr = b.input_bus("raddr", abits);
    let mut rows: Vec<Vec<NetId>> = Vec::with_capacity(words);
    for r in 0..words {
        let sel = crate::arith::equals_const(&mut b, &waddr, r);
        let row_we = b.and2(we, sel);
        let mut qs = Vec::with_capacity(width);
        for c in 0..width {
            let d = b.net(&format!("rf{r}_{c}_d"));
            let (q, _) = b.dff(&format!("rf{r}_{c}"), d);
            let next = b.mux2(row_we, q, wdata[c]);
            b.connect(d, next);
            qs.push(q);
        }
        rows.push(qs);
    }
    let mut rdata = Vec::with_capacity(width);
    for c in 0..width {
        let column: Vec<NetId> = rows.iter().map(|row| row[c]).collect();
        rdata.push(crate::arith::mux_tree(&mut b, &raddr, &column));
    }
    b.output_bus("rdata", &rdata);
    b.finish().expect("register file is well-formed")
}

/// Generates a gate-level Galois LFSR of the given width and tap mask
/// (bit `t-1` set for each polynomial exponent `t`), with `q[..]` state
/// outputs and the serial output `so`.
///
/// Returns the netlist and the state flops (LSB first).
///
/// # Panics
///
/// Panics if `width` is zero or above 64.
///
/// # Examples
///
/// ```
/// use scanguard_designs::lfsr_netlist;
///
/// let (nl, cells) = lfsr_netlist(8, 0xB8);
/// assert_eq!(cells.len(), 8);
/// assert_eq!(nl.ff_count(), 8);
/// ```
#[must_use]
pub fn lfsr_netlist(width: usize, taps: u64) -> (Netlist, Vec<CellId>) {
    assert!((1..=64).contains(&width), "width must be 1..=64");
    let mut b = NetlistBuilder::new(&format!("lfsr{width}"));
    let mut ds = Vec::with_capacity(width);
    let mut qs = Vec::with_capacity(width);
    let mut cells = Vec::with_capacity(width);
    for i in 0..width {
        let d = b.net(&format!("l_d{i}"));
        let (q, cell) = b.dff(&format!("l{i}"), d);
        ds.push(d);
        qs.push(q);
        cells.push(cell);
    }
    let out = qs[0];
    // Galois right shift: bit i <- bit i+1, XOR'd with out where tapped.
    let zero = b.tie_lo();
    for i in 0..width {
        let shifted = if i + 1 < width { qs[i + 1] } else { zero };
        let next = if (taps >> i) & 1 == 1 {
            b.xor2(shifted, out)
        } else {
            shifted
        };
        b.connect(ds[i], next);
    }
    b.output("so", out);
    b.output_bus("q", &qs);
    let nl = b.finish().expect("lfsr is well-formed");
    (nl, cells)
}

/// Generates a `rows x cols` toroidal XOR mesh: a dense grid of
/// flip-flops where each cell folds its own state, its west
/// neighbour's state and the state arriving from the row above
/// (row 0 takes the `in[..]` ports) through an XOR3. Outputs are the
/// last row's state.
///
/// The mesh is the scaling workhorse of the benchmark family: flop
/// count is exactly `rows * cols` and generation is linear, so
/// `mesh(100, 100)` (10^4 flops) and `mesh(320, 320)` (~10^5 flops)
/// stress scan stitching, lint and import far beyond the paper's
/// 1040-flop FIFO while every state bit still has a sensitised path
/// (no error masking at the outputs' row).
///
/// Cells are anonymous — at 10^5 flops, per-cell name strings dominate
/// the netlist's memory footprint for no analytical benefit.
///
/// # Panics
///
/// Panics if `rows` is zero or `cols < 2` (each cell needs a distinct
/// west neighbour).
///
/// # Examples
///
/// ```
/// use scanguard_designs::mesh;
///
/// let nl = mesh(4, 8);
/// assert_eq!(nl.ff_count(), 32);
/// assert_eq!(nl.cell_count(), 64); // one XOR3 per flop
/// ```
#[must_use]
pub fn mesh(rows: usize, cols: usize) -> Netlist {
    assert!(rows > 0, "need at least one row");
    assert!(cols >= 2, "need at least two columns");
    let mut b = NetlistBuilder::new(&format!("mesh{rows}x{cols}"));
    let inputs = b.input_bus("in", cols);
    let q: Vec<Vec<NetId>> = (0..rows)
        .map(|_| (0..cols).map(|_| b.anon_net()).collect())
        .collect();
    for r in 0..rows {
        for c in 0..cols {
            let west = q[r][(c + cols - 1) % cols];
            let north = if r == 0 { inputs[c] } else { q[r - 1][c] };
            let d = b.xor3(q[r][c], west, north);
            b.drive(q[r][c], scanguard_netlist::GateKind::Dff, vec![d]);
        }
    }
    b.output_bus("out", &q[rows - 1]);
    b.finish().expect("mesh feedback is sequential only")
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanguard_netlist::{CellLibrary, Logic};
    use scanguard_sim::Simulator;

    #[test]
    fn shift_register_delays_by_n() {
        let nl = shift_register(5);
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        sim.set_port("si", Logic::One).unwrap();
        sim.step();
        sim.set_port("si", Logic::Zero).unwrap();
        for _ in 0..4 {
            assert_ne!(sim.port_value("so").unwrap(), Logic::One);
            sim.step();
        }
        assert_eq!(sim.port_value("so").unwrap(), Logic::One);
    }

    #[test]
    fn counters_count_when_enabled() {
        let nl = counter_bank(2, 4);
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        sim.set_port("rst", Logic::One).unwrap();
        sim.set_port("en", Logic::Zero).unwrap();
        sim.step();
        sim.set_port("rst", Logic::Zero).unwrap();
        sim.set_port("en", Logic::One).unwrap();
        sim.step_n(5);
        sim.settle();
        let mut v = 0u64;
        for i in 0..4 {
            if sim.port_value(&format!("cnt1[{i}]")).unwrap() == Logic::One {
                v |= 1 << i;
            }
        }
        assert_eq!(v, 5);
        sim.set_port("en", Logic::Zero).unwrap();
        sim.step_n(3);
        sim.settle();
        let mut v2 = 0u64;
        for i in 0..4 {
            if sim.port_value(&format!("cnt1[{i}]")).unwrap() == Logic::One {
                v2 |= 1 << i;
            }
        }
        assert_eq!(v2, 5, "disabled counter holds");
    }

    #[test]
    fn register_file_reads_what_it_wrote() {
        let nl = register_file(4, 8);
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        let write = |sim: &mut Simulator<'_>, addr: u64, data: u64| {
            sim.set_port_bool("we", true).unwrap();
            for i in 0..2 {
                sim.set_port_bool(&format!("waddr[{i}]"), (addr >> i) & 1 == 1)
                    .unwrap();
            }
            for i in 0..8 {
                sim.set_port_bool(&format!("wdata[{i}]"), (data >> i) & 1 == 1)
                    .unwrap();
            }
            sim.step();
        };
        let read = |sim: &mut Simulator<'_>, addr: u64| -> u64 {
            for i in 0..2 {
                sim.set_port_bool(&format!("raddr[{i}]"), (addr >> i) & 1 == 1)
                    .unwrap();
            }
            sim.settle();
            (0..8)
                .filter(|i| sim.port_value(&format!("rdata[{i}]")).unwrap() == Logic::One)
                .fold(0u64, |acc, i| acc | (1 << i))
        };
        write(&mut sim, 0, 0x11);
        write(&mut sim, 3, 0xEE);
        sim.set_port_bool("we", false).unwrap();
        assert_eq!(read(&mut sim, 0), 0x11);
        assert_eq!(read(&mut sim, 3), 0xEE);
    }

    #[test]
    fn gate_level_lfsr_matches_software_lfsr() {
        // Compare against the same Galois update in software.
        let width = 8usize;
        let taps = 0xB8u64;
        let (nl, cells) = lfsr_netlist(width, taps);
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        let seed = 0xA5u64;
        for (i, &cell) in cells.iter().enumerate() {
            sim.force_ff(cell, Logic::from((seed >> i) & 1 == 1));
        }
        let mut sw = seed;
        for cycle in 0..100 {
            // Software step.
            let out = sw & 1 == 1;
            sw >>= 1;
            if out {
                sw ^= taps;
            }
            sim.step();
            let mut hw = 0u64;
            for (i, &cell) in cells.iter().enumerate() {
                if sim.ff_value(cell) == Logic::One {
                    hw |= 1 << i;
                }
            }
            assert_eq!(hw, sw, "divergence at cycle {cycle}");
        }
    }
    #[test]
    fn mesh_shape_and_structure() {
        let nl = mesh(3, 4);
        assert_eq!(nl.ff_count(), 12);
        assert_eq!(nl.cell_count(), 24);
        assert_eq!(nl.input_ports().len(), 4);
        assert_eq!(nl.output_ports().len(), 4);
        assert!(nl.is_validated());
    }

    #[test]
    fn mesh_state_diffuses() {
        // A single forced 1 in row 0 must reach the output row within
        // `rows` cycles (the XOR folds propagate one row per step).
        let nl = mesh(3, 4);
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        for (name, _) in nl.input_ports() {
            sim.set_port(name, Logic::Zero).unwrap();
        }
        let flops: Vec<_> = nl.ff_cells().map(|(id, _)| id).collect();
        for &f in &flops {
            sim.force_ff(f, Logic::Zero);
        }
        sim.set_port("in[0]", Logic::One).unwrap();
        let mut saw_one = false;
        for _ in 0..6 {
            sim.step();
            for k in 0..4 {
                if sim.port_value(&format!("out[{k}]")).unwrap() == Logic::One {
                    saw_one = true;
                }
            }
        }
        assert!(saw_one, "injected bit never reached the output row");
    }
}
