//! # scanguard-designs
//!
//! Benchmark circuit generators for the `scanguard` reproduction of
//! *"Scan Based Methodology for Reliable State Retention Power Gating
//! Designs"* (Yang et al., DATE 2010).
//!
//! The centrepiece is [`Fifo`], the paper's 32x32-bit case-study circuit
//! (1040 flip-flops, "high density of flip-flops and no error masking"),
//! together with its golden software reference [`FifoModel`]. Additional
//! dense-state designs — [`shift_register`], [`counter_bank`],
//! [`register_file`], [`lfsr_netlist`] — exercise the protection flow on
//! other state shapes, and the [`arith`] module exposes the shared
//! building blocks (incrementers, decoders, mux trees).
//!
//! # Examples
//!
//! ```
//! use scanguard_designs::Fifo;
//! use scanguard_netlist::{AreaReport, CellLibrary};
//!
//! let fifo = Fifo::generate(32, 32);
//! let report = AreaReport::of(&fifo.netlist, &CellLibrary::st120nm());
//! assert_eq!(report.ff_count, 1040);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
// Bit-indexed loops are the clearer idiom for hardware generation.
#![allow(clippy::needless_range_loop)]

pub mod arith;
mod datapath;
mod fifo;
mod misc;

pub use datapath::{Datapath, DatapathModel};
pub use fifo::{Fifo, FifoModel};
pub use misc::{counter_bank, lfsr_netlist, mesh, register_file, shift_register};
