//! Executing the protected design: simulator + proposed controller.
//!
//! [`ProtectedRuntime`] owns a gate-level [`Simulator`] over a
//! [`ProtectedDesign`] and drives one full Fig. 3(b) sleep/wake sequence
//! per [`sleep_wake`](ProtectedRuntime::sleep_wake) call: encode, save,
//! gate off, sleep, wake (where the caller's upset hook models the rush
//! current), restore, decode/correct, check. It returns what the paper's
//! testbench counters record — error observations, residual corruption
//! and the per-phase energy that Tables I/II tabulate.

use crate::{MonOutputs, MonPhase, ProposedController, ProposedTiming, ProtectedDesign};
use scanguard_dft::{Lfsr, ScanChains};
use scanguard_netlist::Logic;
use scanguard_obs::{arg, ArgValue, Lane, PhaseLog, Recorder};
use scanguard_sim::{DomainId, EnergyWindow, Simulator};
use std::sync::Arc;

/// Result of one sleep/wake traversal.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SleepWakeReport {
    /// Retention-latch flips the upset hook injected.
    pub upsets: usize,
    /// `true` if the monitor raised `mon_err` during any sampled cycle.
    pub error_observed: bool,
    /// `true` if every monitor sequencer reached its terminal count.
    pub done_observed: bool,
    /// Bits that still differ from the pre-sleep state after decoding
    /// (0 = fully recovered).
    pub residual_errors: usize,
    /// Energy of the encode sequence (clear + `l` shifts + capture).
    pub encode: EnergyWindow,
    /// Energy of the decode sequence (clear + `l` shifts + check).
    pub decode: EnergyWindow,
    /// Total cycles spent outside `Active`.
    pub total_cycles: u64,
}

impl SleepWakeReport {
    /// `true` when the post-wake state equals the pre-sleep state.
    #[must_use]
    pub fn state_intact(&self) -> bool {
        self.residual_errors == 0
    }
}

/// A simulation harness for a [`ProtectedDesign`].
///
/// # Examples
///
/// ```
/// use scanguard_core::{CodeChoice, Synthesizer};
/// use scanguard_netlist::NetlistBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetlistBuilder::new("regs");
/// for i in 0..8 {
///     let d = b.input(&format!("d[{i}]"));
///     let (q, _) = b.dff(&format!("r{i}"), d);
///     b.output(&format!("q[{i}]"), q);
/// }
/// let design = Synthesizer::new(b.finish()?)
///     .chains(4)
///     .code(CodeChoice::hamming7_4())
///     .build()?;
/// let mut rt = design.runtime();
/// rt.load_random_state(7);
/// let report = rt.sleep_wake(|_, _| 0); // quiet wake-up
/// assert!(report.state_intact());
/// assert!(!report.error_observed);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProtectedRuntime<'a> {
    design: &'a ProtectedDesign,
    sim: Simulator<'a>,
    ctrl: ProposedController,
    domain: DomainId,
    sleep_cycles: u64,
    obs: Option<Arc<Recorder>>,
}

impl<'a> ProtectedRuntime<'a> {
    /// Builds the runtime: simulator, power domain assignment, controller
    /// in `Active`, all input ports quiesced low.
    #[must_use]
    pub fn new(design: &'a ProtectedDesign) -> Self {
        let mut sim = Simulator::new(&design.netlist, &design.library);
        let domain = sim.define_domain("pgc");
        let gated: Vec<_> = (0..design.gated_watermark)
            .map(scanguard_netlist::CellId::from_index)
            .collect();
        sim.assign_domain_all(gated, domain);
        // Quiesce every primary input.
        let ports: Vec<_> = design
            .netlist
            .input_ports()
            .iter()
            .map(|(_, net)| *net)
            .collect();
        for net in ports {
            sim.set_net(net, Logic::Zero);
        }
        let ctrl = ProposedController::new(ProposedTiming {
            chain_len: design.chain_len() as u64,
            save_cycles: 1,
            wake_settle_cycles: 4,
            sample_during_decode: design.monitor.code.streaming_check(),
        });
        let mut rt = ProtectedRuntime {
            design,
            sim,
            ctrl,
            domain,
            sleep_cycles: 4,
            obs: None,
        };
        rt.apply(rt.ctrl.outputs());
        rt.sim.settle();
        rt
    }

    /// Starts recording onto `rec`: every
    /// [`sleep_wake`](Self::sleep_wake) emits the Fig. 3(b) phase
    /// sequence as spans on [`Lane::Controller`] — each span closed with
    /// its cycle count, switching energy and toggle count — plus an
    /// instant mark at the rush-current upset, and the underlying
    /// simulator streams its incremental-settle metrics (see
    /// [`Simulator::attach_obs`]). The report is unchanged: observation
    /// never perturbs simulation.
    pub fn attach_obs(&mut self, rec: Arc<Recorder>) {
        self.sim.attach_obs(&rec);
        self.obs = Some(rec);
    }

    /// Access to the underlying simulator (drive functional ports, read
    /// outputs, force state).
    pub fn sim_mut(&mut self) -> &mut Simulator<'a> {
        &mut self.sim
    }

    /// Read access to the underlying simulator.
    #[must_use]
    pub fn sim(&self) -> &Simulator<'a> {
        &self.sim
    }

    /// The scan chains (for upset hooks and state inspection).
    #[must_use]
    pub fn chains(&self) -> &ScanChains {
        &self.design.chains
    }

    /// The protected design this runtime executes.
    #[must_use]
    pub fn design(&self) -> &'a ProtectedDesign {
        self.design
    }

    /// The controller's current phase.
    #[must_use]
    pub fn phase(&self) -> MonPhase {
        self.ctrl.phase()
    }

    /// Sets how many cycles the design stays in `Sleep` per
    /// [`sleep_wake`](Self::sleep_wake) (default 4).
    pub fn set_sleep_cycles(&mut self, cycles: u64) {
        self.sleep_cycles = cycles.max(1);
    }

    /// One functional clock cycle (controller must be in `Active`).
    ///
    /// # Panics
    ///
    /// Panics if called outside the `Active` phase.
    pub fn functional_step(&mut self) {
        assert_eq!(
            self.ctrl.phase(),
            MonPhase::Active,
            "functional stepping only in Active"
        );
        self.sim.step();
    }

    /// Fills every scan flop with reproducible pseudo-random state — the
    /// generic "circuit has been computing" precondition the cost
    /// measurements use.
    pub fn load_random_state(&mut self, seed: u64) {
        let mut lfsr = Lfsr::maximal(24, seed);
        let state: Vec<Vec<Logic>> = self
            .design
            .chains
            .chains
            .iter()
            .map(|c| (0..c.len()).map(|_| Logic::from(lfsr.next_bit())).collect())
            .collect();
        self.design.chains.load(&mut self.sim, &state);
        self.sim.settle();
    }

    fn apply(&mut self, out: MonOutputs) {
        let d = self.design;
        self.sim.set_net(d.chains.se, Logic::from(out.se));
        self.sim.set_net(d.monitor.mon_en, Logic::from(out.mon_en));
        self.sim
            .set_net(d.monitor.mon_decode, Logic::from(out.mon_decode));
        self.sim
            .set_net(d.monitor.mon_clear, Logic::from(out.mon_clear));
        if let Some(cap) = d.monitor.sig_cap {
            self.sim.set_net(cap, Logic::from(out.sig_cap));
        }
        self.sim.set_retain(self.domain, out.retain);
        self.sim.set_power(self.domain, out.power_on);
        self.sim.set_clock_enable(self.domain, out.pgc_clock);
    }

    /// Runs one full sleep/wake sequence. `upset` is invoked once, at the
    /// instant the power switches close (the rush-current window), with
    /// the simulator and chain topology; it should flip retention latches
    /// (e.g. via [`Simulator::flip_retention`]) and return how many bits
    /// it flipped.
    ///
    /// # Panics
    ///
    /// Panics if called outside the `Active` phase, or if the controller
    /// fails to return to `Active` (an FSM bug).
    pub fn sleep_wake<F>(&mut self, mut upset: F) -> SleepWakeReport
    where
        F: FnMut(&mut Simulator<'_>, &ScanChains) -> usize,
    {
        assert_eq!(self.ctrl.phase(), MonPhase::Active, "must start Active");
        let snapshot = self.design.chains.snapshot(&self.sim);
        let _ = self.sim.take_energy();

        let mut report = SleepWakeReport {
            upsets: 0,
            error_observed: false,
            done_observed: false,
            residual_errors: 0,
            encode: EnergyWindow::default(),
            decode: EnergyWindow::default(),
            total_cycles: 0,
        };
        let mut slept = 0u64;
        let mut last = MonPhase::Active;
        let mut plog = PhaseLog::new(Lane::Controller);
        let budget = 20 * self.design.chain_len() as u64 + self.sleep_cycles + 200;
        for _ in 0..budget {
            let sleep_req = slept < self.sleep_cycles;
            let out = self.ctrl.tick(sleep_req);
            let phase = self.ctrl.phase();
            // Energy window boundaries: taking the window at *every*
            // phase change partitions the run per phase; the encode and
            // decode windows still span exactly the `l` shift cycles,
            // matching the paper's definition of encoding/decoding
            // power (the clear/capture bookkeeping cycles land in their
            // own windows, as before).
            if phase != last {
                let window = self.sim.take_energy();
                match last {
                    MonPhase::Encode => report.encode = window,
                    MonPhase::Decode => report.decode = window,
                    _ => {}
                }
                if let Some(rec) = &self.obs {
                    plog.transition(rec, phase.name(), report.total_cycles, energy_args(&window));
                }
            }
            self.apply(out);
            if last == MonPhase::Sleep && phase == MonPhase::PowerUp {
                report.upsets = upset(&mut self.sim, &self.design.chains);
                if let Some(rec) = &self.obs {
                    rec.instant(
                        Lane::Controller,
                        "rush_upset",
                        report.total_cycles,
                        vec![arg("flips", report.upsets)],
                    );
                }
            }
            if phase == MonPhase::Sleep {
                slept += 1;
            }
            self.sim.settle();
            if out.sample_err && self.sim.value(self.design.monitor.err) == Logic::One {
                report.error_observed = true;
            }
            if phase == MonPhase::Check && self.sim.value(self.design.monitor.done) == Logic::One {
                report.done_observed = true;
            }
            self.sim.step();
            report.total_cycles += 1;
            last = phase;
            if phase == MonPhase::Check {
                // Next tick returns to Active; close out there.
                let out = self.ctrl.tick(false);
                assert_eq!(self.ctrl.phase(), MonPhase::Active, "FSM must close");
                let window = self.sim.take_energy();
                self.apply(out);
                self.sim.settle();
                let after = self.design.chains.snapshot(&self.sim);
                report.residual_errors = snapshot
                    .iter()
                    .flatten()
                    .zip(after.iter().flatten())
                    .filter(|(a, b)| a != b)
                    .count();
                if let Some(rec) = &self.obs {
                    plog.finish(rec, report.total_cycles, energy_args(&window));
                    rec.instant(
                        Lane::Controller,
                        "sleep_wake.done",
                        report.total_cycles,
                        vec![
                            arg("upsets", report.upsets),
                            arg("residual_errors", report.residual_errors),
                            arg("error_observed", u64::from(report.error_observed)),
                        ],
                    );
                }
                return report;
            }
        }
        panic!("controller failed to return to Active within {budget} cycles");
    }
}

/// The closing arguments of one phase span: what the window of cycles
/// spent in it cost (the span's `cycles` count is attached by the
/// phase log itself).
fn energy_args(window: &EnergyWindow) -> Vec<(String, ArgValue)> {
    vec![
        arg("energy_pj", window.dynamic_pj),
        arg("toggles", window.toggles),
    ]
}

#[cfg(test)]
mod tests {

    use crate::{CodeChoice, Synthesizer};
    use scanguard_netlist::{Netlist, NetlistBuilder};

    fn regs(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new("regs");
        for i in 0..n {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            b.output(&format!("q[{i}]"), q);
        }
        b.finish().unwrap()
    }

    fn hamming_design(ffs: usize, chains: usize) -> crate::ProtectedDesign {
        Synthesizer::new(regs(ffs))
            .chains(chains)
            .code(CodeChoice::hamming7_4())
            .build()
            .unwrap()
    }

    #[test]
    fn quiet_wake_preserves_state() {
        let d = hamming_design(16, 4);
        let mut rt = d.runtime();
        rt.load_random_state(3);
        let rep = rt.sleep_wake(|_, _| 0);
        assert!(rep.state_intact());
        assert!(!rep.error_observed);
        assert!(rep.done_observed, "sequencers must reach terminal count");
        assert!(rep.encode.cycles > 0 && rep.decode.cycles > 0);
    }

    #[test]
    fn single_upset_is_corrected_and_reported() {
        let d = hamming_design(16, 4);
        let mut rt = d.runtime();
        rt.load_random_state(11);
        let rep = rt.sleep_wake(|sim, chains| {
            sim.flip_retention(chains.chains[1].cells[2]);
            1
        });
        assert_eq!(rep.upsets, 1);
        assert!(rep.error_observed, "the error must be reported");
        assert!(rep.state_intact(), "and corrected");
    }

    #[test]
    fn each_chain_and_depth_corrects_under_hamming() {
        let d = hamming_design(16, 4);
        let mut rt = d.runtime();
        for chain in 0..4 {
            for depth in 0..4 {
                rt.load_random_state(100 + (chain * 4 + depth) as u64);
                let rep = rt.sleep_wake(|sim, chains| {
                    sim.flip_retention(chains.chains[chain].cells[depth]);
                    1
                });
                assert!(rep.error_observed, "({chain},{depth}) not reported");
                assert!(rep.state_intact(), "({chain},{depth}) not corrected");
            }
        }
    }

    #[test]
    fn crc_detects_but_does_not_correct() {
        let d = Synthesizer::new(regs(16))
            .chains(4)
            .code(CodeChoice::crc16())
            .build()
            .unwrap();
        let mut rt = d.runtime();
        rt.load_random_state(5);
        let rep = rt.sleep_wake(|sim, chains| {
            sim.flip_retention(chains.chains[0].cells[1]);
            1
        });
        assert!(rep.error_observed, "CRC must detect the upset");
        assert_eq!(rep.residual_errors, 1, "detection-only leaves the flip");
    }

    #[test]
    fn burst_defeats_plain_hamming_but_is_noticed() {
        // Two upsets in the same word (same depth, chains 0 and 1 of the
        // same group) — the paper's Sec. IV second experiment.
        let d = hamming_design(16, 4);
        let mut rt = d.runtime();
        rt.load_random_state(9);
        let rep = rt.sleep_wake(|sim, chains| {
            sim.flip_retention(chains.chains[0].cells[1]);
            sim.flip_retention(chains.chains[1].cells[1]);
            2
        });
        assert!(rep.error_observed, "the burst must at least be detected");
        assert!(
            !rep.state_intact(),
            "plain Hamming cannot heal a double error in one word"
        );
    }

    #[test]
    fn secded_never_miscorrects_doubles() {
        let d = Synthesizer::new(regs(16))
            .chains(4)
            .code(CodeChoice::ExtendedHamming { m: 3 })
            .build()
            .unwrap();
        let mut rt = d.runtime();
        rt.load_random_state(13);
        let rep = rt.sleep_wake(|sim, chains| {
            sim.flip_retention(chains.chains[2].cells[0]);
            sim.flip_retention(chains.chains[3].cells[0]);
            2
        });
        assert!(rep.error_observed);
        assert_eq!(
            rep.residual_errors, 2,
            "SEC-DED leaves exactly the two flips (no third miscorrected bit)"
        );
    }

    #[test]
    fn functional_step_requires_active() {
        let d = hamming_design(8, 4);
        let mut rt = d.runtime();
        rt.functional_step(); // fine in Active
        let rep = rt.sleep_wake(|_, _| 0);
        assert!(rep.state_intact());
        rt.functional_step(); // fine again after the cycle closes
    }
}
