//! Configuration of the protection flow — the "configuration file" input
//! of the paper's Fig. 4 synthesis flow.

use scanguard_codes::{BlockCode, Crc, EvenParity, ExtendedHamming, Hamming};

/// Which detection/correction code the state monitoring blocks implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CodeChoice {
    /// CRC-16/CCITT detection: a single monitor block whose unrolled
    /// update network takes one bit from *every* chain per cycle (a CRC
    /// engine's input width is free, unlike a Hamming block's).
    Crc16,
    /// Hamming single-error correction with `m` parity bits; each
    /// monitor block consumes `k = 2^m - 1 - m` chains.
    Hamming {
        /// Parity bits (3 => (7,4) ... 6 => (63,57)).
        m: u32,
    },
    /// Extended Hamming (SEC-DED): corrects singles, *detects* all
    /// doubles instead of miscorrecting them.
    ExtendedHamming {
        /// Parity bits of the base code.
        m: u32,
    },
    /// Even parity detection, one monitor block per `group_width`
    /// chains: the cheapest detector (catches odd-weight upsets only);
    /// its parity store grows with the state size where CRC's is flat.
    Parity {
        /// Chains per monitor block.
        group_width: usize,
    },
}

impl CodeChoice {
    /// The paper's Table I configuration.
    #[must_use]
    pub fn crc16() -> Self {
        CodeChoice::Crc16
    }

    /// The paper's Table II configuration: Hamming(7,4).
    #[must_use]
    pub fn hamming7_4() -> Self {
        CodeChoice::Hamming { m: 3 }
    }

    /// Chains consumed per monitor block (the divisibility constraint
    /// the synthesizer enforces). A CRC block spans any number of
    /// chains, so it imposes none (returns 1).
    #[must_use]
    pub fn group_width(&self) -> usize {
        match *self {
            CodeChoice::Crc16 => 1,
            CodeChoice::Parity { group_width } => group_width,
            CodeChoice::Hamming { m } | CodeChoice::ExtendedHamming { m } => {
                ((1usize << m) - 1) - m as usize
            }
        }
    }

    /// `true` when the monitor's error output is a per-cycle (streaming)
    /// comparison, valid on every decode cycle — Hamming syndromes and
    /// parity mismatches. CRC compares a signature once, at the final
    /// check.
    #[must_use]
    pub fn streaming_check(&self) -> bool {
        !matches!(self, CodeChoice::Crc16)
    }

    /// `true` for correcting codes.
    #[must_use]
    pub fn corrects(&self) -> bool {
        matches!(
            self,
            CodeChoice::Hamming { .. } | CodeChoice::ExtendedHamming { .. }
        )
    }

    /// Instantiates the block code behind a correcting choice, or `None`
    /// for CRC (a stream code, not a block code).
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`](scanguard_codes::CodeError) for
    /// unsupported Hamming orders.
    pub fn block_code(&self) -> Result<Option<Box<dyn BlockCode>>, scanguard_codes::CodeError> {
        Ok(match *self {
            CodeChoice::Crc16 => None,
            CodeChoice::Parity { group_width } => {
                Some(Box::new(EvenParity::new(group_width as u32)))
            }
            CodeChoice::Hamming { m } => Some(Box::new(Hamming::new(m)?)),
            CodeChoice::ExtendedHamming { m } => {
                Some(Box::new(ExtendedHamming::new(Hamming::new(m)?)))
            }
        })
    }

    /// The CRC spec behind a detection choice, or `None`.
    #[must_use]
    pub fn crc(&self) -> Option<Crc> {
        match self {
            CodeChoice::Crc16 => Some(Crc::crc16_ccitt()),
            _ => None,
        }
    }

    /// Display name matching the paper's tables.
    #[must_use]
    pub fn name(&self) -> String {
        match *self {
            CodeChoice::Crc16 => "CRC-16".to_owned(),
            CodeChoice::Hamming { m } => {
                let n = (1u32 << m) - 1;
                format!("Hamming({},{})", n, n - m)
            }
            CodeChoice::ExtendedHamming { m } => {
                let n = (1u32 << m) - 1;
                format!("ExtHamming({},{})", n + 1, n - m)
            }
            CodeChoice::Parity { group_width } => {
                format!("Parity({},{group_width})", group_width + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_widths_match_code_data_widths() {
        assert_eq!(CodeChoice::crc16().group_width(), 1);
        assert_eq!(CodeChoice::hamming7_4().group_width(), 4);
        assert_eq!(CodeChoice::Hamming { m: 4 }.group_width(), 11);
        assert_eq!(CodeChoice::Hamming { m: 6 }.group_width(), 57);
        assert_eq!(CodeChoice::ExtendedHamming { m: 3 }.group_width(), 4);
    }

    #[test]
    fn names_match_tables() {
        assert_eq!(CodeChoice::crc16().name(), "CRC-16");
        assert_eq!(CodeChoice::hamming7_4().name(), "Hamming(7,4)");
        assert_eq!(CodeChoice::Hamming { m: 6 }.name(), "Hamming(63,57)");
        assert_eq!(
            CodeChoice::ExtendedHamming { m: 3 }.name(),
            "ExtHamming(8,4)"
        );
    }

    #[test]
    fn classification() {
        assert!(!CodeChoice::crc16().corrects());
        assert!(!CodeChoice::Parity { group_width: 4 }.corrects());
        assert!(CodeChoice::hamming7_4().corrects());
        assert!(CodeChoice::hamming7_4().streaming_check());
        assert!(CodeChoice::Parity { group_width: 4 }.streaming_check());
        assert!(!CodeChoice::crc16().streaming_check());
        assert!(CodeChoice::crc16().crc().is_some());
        assert!(CodeChoice::hamming7_4().crc().is_none());
        assert!(CodeChoice::hamming7_4().block_code().unwrap().is_some());
        assert!(CodeChoice::crc16().block_code().unwrap().is_none());
    }
}
