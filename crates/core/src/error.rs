//! Error type of the protection flow.

use std::fmt;

/// Errors raised by the reliability-aware synthesizer and runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The chain count is not a multiple of the code's group width, so
    /// monitor blocks cannot take one bit per chain (paper Sec. III pairs
    /// `W` with the code's data width: 56 chains for (7,4), 55 for
    /// (15,11), ...).
    ChainsNotGroupable {
        /// Requested chain count.
        chains: usize,
        /// The code's data width (bits consumed per cycle per block).
        group_width: usize,
    },
    /// A DFT pass failed.
    Dft(scanguard_dft::DftError),
    /// A netlist edit failed.
    Netlist(scanguard_netlist::NetlistError),
    /// A code could not be constructed.
    Code(scanguard_codes::CodeError),
    /// The linted build gate found Error-severity rule violations
    /// (see [`Synthesizer::build_linted`](crate::Synthesizer::build_linted)).
    Lint(scanguard_lint::LintReport),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ChainsNotGroupable {
                chains,
                group_width,
            } => write!(
                f,
                "chain count {chains} is not a multiple of the code group width {group_width}"
            ),
            CoreError::Dft(e) => write!(f, "scan insertion failed: {e}"),
            CoreError::Netlist(e) => write!(f, "netlist edit failed: {e}"),
            CoreError::Code(e) => write!(f, "code construction failed: {e}"),
            CoreError::Lint(report) => {
                write!(f, "lint gate failed: {}", report.summary())?;
                for d in report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == scanguard_lint::Severity::Error)
                    .take(3)
                {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dft(e) => Some(e),
            CoreError::Netlist(e) => Some(e),
            CoreError::Code(e) => Some(e),
            CoreError::ChainsNotGroupable { .. } | CoreError::Lint(_) => None,
        }
    }
}

impl From<scanguard_dft::DftError> for CoreError {
    fn from(e: scanguard_dft::DftError) -> Self {
        CoreError::Dft(e)
    }
}

impl From<scanguard_netlist::NetlistError> for CoreError {
    fn from(e: scanguard_netlist::NetlistError) -> Self {
        CoreError::Netlist(e)
    }
}

impl From<scanguard_codes::CodeError> for CoreError {
    fn from(e: scanguard_codes::CodeError) -> Self {
        CoreError::Code(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::ChainsNotGroupable {
            chains: 10,
            group_width: 4,
        };
        assert!(e.to_string().contains("10"));
        let e: CoreError = scanguard_dft::DftError::NoFlipFlops.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
