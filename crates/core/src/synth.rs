//! The reliability-aware synthesis flow — paper Fig. 4.
//!
//! Input: a conventional design netlist plus a configuration (chain
//! count, code choice, optional manufacturing-test width). The
//! [`Synthesizer`] then (1) inserts retention-scan chains, (2) pads them
//! to equal length, (3) generates the state monitoring and error
//! correction logic, (4) adds the Fig. 5(b) test-mode concatenation and
//! (5) optionally the Fig. 6 error injector — producing a
//! [`ProtectedDesign`] ready for simulation and cost measurement.

use crate::{attach_monitor, CodeChoice, CoreError, MonitorHardware, ProtectedRuntime};
use scanguard_dft::{
    attach_injector, configure_test_mode, insert_scan, Injector, ScanChains, ScanConfig,
    TestModeConfig,
};
use scanguard_lint::{lint_design, DesignView, LintReport, MonitorKind, MonitorView, RuleSet};
use scanguard_netlist::{critical_path, AreaReport, CellLibrary, GateKind, Netlist, TimingReport};
use scanguard_obs::Recorder;

/// A design processed by the reliability-aware synthesizer.
#[derive(Debug, Clone)]
pub struct ProtectedDesign {
    /// The full netlist: power-gated circuit + always-on monitor.
    pub netlist: Netlist,
    /// The scan chain topology (after padding).
    pub chains: ScanChains,
    /// The monitor hardware handle.
    pub monitor: MonitorHardware,
    /// Manufacturing-test concatenation, when configured.
    pub test_mode: Option<TestModeConfig>,
    /// Gate-level error injector, when configured.
    pub injector: Option<Injector>,
    /// Cells with index below this belong to the power-gated domain;
    /// cells at or above it (monitor, overlays) are always-on.
    pub gated_watermark: usize,
    /// Area/leakage of the scanned design *before* monitor insertion —
    /// the baseline of the paper's overhead percentages.
    pub baseline: AreaReport,
    /// Critical-path report of the scanned design *before* monitor
    /// insertion — the reference for the paper's "no impact on the
    /// functional critical path" claim (lint rule SG301).
    pub baseline_timing: TimingReport,
    /// Area/leakage *after* monitor and test-mode insertion (the
    /// injector, a testbench artefact, is excluded).
    pub protected: AreaReport,
    /// The cell library costs are measured against.
    pub library: CellLibrary,
    /// Clock frequency used for latency/power figures, MHz.
    pub clock_mhz: f64,
}

impl ProtectedDesign {
    /// Monitor area overhead in percent — the `%` column of the paper's
    /// Tables I–III.
    #[must_use]
    pub fn area_overhead_pct(&self) -> f64 {
        self.protected.overhead_pct_vs(&self.baseline)
    }

    /// Chain length `l` after padding.
    #[must_use]
    pub fn chain_len(&self) -> usize {
        self.chains.max_len()
    }

    /// Encode/decode latency `l x T` in ns — the `t(ns)` column of
    /// Tables I/II.
    #[must_use]
    pub fn latency_ns(&self) -> f64 {
        self.chain_len() as f64 * 1000.0 / self.clock_mhz
    }

    /// Builds a runtime (simulator + proposed controller) over this
    /// design.
    #[must_use]
    pub fn runtime(&self) -> ProtectedRuntime<'_> {
        ProtectedRuntime::new(self)
    }

    /// The design metadata the linter's scan/power/claim rules need —
    /// chains, monitor cells, the domain watermark and the pre-monitor
    /// timing baseline.
    #[must_use]
    pub fn lint_view(&self) -> DesignView<'_> {
        let mh = &self.monitor;
        let kind = match mh.code {
            CodeChoice::Hamming { .. } => MonitorKind::Hamming { extended: false },
            CodeChoice::ExtendedHamming { .. } => MonitorKind::Hamming { extended: true },
            CodeChoice::Parity { .. } => MonitorKind::Parity,
            CodeChoice::Crc16 => MonitorKind::Crc16,
        };
        let monitor = (!mh.groups.is_empty()).then(|| MonitorView {
            kind,
            groups: mh.groups.len(),
            group_stride: if mh.groups.len() > 1 {
                mh.groups[1].first_chain - mh.groups[0].first_chain
            } else {
                self.chains.width()
            },
            group_data_chains: mh.groups[0].width,
            mon_en: mh.mon_en,
            mon_decode: mh.mon_decode,
            mon_clear: mh.mon_clear,
            sig_cap: mh.sig_cap,
            err: mh.err,
            done: mh.done,
            chain_len: mh.chain_len,
        });
        DesignView {
            chains: &self.chains,
            test_mode: self.test_mode.as_ref(),
            monitor_cells: &self.monitor.cells,
            monitor,
            gated_watermark: self.gated_watermark,
            baseline_functional_ps: Some(self.baseline_timing.functional_ps),
        }
    }

    /// Runs the given lint rules over this design (structural and
    /// design-level families).
    #[must_use]
    pub fn lint(&self, rules: &RuleSet, rec: Option<&Recorder>) -> LintReport {
        lint_design(&self.netlist, &self.library, self.lint_view(), rules, rec)
    }
}

/// Builder for the synthesis flow.
///
/// # Examples
///
/// ```
/// use scanguard_core::{CodeChoice, Synthesizer};
/// use scanguard_designs::Fifo;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fifo = Fifo::generate(8, 8);
/// let design = Synthesizer::new(fifo.netlist)
///     .chains(8)
///     .code(CodeChoice::hamming7_4())
///     .build()?;
/// assert!(design.area_overhead_pct() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Synthesizer {
    netlist: Netlist,
    chains: usize,
    code: CodeChoice,
    test_width: Option<usize>,
    injector: bool,
    clock_mhz: f64,
    library: CellLibrary,
}

impl Synthesizer {
    /// Starts a flow over a conventional design netlist.
    #[must_use]
    pub fn new(netlist: Netlist) -> Self {
        Synthesizer {
            netlist,
            chains: 4,
            code: CodeChoice::crc16(),
            test_width: None,
            injector: false,
            clock_mhz: 100.0,
            library: CellLibrary::st120nm(),
        }
    }

    /// Sets the scan chain count `W`.
    #[must_use]
    pub fn chains(mut self, chains: usize) -> Self {
        self.chains = chains;
        self
    }

    /// Sets the monitoring code.
    #[must_use]
    pub fn code(mut self, code: CodeChoice) -> Self {
        self.code = code;
        self
    }

    /// Enables the Fig. 5(b) manufacturing-test concatenation with the
    /// given test I/O width.
    #[must_use]
    pub fn test_width(mut self, width: usize) -> Self {
        self.test_width = Some(width);
        self
    }

    /// Attaches the Fig. 6 gate-level error injector (testbench use).
    #[must_use]
    pub fn with_injector(mut self, yes: bool) -> Self {
        self.injector = yes;
        self
    }

    /// Sets the clock frequency in MHz (default 100, as in the paper).
    #[must_use]
    pub fn clock_mhz(mut self, mhz: f64) -> Self {
        self.clock_mhz = mhz;
        self
    }

    /// Overrides the cell library.
    #[must_use]
    pub fn library(mut self, library: CellLibrary) -> Self {
        self.library = library;
        self
    }

    /// Runs the flow.
    ///
    /// # Errors
    ///
    /// Propagates scan-insertion, grouping, code and netlist errors as
    /// [`CoreError`].
    pub fn build(self) -> Result<ProtectedDesign, CoreError> {
        let Synthesizer {
            mut netlist,
            chains,
            code,
            test_width,
            injector,
            clock_mhz,
            library,
        } = self;

        // (1) Scan insertion with retention-scan flops.
        let mut scan = insert_scan(&mut netlist, &ScanConfig::retention_with_chains(chains))?;

        // (2) Pad shorter chains with dummy retention-scan flops at the
        // scan-in end so every chain has length l (real flows balance or
        // pad chains the same way; the dummies live in the gated domain).
        let l = scan.max_len();
        let mut tie = None;
        for (k, chain) in scan.chains.iter_mut().enumerate() {
            let missing = l - chain.len();
            if missing == 0 {
                continue;
            }
            let tie = *tie.get_or_insert_with(|| netlist.add_cell(GateKind::TieLo, vec![], None).0);
            let first_real = chain.cells[0];
            let mut prev = chain.si;
            let mut pads = Vec::with_capacity(missing);
            for p in 0..missing {
                let (q, id) = netlist.add_cell(
                    GateKind::Rsdff,
                    vec![tie, prev, scan.se],
                    Some(&format!("pad{k}_{p}")),
                );
                pads.push(id);
                prev = q;
            }
            netlist.set_cell_input(first_real, 1, prev);
            pads.extend_from_slice(&chain.cells);
            chain.cells = pads;
        }
        netlist.revalidate()?;

        // (3) Baseline snapshot (area *and* timing — the critical-path
        // reference the lint claim rules compare against), then monitor
        // generation.
        let gated_watermark = netlist.cell_count();
        let baseline = AreaReport::of(&netlist, &library);
        let baseline_timing = critical_path(&netlist, &library);
        let monitor = attach_monitor(&mut netlist, &scan, code)?;

        // (4) Manufacturing-test concatenation.
        let test_mode = match test_width {
            Some(w) => Some(configure_test_mode(&mut netlist, &scan, w)?),
            None => None,
        };
        let protected = AreaReport::of(&netlist, &library);

        // (5) Error injector (excluded from cost reports).
        let injector = if injector {
            Some(attach_injector(&mut netlist, &scan)?)
        } else {
            None
        };

        Ok(ProtectedDesign {
            netlist,
            chains: scan,
            monitor,
            test_mode,
            injector,
            gated_watermark,
            baseline,
            baseline_timing,
            protected,
            library,
            clock_mhz,
        })
    }

    /// Runs the flow, then gates the result on the full lint rule set:
    /// any Error-severity diagnostic fails the build with
    /// [`CoreError::Lint`] carrying the report. The opt-in way to catch
    /// a bad synthesizer change (or a hostile input netlist) before it
    /// reaches simulation.
    ///
    /// # Errors
    ///
    /// Everything [`Synthesizer::build`] returns, plus
    /// [`CoreError::Lint`] when the linted design violates a rule at
    /// Error severity.
    pub fn build_linted(self) -> Result<ProtectedDesign, CoreError> {
        let design = self.build()?;
        let report = design.lint(&RuleSet::all(), None);
        if report.error_count() > 0 {
            return Err(CoreError::Lint(report));
        }
        Ok(design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanguard_designs::Fifo;
    use scanguard_netlist::NetlistBuilder;

    fn regs(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new("regs");
        for i in 0..n {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            b.output(&format!("q[{i}]"), q);
        }
        b.finish().unwrap()
    }

    #[test]
    fn padding_equalizes_chain_lengths() {
        // 10 flops in 4 chains: balanced split is 3,3,2,2 -> pad to 3.
        let d = Synthesizer::new(regs(10))
            .chains(4)
            .code(CodeChoice::hamming7_4())
            .build()
            .unwrap();
        assert!(d.chains.chains.iter().all(|c| c.len() == 3));
        assert_eq!(d.chain_len(), 3);
        // 10 real flops + 2 pads + parity store + the block sequencer's
        // ceil(log2(l+1)) = 2 counter bits.
        assert_eq!(d.netlist.ff_count(), 12 + d.monitor.store_bits + 2);
    }

    #[test]
    fn overhead_is_positive_and_latency_matches_l() {
        let d = Synthesizer::new(regs(16))
            .chains(4)
            .code(CodeChoice::hamming7_4())
            .clock_mhz(100.0)
            .build()
            .unwrap();
        assert!(d.area_overhead_pct() > 0.0);
        assert_eq!(d.chain_len(), 4);
        assert!((d.latency_ns() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn ungroupable_chain_count_is_rejected() {
        let err = Synthesizer::new(regs(16))
            .chains(6)
            .code(CodeChoice::hamming7_4())
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::ChainsNotGroupable { .. }));
    }

    #[test]
    fn overlays_attach_in_order() {
        let d = Synthesizer::new(regs(16))
            .chains(8)
            .code(CodeChoice::crc16())
            .test_width(4)
            .with_injector(true)
            .build()
            .unwrap();
        assert!(d.test_mode.is_some());
        assert!(d.injector.is_some());
        // Injector ports exist but its gates are not in the cost reports.
        assert!(d.netlist.port("inj_col").is_ok());
        assert!(d.protected.cell_count < d.netlist.cell_count());
    }

    #[test]
    fn fifo_hamming_overhead_is_dominated_by_parity_store() {
        // (7,4) parity store = 3/4 of the flop count; the overhead must
        // exceed 25% of baseline by construction.
        let fifo = Fifo::generate(16, 16);
        let d = Synthesizer::new(fifo.netlist)
            .chains(4)
            .code(CodeChoice::hamming7_4())
            .build()
            .unwrap();
        assert!(
            d.area_overhead_pct() > 25.0,
            "got {:.1}%",
            d.area_overhead_pct()
        );
        // CRC on the same design costs far less (its storage is two
        // 16-bit registers per block instead of 3/4 of the state).
        let fifo = Fifo::generate(16, 16);
        let dc = Synthesizer::new(fifo.netlist)
            .chains(4)
            .code(CodeChoice::crc16())
            .build()
            .unwrap();
        assert!(dc.area_overhead_pct() < d.area_overhead_pct() / 2.0);
    }

    #[test]
    fn gated_watermark_splits_pgc_from_monitor() {
        let d = Synthesizer::new(regs(8))
            .chains(4)
            .code(CodeChoice::hamming7_4())
            .build()
            .unwrap();
        for &cell in &d.monitor.cells {
            assert!(cell.index() >= d.gated_watermark);
        }
        for chain in &d.chains.chains {
            for &cell in &chain.cells {
                assert!(cell.index() < d.gated_watermark);
            }
        }
    }
}
