//! The state monitoring and error correction blocks — paper Fig. 2,
//! generated as real gates.
//!
//! [`attach_monitor`] wires monitor hardware into a scanned netlist:
//!
//! * **Hamming / extended Hamming blocks** (one per `k` chains): XOR
//!   parity trees over the group's scan-outs, an always-on parity store
//!   (`parity_width x l` scan-register bits — the dominant area term that
//!   produces the paper's Table II/III overheads), a syndrome decoder,
//!   and per-chain correction XORs feeding the corrected stream back into
//!   the scan-ins;
//! * **CRC-16 blocks** (one per `group_width` chains): a
//!   `group_width`-bit-parallel CRC register, a signature register
//!   captured at the end of encoding, and a comparator;
//! * a per-block **sequencer** (cycle counter + terminal-count decode),
//!   the block-local control the paper's Fig. 5(a) monitor blocks carry.
//!
//! Control ports (always-on domain): `mon_en` (shift/update enable),
//! `mon_decode` (0 = encode, 1 = decode/correct), `mon_clear` (sequencer
//! and CRC re-init), `mon_sig_cap` (CRC signature capture). Status
//! outputs: `mon_err` (raw mismatch OR — sample during decode for
//! Hamming, at the final check for CRC) and `mon_done` (every block's
//! sequencer reached `l`).

use crate::{CodeChoice, CoreError};
use scanguard_codes::{BlockCode, Hamming};
use scanguard_dft::ScanChains;
use scanguard_netlist::{CellId, GateKind, NetId, Netlist};

/// One monitor block and the chains it watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MonitorGroup {
    /// Index of the first chain of the group.
    pub first_chain: usize,
    /// Number of chains (the code's data width).
    pub width: usize,
}

/// Handle to the generated monitor hardware.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MonitorHardware {
    /// The configured code.
    pub code: CodeChoice,
    /// One entry per monitor block.
    pub groups: Vec<MonitorGroup>,
    /// Shift/update enable input.
    pub mon_en: NetId,
    /// Mode input: 0 = encode, 1 = decode (enables correction).
    pub mon_decode: NetId,
    /// Sequencer / CRC re-init input.
    pub mon_clear: NetId,
    /// CRC signature capture input (`None` for Hamming monitors).
    pub sig_cap: Option<NetId>,
    /// Raw mismatch indicator output net.
    pub err: NetId,
    /// All-sequencers-at-terminal-count output net.
    pub done: NetId,
    /// Every cell instantiated by the monitor (always-on domain).
    pub cells: Vec<CellId>,
    /// Total always-on parity/signature storage bits.
    pub store_bits: usize,
    /// Chain length `l` the blocks are sized for.
    pub chain_len: usize,
}

impl MonitorHardware {
    /// The monitor's control input port names, as the `hold_low` list a
    /// manufacturing-test run should pin to 0. Only ports this monitor
    /// actually has are named (`mon_sig_cap` exists on CRC monitors
    /// only) — the fault simulator rejects unknown names loudly.
    #[must_use]
    pub fn hold_low_ports(&self) -> Vec<String> {
        let mut ports = vec!["mon_en".into(), "mon_decode".into(), "mon_clear".into()];
        if self.sig_cap.is_some() {
            ports.push("mon_sig_cap".into());
        }
        ports
    }
}

/// Gate-construction helper: tracks the cells it creates.
struct Gen<'a> {
    nl: &'a mut Netlist,
    cells: Vec<CellId>,
}

impl<'a> Gen<'a> {
    fn cell(&mut self, kind: GateKind, inputs: Vec<NetId>) -> NetId {
        let (net, id) = self.nl.add_cell(kind, inputs, None);
        self.cells.push(id);
        net
    }

    fn named(&mut self, name: &str, kind: GateKind, inputs: Vec<NetId>) -> NetId {
        let (net, id) = self.nl.add_cell(kind, inputs, Some(name));
        self.cells.push(id);
        net
    }

    fn not(&mut self, a: NetId) -> NetId {
        self.cell(GateKind::Not, vec![a])
    }

    fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.cell(GateKind::Xor2, vec![a, b])
    }

    fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.cell(GateKind::And2, vec![a, b])
    }

    fn mux2(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.cell(GateKind::Mux2, vec![sel, a, b])
    }

    fn reduce(&mut self, nets: &[NetId], two: GateKind, three: GateKind, empty: GateKind) -> NetId {
        match nets.len() {
            0 => self.cell(empty, vec![]),
            1 => nets[0],
            _ => {
                let mut level = nets.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len() / 2 + 1);
                    let mut chunks = level.chunks_exact(3);
                    for c in &mut chunks {
                        next.push(self.cell(three, vec![c[0], c[1], c[2]]));
                    }
                    match chunks.remainder() {
                        [a] => next.push(*a),
                        [a, b] => next.push(self.cell(two, vec![*a, *b])),
                        _ => {}
                    }
                    level = next;
                }
                level[0]
            }
        }
    }

    fn xor_tree(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, GateKind::Xor2, GateKind::Xor3, GateKind::TieLo)
    }

    fn or_tree(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, GateKind::Or2, GateKind::Or3, GateKind::TieLo)
    }

    fn and_tree(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, GateKind::And2, GateKind::And3, GateKind::TieHi)
    }

    /// AND of literals matching `bits == value` (complemented where the
    /// value bit is 0).
    fn equals_const(&mut self, bits: &[NetId], value: u64) -> NetId {
        let lits: Vec<NetId> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if (value >> i) & 1 == 1 {
                    b
                } else {
                    self.not(b)
                }
            })
            .collect();
        self.and_tree(&lits)
    }
}

/// The per-block sequencer: an `mon_en`-gated cycle counter with a
/// terminal-count (`== l`) decode — the block-local control logic of the
/// paper's Fig. 5(a) monitor blocks.
fn build_sequencer(
    g: &mut Gen<'_>,
    tag: &str,
    mon_en: NetId,
    mon_clear: NetId,
    zero: NetId,
    chain_len: usize,
) -> NetId {
    let bits = (usize::BITS - chain_len.leading_zeros()) as usize; // ceil(log2(l+1))
    let mut ds = Vec::with_capacity(bits);
    let mut qs = Vec::with_capacity(bits);
    for i in 0..bits {
        let d = g.nl.add_net(None);
        let (q, id) = {
            let (q, id) =
                g.nl.add_cell(GateKind::Dff, vec![d], Some(&format!("{tag}_cnt{i}")));
            (q, id)
        };
        g.cells.push(id);
        ds.push(d);
        qs.push(q);
    }
    // Ripple incrementer; the carry out of the top bit is never used, so
    // its AND gate is not built.
    let mut carry = g.cell(GateKind::TieHi, vec![]);
    let mut inc = Vec::with_capacity(bits);
    for (i, &q) in qs.iter().enumerate() {
        inc.push(g.xor2(q, carry));
        if i + 1 < bits {
            carry = g.and2(q, carry);
        }
    }
    for i in 0..bits {
        let stepped = g.mux2(mon_en, qs[i], inc[i]);
        let next = g.mux2(mon_clear, stepped, zero);
        let id =
            g.nl.add_cell_driving(GateKind::Buf, vec![next], ds[i], None);
        g.cells.push(id);
    }
    g.equals_const(&qs, chain_len as u64)
}

/// Wires monitor hardware into `netlist` for the given scanned chains.
///
/// Rewires each chain's first flop so its scan input comes from the
/// monitor's (possibly correcting) feedback path instead of the raw `si`
/// port; manufacturing test access is restored by the Fig. 5(b) overlay
/// (`scanguard_dft::configure_test_mode`), applied after this pass.
///
/// # Errors
///
/// * [`CoreError::ChainsNotGroupable`] if the chain count is not a
///   multiple of the code's group width;
/// * [`CoreError::Code`] for unsupported Hamming orders;
/// * [`CoreError::Netlist`] if monitor port names clash with the design.
///
/// # Panics
///
/// Panics if the chains are not all the same length (the synthesizer
/// pads them; see `Synthesizer`).
pub fn attach_monitor(
    netlist: &mut Netlist,
    chains: &ScanChains,
    code: CodeChoice,
) -> Result<MonitorHardware, CoreError> {
    let l = chains.max_len();
    assert!(
        chains.chains.iter().all(|c| c.len() == l),
        "monitor requires equal-length chains (synthesizer pads them)"
    );
    let gw = code.group_width();
    if gw == 0 || chains.width() % gw != 0 {
        return Err(CoreError::ChainsNotGroupable {
            chains: chains.width(),
            group_width: gw,
        });
    }
    let n_groups = chains.width() / gw;

    let mon_en = netlist.add_input_port("mon_en")?;
    let mon_decode = netlist.add_input_port("mon_decode")?;
    let mon_clear = netlist.add_input_port("mon_clear")?;
    let sig_cap = if code.crc().is_some() {
        Some(netlist.add_input_port("mon_sig_cap")?)
    } else {
        None
    };

    let mut g = Gen {
        nl: netlist,
        cells: Vec::new(),
    };
    let zero = g.cell(GateKind::TieLo, vec![]);

    let mut groups = Vec::with_capacity(n_groups);
    let mut group_errs = Vec::with_capacity(n_groups);
    let mut store_bits = 0usize;

    match code {
        CodeChoice::Hamming { m } | CodeChoice::ExtendedHamming { m } => {
            let base = Hamming::new(m)?;
            let k = base.k() as usize;
            let extended = matches!(code, CodeChoice::ExtendedHamming { .. });
            let pw = base.parity_width() as usize + usize::from(extended);
            for gi in 0..n_groups {
                let so: Vec<NetId> = (0..k).map(|i| chains.chains[gi * gw + i].so).collect();
                // Recomputed parity: bit j = XOR of data bits whose
                // codeword position has bit j set.
                let mut parity_now = Vec::with_capacity(pw);
                for j in 0..base.parity_width() as usize {
                    let taps: Vec<NetId> = base
                        .data_positions()
                        .iter()
                        .enumerate()
                        .filter(|&(_, &pos)| (pos >> j) & 1 == 1)
                        .map(|(i, _)| so[i])
                        .collect();
                    parity_now.push(g.xor_tree(&taps));
                }
                if extended {
                    parity_now.push(g.xor_tree(&so));
                }
                // Parity store: pw scan-registers of length l. Encode
                // shifts fresh parity in; decode recirculates (so the
                // store still holds the parity afterwards).
                let mut syndrome = Vec::with_capacity(pw);
                for (j, &pnow) in parity_now.iter().enumerate() {
                    let store_out = build_store_row(&mut g, gi, j, l, mon_en, mon_decode, pnow);
                    store_bits += l;
                    syndrome.push(g.xor2(store_out, pnow));
                }
                // Correction: data bit i flips when the syndrome equals
                // its codeword position (and, for SEC-DED, the overall
                // parity disagrees).
                for (i, &pos) in base.data_positions().iter().enumerate() {
                    let value = u64::from(pos) | if extended { 1 << (pw - 1) } else { 0 };
                    let hit = g.equals_const(&syndrome, value);
                    let corr = g.and2(hit, mon_decode);
                    let fixed = g.xor2(so[i], corr);
                    let first = chains.chains[gi * gw + i].cells[0];
                    g.nl.set_cell_input(first, 1, fixed);
                }
                group_errs.push(g.or_tree(&syndrome));
                groups.push(MonitorGroup {
                    first_chain: gi * gw,
                    width: k,
                });
            }
        }
        CodeChoice::Parity { group_width } => {
            // One parity bit per word per block: the minimal detector.
            // Store = 1 x l scan-register per block; mismatch = XOR of
            // stored and recomputed parity, valid every decode cycle.
            for gi in 0..n_groups {
                let so: Vec<NetId> = (0..group_width)
                    .map(|i| chains.chains[gi * gw + i].so)
                    .collect();
                let parity_now = g.xor_tree(&so);
                let store_out = build_store_row(&mut g, gi, 0, l, mon_en, mon_decode, parity_now);
                store_bits += l;
                let syndrome = g.xor2(store_out, parity_now);
                for i in 0..group_width {
                    let first = chains.chains[gi * gw + i].cells[0];
                    let buf = g.cell(GateKind::Buf, vec![so[i]]);
                    g.nl.set_cell_input(first, 1, buf);
                }
                group_errs.push(syndrome);
                groups.push(MonitorGroup {
                    first_chain: gi * gw,
                    width: group_width,
                });
            }
        }
        CodeChoice::Crc16 => {
            // One CRC block with a W-bit-wide parallel input: unlike a
            // Hamming block (whose width is pinned to the code's data
            // width k), a CRC engine absorbs arbitrarily many bits per
            // cycle by unrolling its update network — which is how the
            // paper's Table I keeps the CRC monitor small even at W=80.
            let spec = code.crc().expect("Crc16 choice has a spec");
            let width = spec.width() as usize;
            let poly = u64::from(spec.poly());
            let cap = sig_cap.expect("CRC monitors have a capture port");
            // Only the CRC init value needs a constant 1; the other code
            // families would leave the tie cell dangling.
            let one = g.cell(GateKind::TieHi, vec![]);
            {
                let gi = 0usize;
                let w_all = chains.width();
                let so: Vec<NetId> = (0..w_all).map(|i| chains.chains[i].so).collect();
                // CRC register with hold / clear-to-init.
                let mut ds = Vec::with_capacity(width);
                let mut qs = Vec::with_capacity(width);
                for j in 0..width {
                    let d = g.nl.add_net(None);
                    let (q, id) =
                        g.nl.add_cell(GateKind::Dff, vec![d], Some(&format!("crc{gi}_{j}")));
                    g.cells.push(id);
                    ds.push(d);
                    qs.push(q);
                }
                store_bits += width;
                // Unrolled parallel update: group_width serial stages,
                // LSB-first chain order (matches CrcDigest::update_word).
                let mut state = qs.clone();
                for &bit in &so {
                    let fb = g.xor2(state[width - 1], bit);
                    let mut next = Vec::with_capacity(width);
                    for j in 0..width {
                        let shifted = if j == 0 { zero } else { state[j - 1] };
                        if (poly >> j) & 1 == 1 {
                            next.push(g.xor2(shifted, fb));
                        } else {
                            next.push(shifted);
                        }
                    }
                    state = next;
                }
                for j in 0..width {
                    let held = g.mux2(mon_en, qs[j], state[j]);
                    let init = if (0xFFFFu64 >> j) & 1 == 1 { one } else { zero };
                    let next = g.mux2(mon_clear, held, init);
                    let id =
                        g.nl.add_cell_driving(GateKind::Buf, vec![next], ds[j], None);
                    g.cells.push(id);
                }
                // Signature register with capture strobe.
                let mut mismatches = Vec::with_capacity(width);
                for j in 0..width {
                    let d = g.nl.add_net(None);
                    let (sig_q, id) =
                        g.nl.add_cell(GateKind::Dff, vec![d], Some(&format!("sig{gi}_{j}")));
                    g.cells.push(id);
                    let next = g.mux2(cap, sig_q, qs[j]);
                    let id2 = g.nl.add_cell_driving(GateKind::Buf, vec![next], d, None);
                    g.cells.push(id2);
                    mismatches.push(g.xor2(sig_q, qs[j]));
                }
                store_bits += width;
                // Detection-only feedback: the scan stream circulates
                // unmodified.
                for i in 0..w_all {
                    let first = chains.chains[i].cells[0];
                    let buf = g.cell(GateKind::Buf, vec![so[i]]);
                    g.nl.set_cell_input(first, 1, buf);
                }
                group_errs.push(g.or_tree(&mismatches));
                groups.push(MonitorGroup {
                    first_chain: 0,
                    width: w_all,
                });
            }
        }
    }

    let err = g.or_tree(&group_errs);
    let err = g.named("mon_err_buf", GateKind::Buf, vec![err]);
    // One shared sequencer: the monitoring controller clocks every block
    // in lock-step, so a single cycle counter decodes the terminal count.
    let done = build_sequencer(&mut g, "mon", mon_en, mon_clear, zero, l);
    let done = g.named("mon_done_buf", GateKind::Buf, vec![done]);
    let cells = g.cells;
    netlist.add_output_port("mon_err", err)?;
    netlist.add_output_port("mon_done", done)?;
    netlist.revalidate()?;
    Ok(MonitorHardware {
        code,
        groups,
        mon_en,
        mon_decode,
        mon_clear,
        sig_cap,
        err,
        done,
        cells,
        store_bits,
        chain_len: l,
    })
}

/// Builds one always-on parity-store row: a scan register of length `l`
/// whose shift input is fresh parity during encode and its own output
/// (recirculation) during decode. Returns the row's output net.
fn build_store_row(
    g: &mut Gen<'_>,
    group: usize,
    row: usize,
    l: usize,
    mon_en: NetId,
    mon_decode: NetId,
    parity_now: NetId,
) -> NetId {
    // Pre-declare the recirculation source.
    let store_in = g.nl.add_net(Some(&format!("pst{group}_{row}_in")));
    let mut prev = store_in;
    for i in 0..l {
        let (q, id) = g.nl.add_cell(
            GateKind::Sdff,
            vec![prev, prev, mon_en],
            Some(&format!("pst{group}_{row}_{i}")),
        );
        // Pin 0 (functional d) should hold the value: rewire d to own q.
        g.nl.set_cell_input(id, 0, q);
        g.cells.push(id);
        prev = q;
    }
    let store_out = prev;
    let sel = g.mux2(mon_decode, parity_now, store_out);
    let id =
        g.nl.add_cell_driving(GateKind::Buf, vec![sel], store_in, None);
    g.cells.push(id);
    store_out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanguard_dft::{insert_scan, ScanConfig};
    use scanguard_netlist::{CellLibrary, Logic, NetlistBuilder};
    use scanguard_sim::Simulator;

    /// A scanned register bank: `ffs` flops in `chains` chains.
    fn scanned(ffs: usize, chains: usize) -> (Netlist, ScanChains) {
        let mut b = NetlistBuilder::new("regs");
        for i in 0..ffs {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            b.output(&format!("q[{i}]"), q);
        }
        let mut nl = b.finish().unwrap();
        let sc = insert_scan(&mut nl, &ScanConfig::retention_with_chains(chains)).unwrap();
        (nl, sc)
    }

    fn drive_ports(sim: &mut Simulator<'_>, mh: &MonitorHardware, en: bool, dec: bool, clr: bool) {
        sim.set_net(mh.mon_en, Logic::from(en));
        sim.set_net(mh.mon_decode, Logic::from(dec));
        sim.set_net(mh.mon_clear, Logic::from(clr));
        if let Some(cap) = mh.sig_cap {
            sim.set_net(cap, Logic::Zero);
        }
    }

    fn quiesce_inputs(sim: &mut Simulator<'_>, ffs: usize) {
        for i in 0..ffs {
            sim.set_port_bool(&format!("d[{i}]"), false).unwrap();
        }
    }

    /// Puts the chain flops in a clock-gateable domain, as the proposed
    /// controller does: the chains must hold still during monitor clear
    /// and capture cycles.
    fn gate_chains(sim: &mut Simulator<'_>, sc: &ScanChains) -> scanguard_sim::DomainId {
        let pd = sim.define_domain("pgc");
        let cells: Vec<_> = sc.cells().collect();
        sim.assign_domain_all(cells, pd);
        pd
    }

    #[test]
    fn groupability_is_enforced() {
        let (mut nl, sc) = scanned(12, 6);
        let err = attach_monitor(&mut nl, &sc, CodeChoice::hamming7_4()).unwrap_err();
        assert!(matches!(err, CoreError::ChainsNotGroupable { .. }));
    }

    #[test]
    fn hamming_store_size_matches_redundancy() {
        // 8 flops, 4 chains of 2, (7,4): one group, 3 rows of 2 bits.
        let (mut nl, sc) = scanned(8, 4);
        let mh = attach_monitor(&mut nl, &sc, CodeChoice::hamming7_4()).unwrap();
        assert_eq!(mh.groups.len(), 1);
        assert_eq!(mh.store_bits, 6);
        assert_eq!(mh.chain_len, 2);
    }

    #[test]
    fn crc_monitor_has_capture_port_and_stores_two_registers() {
        let (mut nl, sc) = scanned(8, 4);
        let mh = attach_monitor(&mut nl, &sc, CodeChoice::crc16()).unwrap();
        assert!(mh.sig_cap.is_some());
        assert_eq!(mh.store_bits, 32); // CRC reg + signature
    }

    /// Full manual encode -> corrupt -> decode sequence on a 4x2 grid
    /// protected by Hamming(7,4): the flipped bit must come back healed.
    #[test]
    fn hamming_corrects_a_single_upset_end_to_end() {
        let (mut nl, sc) = scanned(8, 4);
        let mh = attach_monitor(&mut nl, &sc, CodeChoice::hamming7_4()).unwrap();
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        quiesce_inputs(&mut sim, 8);
        let pd = gate_chains(&mut sim, &sc);
        sc.set_scan_enable(&mut sim, true);
        let l = sc.max_len();

        let state = vec![
            vec![Logic::One, Logic::Zero],
            vec![Logic::Zero, Logic::One],
            vec![Logic::One, Logic::One],
            vec![Logic::Zero, Logic::Zero],
        ];
        sc.load(&mut sim, &state);

        // Encode: clear sequencers (chains frozen), then l enabled cycles.
        sim.set_clock_enable(pd, false);
        drive_ports(&mut sim, &mh, false, false, true);
        sim.step();
        sim.set_clock_enable(pd, true);
        drive_ports(&mut sim, &mh, true, false, false);
        sim.step_n(l);
        assert_eq!(sc.snapshot(&sim), state, "encode circulation is lossless");

        // Corrupt one bit (chain 2, depth 1).
        let victim = sc.chains[2].cells[1];
        let v = sim.ff_value(victim);
        sim.force_ff(victim, !v);

        // Decode: clear sequencers, l cycles with correction enabled.
        sim.set_clock_enable(pd, false);
        drive_ports(&mut sim, &mh, false, true, true);
        sim.step();
        sim.set_clock_enable(pd, true);
        drive_ports(&mut sim, &mh, true, true, false);
        let mut err_seen = false;
        for _ in 0..l {
            sim.settle();
            if sim.value(mh.err) == Logic::One {
                err_seen = true;
            }
            sim.step();
        }
        sim.settle();
        assert_eq!(sim.value(mh.done), Logic::One, "sequencers report done");
        assert!(err_seen, "the upset must raise mon_err");
        assert_eq!(sc.snapshot(&sim), state, "the upset must be corrected");
    }

    /// CRC-16 monitor: signature mismatch detects an upset; clean runs
    /// match.
    #[test]
    fn crc_detects_an_upset_end_to_end() {
        let (mut nl, sc) = scanned(8, 4);
        let mh = attach_monitor(&mut nl, &sc, CodeChoice::crc16()).unwrap();
        let cap = mh.sig_cap.unwrap();
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        quiesce_inputs(&mut sim, 8);
        let pd = gate_chains(&mut sim, &sc);
        sc.set_scan_enable(&mut sim, true);
        let l = sc.max_len();

        let state = vec![
            vec![Logic::One, Logic::One],
            vec![Logic::Zero, Logic::One],
            vec![Logic::Zero, Logic::Zero],
            vec![Logic::One, Logic::Zero],
        ];
        sc.load(&mut sim, &state);

        // One monitor pass: clear (chains frozen), l shifts, freeze.
        let pass = |sim: &mut Simulator<'_>| {
            sim.set_clock_enable(pd, false);
            drive_ports(sim, &mh, false, false, true);
            sim.step();
            sim.set_clock_enable(pd, true);
            drive_ports(sim, &mh, true, false, false);
            sim.step_n(l);
            sim.set_clock_enable(pd, false);
            drive_ports(sim, &mh, false, false, false);
        };

        // Encode, then capture the signature.
        pass(&mut sim);
        sim.set_net(cap, Logic::One);
        sim.step();
        sim.set_net(cap, Logic::Zero);
        sim.set_clock_enable(pd, true);
        assert_eq!(sc.snapshot(&sim), state, "encode preserved the state");

        // Clean decode: recompute, compare -> no error.
        pass(&mut sim);
        sim.settle();
        assert_eq!(
            sim.value(mh.err),
            Logic::Zero,
            "clean state matches signature"
        );
        sim.set_clock_enable(pd, true);

        // Corrupt and decode again: mismatch.
        let victim = sc.chains[1].cells[0];
        let v = sim.ff_value(victim);
        sim.force_ff(victim, !v);
        pass(&mut sim);
        sim.settle();
        assert_eq!(sim.value(mh.err), Logic::One, "upset must be detected");
    }

    /// Parity monitor: one store row per block, detects odd upsets,
    /// leaves the stream untouched.
    #[test]
    fn parity_monitor_detects_without_correcting() {
        let (mut nl, sc) = scanned(8, 4);
        let mh = attach_monitor(&mut nl, &sc, CodeChoice::Parity { group_width: 4 }).unwrap();
        assert_eq!(mh.store_bits, 2, "one parity bit per word, l=2");
        let lib = CellLibrary::st120nm();
        let mut sim = Simulator::new(&nl, &lib);
        quiesce_inputs(&mut sim, 8);
        let pd = gate_chains(&mut sim, &sc);
        sc.set_scan_enable(&mut sim, true);
        let l = sc.max_len();
        let state = vec![
            vec![Logic::One, Logic::Zero],
            vec![Logic::Zero, Logic::One],
            vec![Logic::One, Logic::One],
            vec![Logic::Zero, Logic::Zero],
        ];
        sc.load(&mut sim, &state);
        // Encode.
        sim.set_clock_enable(pd, false);
        drive_ports(&mut sim, &mh, false, false, true);
        sim.step();
        sim.set_clock_enable(pd, true);
        drive_ports(&mut sim, &mh, true, false, false);
        sim.step_n(l);
        assert_eq!(sc.snapshot(&sim), state, "encode is lossless");
        // Flip one bit; decode must flag it on the matching cycle and
        // leave the (still corrupted) state alone.
        let victim = sc.chains[1].cells[0];
        let v = sim.ff_value(victim);
        sim.force_ff(victim, !v);
        sim.set_clock_enable(pd, false);
        drive_ports(&mut sim, &mh, false, true, true);
        sim.step();
        sim.set_clock_enable(pd, true);
        drive_ports(&mut sim, &mh, true, true, false);
        let mut seen = false;
        for _ in 0..l {
            sim.settle();
            if sim.value(mh.err) == Logic::One {
                seen = true;
            }
            sim.step();
        }
        assert!(seen, "parity mismatch must surface on mon_err");
        let mut expected = state.clone();
        expected[1][0] = !expected[1][0];
        assert_eq!(sc.snapshot(&sim), expected, "parity never corrects");
    }

    #[test]
    fn monitor_cells_are_tracked() {
        let (mut nl, sc) = scanned(8, 4);
        let before = nl.cell_count();
        let mh = attach_monitor(&mut nl, &sc, CodeChoice::hamming7_4()).unwrap();
        assert_eq!(nl.cell_count() - before, mh.cells.len());
        assert!(mh.cells.iter().all(|c| c.index() >= before));
    }
}
