//! # scanguard-core
//!
//! The primary contribution of *"Scan Based Methodology for Reliable
//! State Retention Power Gating Designs"* (Yang, Al-Hashimi, Flynn,
//! Khursheed — DATE 2010), reproduced as a Rust library over gate-level
//! simulation.
//!
//! Power-gated circuits keep their state in always-on retention latches;
//! wake-up rush current can corrupt those latches. The paper's
//! methodology reuses the design's scan chains to **monitor** that state
//! (parity generation before sleep) and **recover** it (syndrome
//! decoding and in-stream correction after wake-up):
//!
//! * [`attach_monitor`] / [`MonitorHardware`] — the Fig. 2 state
//!   monitoring and error correction blocks, generated as real gates
//!   (XOR parity trees, always-on parity stores, syndrome decoders,
//!   correction feedback into the scan-ins);
//! * [`ProposedController`] — the Fig. 3(b) power-gating controller with
//!   encode and decode/check sequences;
//! * [`Synthesizer`] / [`ProtectedDesign`] — the Fig. 4
//!   reliability-aware synthesis flow (scan insertion, chain padding,
//!   monitor generation, Fig. 5(b) test-mode concatenation, optional
//!   Fig. 6 injector);
//! * [`ProtectedRuntime`] — executes full sleep/wake sequences on the
//!   gate-level simulator, with a rush-current upset hook;
//! * [`measure_cost`] / [`CostRow`] — the Tables I–III measurements
//!   (area, overhead %, encode/decode power, latency, energy).
//!
//! # Examples
//!
//! Protect a register bank with Hamming(7,4) and survive an upset:
//!
//! ```
//! use scanguard_core::{CodeChoice, Synthesizer};
//! use scanguard_netlist::NetlistBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new("bank");
//! for i in 0..16 {
//!     let d = b.input(&format!("d[{i}]"));
//!     let (q, _) = b.dff(&format!("r{i}"), d);
//!     b.output(&format!("q[{i}]"), q);
//! }
//! let design = Synthesizer::new(b.finish()?)
//!     .chains(4)
//!     .code(CodeChoice::hamming7_4())
//!     .build()?;
//!
//! let mut rt = design.runtime();
//! rt.load_random_state(42);
//! let report = rt.sleep_wake(|sim, chains| {
//!     // Rush current flips one retention latch...
//!     sim.flip_retention(chains.chains[2].cells[1]);
//!     1
//! });
//! assert!(report.error_observed); // ...the monitor notices...
//! assert!(report.state_intact()); // ...and heals it.
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]
// Bit-indexed loops are the clearer idiom for hardware generation.
#![allow(clippy::needless_range_loop)]

mod config;
mod controller;
mod cost;
mod error;
mod monitor;
mod recovery;
mod runtime;
mod sabotage;
mod synth;

pub use config::CodeChoice;
pub use controller::{MonOutputs, MonPhase, ProposedController, ProposedTiming};
pub use cost::{
    analytic_cost, break_even, cost_header, measure_cost, AnalyticCost, BreakEven, CostRow,
};
pub use error::CoreError;
pub use monitor::{attach_monitor, MonitorGroup, MonitorHardware};
pub use recovery::{checkpoint, restore, Checkpoint, RestoreReport};
pub use runtime::{ProtectedRuntime, SleepWakeReport};
pub use sabotage::{apply_sabotage, Sabotage};
pub use synth::{ProtectedDesign, Synthesizer};
