//! Software state recovery — the alternative the paper's Sec. V reserves
//! for when Hamming's area overhead is unacceptable: *"the approach of
//! CRC error detection with software recovery may be considered."*
//!
//! The model here is the realistic embedded flow: before sleep, software
//! dumps the architectural state through the scan chains into memory
//! (a *checkpoint*); after wake-up, if the CRC monitor flags corruption,
//! software reloads the checkpoint through the manufacturing-test scan
//! interface. Detection hardware stays tiny; the price is recovery
//! latency — `(W / T) x l` reload cycles through `T` test pins instead
//! of the monitor's in-stream `l`-cycle correction — which this module
//! measures rather than asserts.

use crate::{MonPhase, ProtectedRuntime};
use scanguard_netlist::Logic;
use scanguard_sim::EnergyWindow;

/// A scan-captured state checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// `state[chain][depth]`, depth 0 nearest scan-in.
    state: Vec<Vec<Logic>>,
    /// Cycles spent capturing.
    pub dump_cycles: u64,
    /// Energy spent capturing.
    pub dump_energy: EnergyWindow,
}

impl Checkpoint {
    /// The captured state.
    #[must_use]
    pub fn state(&self) -> &[Vec<Logic>] {
        &self.state
    }
}

/// Result of a software reload.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoreReport {
    /// Scan-shift cycles the reload took.
    pub cycles: u64,
    /// Energy of the reload.
    pub energy: EnergyWindow,
}

/// Captures a checkpoint by circulating the chains once and observing
/// the scan-outs — exactly what checkpointing firmware does through a
/// scan dump, and losslessly: after `l` cycles the state is back where
/// it started.
///
/// # Panics
///
/// Panics if called outside the controller's `Active` phase.
pub fn checkpoint(rt: &mut ProtectedRuntime<'_>) -> Checkpoint {
    assert_eq!(rt.phase(), MonPhase::Active, "checkpoint from Active only");
    let w = rt.chains().width();
    let l = rt.chains().max_len();
    let se = rt.chains().se;
    let so_nets: Vec<_> = rt.chains().chains.iter().map(|c| c.so).collect();
    let sim = rt.sim_mut();
    let _ = sim.take_energy();
    sim.set_net(se, Logic::One);
    // Observed[t][k] is chain k's bit at depth l-1-t.
    let mut state = vec![vec![Logic::X; l]; w];
    for t in 0..l {
        sim.settle();
        for (k, &so) in so_nets.iter().enumerate() {
            state[k][l - 1 - t] = sim.value(so);
            // Feed the observed bit straight back (software dump taps the
            // existing monitor feedback path, which circulates anyway).
        }
        sim.step();
    }
    sim.set_net(se, Logic::Zero);
    let dump_energy = sim.take_energy();
    Checkpoint {
        state,
        dump_cycles: l as u64,
        dump_energy,
    }
}

/// Reloads a checkpoint through the Fig. 5(b) manufacturing-test
/// interface: `T` test pins drive `W / T` concatenated chains for
/// `(W / T) x l` cycles.
///
/// # Panics
///
/// Panics if the design was built without a test-mode configuration, or
/// if the checkpoint shape does not match the chains.
pub fn restore(rt: &mut ProtectedRuntime<'_>, checkpoint: &Checkpoint) -> RestoreReport {
    let tm = rt
        .design()
        .test_mode
        .clone()
        .expect("software recovery reloads through the test interface; build with test_width");
    let w = rt.chains().width();
    let l = rt.chains().max_len();
    assert_eq!(checkpoint.state.len(), w, "checkpoint shape mismatch");
    let t_width = tm.test_width;
    let per_group = w / t_width;
    let total = per_group * l;
    let se = rt.chains().se;

    // Build each test pin's bit stream: the bit shifted at cycle i ends
    // at concatenated position total-1-i, which is chain g + (p/l)*T at
    // depth p % l.
    let mut streams = vec![Vec::with_capacity(total); t_width];
    for (g, stream) in streams.iter_mut().enumerate() {
        for i in 0..total {
            let p = total - 1 - i;
            let chain = g + (p / l) * t_width;
            let depth = p % l;
            stream.push(checkpoint.state[chain][depth]);
        }
    }

    let sim = rt.sim_mut();
    let _ = sim.take_energy();
    sim.set_net(se, Logic::One);
    tm.set_test_mode(sim, true);
    for i in 0..total {
        let ins: Vec<Logic> = (0..t_width).map(|g| streams[g][i]).collect();
        tm.shift(sim, &ins);
    }
    tm.set_test_mode(sim, false);
    sim.set_net(se, Logic::Zero);
    let energy = sim.take_energy();
    RestoreReport {
        cycles: total as u64,
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodeChoice, Synthesizer};
    use scanguard_netlist::NetlistBuilder;

    fn design(ffs: usize, chains: usize, tw: usize) -> crate::ProtectedDesign {
        let mut b = NetlistBuilder::new("regs");
        for i in 0..ffs {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            b.output(&format!("q[{i}]"), q);
        }
        Synthesizer::new(b.finish().unwrap())
            .chains(chains)
            .code(CodeChoice::crc16())
            .test_width(tw)
            .build()
            .unwrap()
    }

    #[test]
    fn checkpoint_captures_state_losslessly() {
        let d = design(16, 4, 2);
        let mut rt = d.runtime();
        rt.load_random_state(77);
        let before = d.chains.snapshot(rt.sim());
        let cp = checkpoint(&mut rt);
        assert_eq!(cp.state(), before.as_slice(), "dump must read the state");
        assert_eq!(
            d.chains.snapshot(rt.sim()),
            before,
            "dump must not disturb it"
        );
        assert_eq!(cp.dump_cycles, 4);
        assert!(cp.dump_energy.dynamic_pj > 0.0);
    }

    #[test]
    fn restore_rewrites_the_full_state() {
        let d = design(16, 4, 2);
        let mut rt = d.runtime();
        rt.load_random_state(78);
        let cp = checkpoint(&mut rt);
        // Corrupt everything.
        rt.load_random_state(1234);
        assert_ne!(d.chains.snapshot(rt.sim()), cp.state());
        let rep = restore(&mut rt, &cp);
        assert_eq!(d.chains.snapshot(rt.sim()), cp.state(), "state reloaded");
        // (W/T) x l = 2 x 4 cycles through 2 pins.
        assert_eq!(rep.cycles, 8);
    }

    #[test]
    fn software_recovery_after_detected_upset() {
        // The full Sec. V alternative: checkpoint, sleep, upset, CRC
        // detects, software reloads.
        let d = design(16, 4, 4);
        let mut rt = d.runtime();
        rt.load_random_state(79);
        let cp = checkpoint(&mut rt);
        let rep = rt.sleep_wake(|sim, chains| {
            sim.flip_retention(chains.chains[2].cells[1]);
            sim.flip_retention(chains.chains[3].cells[1]);
            2
        });
        assert!(rep.error_observed, "CRC must flag the corruption");
        assert!(!rep.state_intact(), "CRC cannot correct");
        let restore_rep = restore(&mut rt, &cp);
        assert_eq!(
            d.chains.snapshot(rt.sim()),
            cp.state(),
            "software healed it"
        );
        // Software recovery latency exceeds the monitor's l-cycle pass.
        assert!(restore_rep.cycles >= d.chain_len() as u64);
    }

    #[test]
    #[should_panic(expected = "test_width")]
    fn restore_requires_test_interface() {
        let mut b = NetlistBuilder::new("regs");
        for i in 0..8 {
            let dd = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), dd);
            b.output(&format!("q[{i}]"), q);
        }
        let d = Synthesizer::new(b.finish().unwrap())
            .chains(4)
            .code(CodeChoice::crc16())
            .build()
            .unwrap();
        let mut rt = d.runtime();
        rt.load_random_state(1);
        let cp = checkpoint(&mut rt);
        let _ = restore(&mut rt, &cp);
    }
}
