//! The proposed power-gating controller — paper Fig. 3(b).
//!
//! It wraps the conventional sleep/wake sequence (Fig. 3(a),
//! `scanguard_power::ConventionalController`) with an **encode sequence**
//! before sleep and a **decode/check sequence** after wake-up, driving
//! the monitor hardware's control ports cycle by cycle.

use serde::{Deserialize, Serialize};

/// Phases of the proposed controller, in traversal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MonPhase {
    /// Normal operation.
    Active,
    /// One cycle: reset monitor sequencers (and CRC registers).
    EncodeClear,
    /// `l` cycles: circulate the state through the monitors, storing
    /// parity.
    Encode,
    /// One cycle: capture the CRC signature (no-op for Hamming).
    EncodeCapture,
    /// RETAIN raised; masters saved.
    Save,
    /// Switches opening.
    PowerDown,
    /// Gated off.
    Sleep,
    /// Switches closed; rail settling (the rush-current window).
    PowerUp,
    /// RETAIN dropped; state restored (possibly corrupted).
    Restore,
    /// One cycle: reset monitor sequencers / CRC for decoding.
    DecodeClear,
    /// `l` cycles: re-circulate, compare, and (Hamming) correct.
    Decode,
    /// One cycle: final error sampling (CRC compare is valid here).
    Check,
}

impl MonPhase {
    /// The phase name as it appears on the observability timeline.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MonPhase::Active => "Active",
            MonPhase::EncodeClear => "EncodeClear",
            MonPhase::Encode => "Encode",
            MonPhase::EncodeCapture => "EncodeCapture",
            MonPhase::Save => "Save",
            MonPhase::PowerDown => "PowerDown",
            MonPhase::Sleep => "Sleep",
            MonPhase::PowerUp => "PowerUp",
            MonPhase::Restore => "Restore",
            MonPhase::DecodeClear => "DecodeClear",
            MonPhase::Decode => "Decode",
            MonPhase::Check => "Check",
        }
    }
}

/// Per-cycle control outputs of the proposed controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonOutputs {
    /// Scan-enable level.
    pub se: bool,
    /// Monitor shift/update enable.
    pub mon_en: bool,
    /// Monitor mode (1 = decode/correct).
    pub mon_decode: bool,
    /// Monitor sequencer / CRC clear strobe.
    pub mon_clear: bool,
    /// CRC signature capture strobe.
    pub sig_cap: bool,
    /// RETAIN level.
    pub retain: bool,
    /// Domain power switch level.
    pub power_on: bool,
    /// `true` during cycles when `mon_err` is meaningful and should be
    /// accumulated (decode cycles for Hamming; the final check for CRC).
    pub sample_err: bool,
    /// Clock enable of the power-gated domain: the functional clock runs
    /// only while active and during scan circulation, so the circuit
    /// cannot drift between encode and save or between restore and
    /// decode.
    pub pgc_clock: bool,
    /// `true` only in [`MonPhase::Active`].
    pub state_valid: bool,
}

/// Timing knobs of the proposed controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProposedTiming {
    /// Scan-chain length `l`: cycles of [`MonPhase::Encode`] and
    /// [`MonPhase::Decode`].
    pub chain_len: u64,
    /// Cycles of [`MonPhase::Save`].
    pub save_cycles: u64,
    /// Cycles of [`MonPhase::PowerUp`] (rail settling).
    pub wake_settle_cycles: u64,
    /// `true` when the monitor's error output is valid on every decode
    /// cycle (Hamming syndromes, parity mismatches): `mon_err` is sampled
    /// through the whole decode; a CRC signature compare is sampled only
    /// at the final check.
    pub sample_during_decode: bool,
}

/// The Fig. 3(b) FSM.
///
/// # Examples
///
/// ```
/// use scanguard_core::{MonPhase, ProposedController, ProposedTiming};
///
/// let mut pg = ProposedController::new(ProposedTiming {
///     chain_len: 13,
///     save_cycles: 1,
///     wake_settle_cycles: 4,
///     sample_during_decode: true,
/// });
/// assert_eq!(pg.phase(), MonPhase::Active);
/// pg.tick(true);
/// assert_eq!(pg.phase(), MonPhase::EncodeClear, "sleep first encodes");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProposedController {
    phase: MonPhase,
    counter: u64,
    timing: ProposedTiming,
}

impl ProposedController {
    /// Builds the controller in [`MonPhase::Active`].
    #[must_use]
    pub fn new(timing: ProposedTiming) -> Self {
        ProposedController {
            phase: MonPhase::Active,
            counter: 0,
            timing,
        }
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> MonPhase {
        self.phase
    }

    /// Advances one cycle and returns the control levels of the new
    /// cycle.
    pub fn tick(&mut self, sleep: bool) -> MonOutputs {
        use MonPhase::{
            Active, Check, Decode, DecodeClear, Encode, EncodeCapture, EncodeClear, PowerDown,
            PowerUp, Restore, Save, Sleep,
        };
        let t = self.timing;
        self.phase = match self.phase {
            Active => {
                if sleep {
                    self.counter = 0;
                    EncodeClear
                } else {
                    Active
                }
            }
            EncodeClear => {
                self.counter = 0;
                Encode
            }
            Encode => {
                self.counter += 1;
                if self.counter >= t.chain_len {
                    EncodeCapture
                } else {
                    Encode
                }
            }
            EncodeCapture => {
                self.counter = 0;
                Save
            }
            Save => {
                self.counter += 1;
                if self.counter >= t.save_cycles {
                    PowerDown
                } else {
                    Save
                }
            }
            PowerDown => Sleep,
            Sleep => {
                if sleep {
                    Sleep
                } else {
                    self.counter = 0;
                    PowerUp
                }
            }
            PowerUp => {
                self.counter += 1;
                if self.counter >= t.wake_settle_cycles {
                    Restore
                } else {
                    PowerUp
                }
            }
            Restore => DecodeClear,
            DecodeClear => {
                self.counter = 0;
                Decode
            }
            Decode => {
                self.counter += 1;
                if self.counter >= t.chain_len {
                    Check
                } else {
                    Decode
                }
            }
            Check => Active,
        };
        self.outputs()
    }

    /// Control levels of the current phase.
    #[must_use]
    pub fn outputs(&self) -> MonOutputs {
        let t = self.timing;
        let off = MonOutputs {
            se: false,
            mon_en: false,
            mon_decode: false,
            mon_clear: false,
            sig_cap: false,
            retain: false,
            power_on: true,
            sample_err: false,
            pgc_clock: false,
            state_valid: false,
        };
        match self.phase {
            MonPhase::Active => MonOutputs {
                state_valid: true,
                pgc_clock: true,
                ..off
            },
            MonPhase::EncodeClear => MonOutputs {
                mon_clear: true,
                ..off
            },
            MonPhase::Encode => MonOutputs {
                se: true,
                mon_en: true,
                pgc_clock: true,
                ..off
            },
            MonPhase::EncodeCapture => MonOutputs {
                sig_cap: true,
                ..off
            },
            MonPhase::Save => MonOutputs {
                retain: true,
                ..off
            },
            MonPhase::PowerDown | MonPhase::Sleep => MonOutputs {
                retain: true,
                power_on: false,
                ..off
            },
            MonPhase::PowerUp => MonOutputs {
                retain: true,
                ..off
            },
            MonPhase::Restore => off,
            MonPhase::DecodeClear => MonOutputs {
                mon_clear: true,
                mon_decode: true,
                ..off
            },
            MonPhase::Decode => MonOutputs {
                se: true,
                mon_en: true,
                mon_decode: true,
                sample_err: t.sample_during_decode,
                pgc_clock: true,
                ..off
            },
            MonPhase::Check => MonOutputs {
                mon_decode: true,
                sample_err: true,
                ..off
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> ProposedTiming {
        ProposedTiming {
            chain_len: 3,
            save_cycles: 1,
            wake_settle_cycles: 2,
            sample_during_decode: true,
        }
    }

    #[test]
    fn phase_order_matches_fig3b() {
        use MonPhase::{
            Active, Check, Decode, DecodeClear, Encode, EncodeCapture, EncodeClear, PowerDown,
            PowerUp, Restore, Save, Sleep,
        };
        let mut pg = ProposedController::new(timing());
        let mut trace = vec![pg.phase()];
        let mut sleep = true;
        for cycle in 0..40 {
            if cycle > 12 {
                sleep = false;
            }
            pg.tick(sleep);
            if trace.last() != Some(&pg.phase()) {
                trace.push(pg.phase());
            }
            if pg.phase() == Active && cycle > 1 {
                break;
            }
        }
        assert_eq!(
            trace,
            vec![
                Active,
                EncodeClear,
                Encode,
                EncodeCapture,
                Save,
                PowerDown,
                Sleep,
                PowerUp,
                Restore,
                DecodeClear,
                Decode,
                Check,
                Active
            ],
            "encoding precedes sleep and decoding follows wake-up"
        );
    }

    #[test]
    fn encode_and_decode_last_exactly_l_cycles() {
        let mut pg = ProposedController::new(timing());
        let mut encode = 0;
        let mut decode = 0;
        let mut sleep = true;
        for cycle in 0..60 {
            if cycle > 15 {
                sleep = false;
            }
            pg.tick(sleep);
            match pg.phase() {
                MonPhase::Encode => encode += 1,
                MonPhase::Decode => decode += 1,
                _ => {}
            }
            if pg.phase() == MonPhase::Active && cycle > 1 {
                break;
            }
        }
        assert_eq!(encode, 3);
        assert_eq!(decode, 3);
    }

    #[test]
    fn retain_covers_power_gap_and_monitor_runs_powered() {
        let mut pg = ProposedController::new(timing());
        let mut sleep = true;
        for cycle in 0..60 {
            if cycle > 15 {
                sleep = false;
            }
            let out = pg.tick(sleep);
            if !out.power_on {
                assert!(out.retain, "gap must be covered by RETAIN");
            }
            if out.mon_en {
                assert!(out.power_on, "scan circulation needs the domain powered");
                assert!(out.se, "circulation runs in scan mode");
            }
            if pg.phase() == MonPhase::Active && cycle > 1 {
                break;
            }
        }
    }

    #[test]
    fn crc_samples_error_only_at_check() {
        let mut t = timing();
        t.sample_during_decode = false;
        let mut pg = ProposedController::new(t);
        let mut sleep = true;
        let mut sampled_phases = Vec::new();
        for cycle in 0..60 {
            if cycle > 15 {
                sleep = false;
            }
            let out = pg.tick(sleep);
            if out.sample_err {
                sampled_phases.push(pg.phase());
            }
            if pg.phase() == MonPhase::Active && cycle > 1 {
                break;
            }
        }
        assert_eq!(sampled_phases, vec![MonPhase::Check]);
    }

    #[test]
    fn stays_asleep_until_released() {
        let mut pg = ProposedController::new(timing());
        for _ in 0..20 {
            pg.tick(true);
        }
        assert_eq!(pg.phase(), MonPhase::Sleep);
    }
}
