//! Seeded-bad surgeries for the upset verifier's regression fixtures.
//!
//! Each function plants one realistic integration bug in an otherwise
//! correct [`ProtectedDesign`] — the kind of wiring mistake the
//! exhaustive SG205/SG206 proofs exist to catch and that sampled fault
//! injection can miss. They are used by the lint fixture tests, the
//! `scanguard verify --seed-bad` smoke flow and CI's expected-failure
//! gate.

use crate::{CoreError, ProtectedDesign};
use scanguard_netlist::GateKind;
use std::fmt;
use std::str::FromStr;

/// Which integration bug to plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Replace chain 0's correction-feedback XOR with a plain buffer of
    /// its scan-out: upsets in that chain are still *detected* (the
    /// syndrome logic is untouched) but never restored. SG205 reports
    /// `MissedCorrect` for every depth of chain 0. Only meaningful for
    /// correcting codes — detection-only monitors already feed back a
    /// buffer.
    DropCorrection,
    /// Swap the scan-in feedback of the first chains of two different
    /// parity groups (or of chains 0 and 1 under a single group): the
    /// circulating streams land in the wrong chains, so even the golden
    /// pass no longer restores the retained state. SG205 reports
    /// golden-pass failures and SG206 marks its burst verdicts unsound.
    SwapGroups,
    /// Tie the parity-store shift enable high, as if `mon_en` reached
    /// the store one cycle early: the store rotates during the
    /// decode-clear cycle, misaligning every stored parity by one
    /// position and raising `mon_err` on the *clean* pass.
    EarlyStore,
}

impl Sabotage {
    /// Every surgery, in `--seed-bad` listing order.
    #[must_use]
    pub fn all() -> [Sabotage; 3] {
        [
            Sabotage::DropCorrection,
            Sabotage::SwapGroups,
            Sabotage::EarlyStore,
        ]
    }

    /// The `--seed-bad` spelling.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Sabotage::DropCorrection => "drop-correction",
            Sabotage::SwapGroups => "swap-groups",
            Sabotage::EarlyStore => "early-store",
        }
    }
}

impl fmt::Display for Sabotage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Sabotage {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Sabotage::all()
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown sabotage {s:?} (valid: {})",
                    Sabotage::all().map(|k| k.name()).join(", ")
                )
            })
    }
}

/// Plants `kind` in `design`, mutating its netlist in place.
///
/// # Errors
///
/// Returns [`CoreError::Netlist`] when the edited netlist fails
/// revalidation (it never should — the surgeries keep every net driven).
///
/// # Panics
///
/// Panics when the design has no scan chains, or for
/// [`Sabotage::EarlyStore`] on a CRC monitor (which has no parity-store
/// rows to mis-enable).
pub fn apply_sabotage(design: &mut ProtectedDesign, kind: Sabotage) -> Result<(), CoreError> {
    let nl = &mut design.netlist;
    let chains = &design.chains;
    assert!(chains.width() > 0, "sabotage needs scan chains");
    match kind {
        Sabotage::DropCorrection => {
            let first = chains.chains[0].cells[0];
            let so = chains.chains[0].so;
            let (buf, _) = nl.add_cell(GateKind::Buf, vec![so], Some("sab_drop_corr"));
            nl.set_cell_input(first, 1, buf);
        }
        Sabotage::SwapGroups => {
            let stride = design.monitor.groups.get(1).map_or(1, |g| g.first_chain);
            let a = chains.chains[0].cells[0];
            let b = chains.chains[stride.min(chains.width() - 1).max(1)].cells[0];
            let si_a = nl.cell(a).inputs()[1];
            let si_b = nl.cell(b).inputs()[1];
            nl.set_cell_input(a, 1, si_b);
            nl.set_cell_input(b, 1, si_a);
        }
        Sabotage::EarlyStore => {
            let stores: Vec<_> = design
                .monitor
                .cells
                .iter()
                .copied()
                .filter(|&id| {
                    nl.cell(id).kind() == GateKind::Sdff
                        && nl.cell(id).name().is_some_and(|n| n.starts_with("pst"))
                })
                .collect();
            assert!(
                !stores.is_empty(),
                "early-store sabotage needs parity-store rows (CRC monitors have none)"
            );
            let (hi, _) = nl.add_cell(GateKind::TieHi, vec![], Some("sab_early_en"));
            for id in stores {
                nl.set_cell_input(id, 2, hi);
            }
        }
    }
    nl.revalidate().map_err(CoreError::Netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CodeChoice, Synthesizer};
    use scanguard_netlist::NetlistBuilder;

    fn bank(flops: usize) -> scanguard_netlist::Netlist {
        let mut b = NetlistBuilder::new("bank");
        for i in 0..flops {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            b.output(&format!("q[{i}]"), q);
        }
        b.finish().unwrap()
    }

    #[test]
    fn names_round_trip() {
        for k in Sabotage::all() {
            assert_eq!(k.name().parse::<Sabotage>().unwrap(), k);
        }
        assert!("nope".parse::<Sabotage>().is_err());
    }

    #[test]
    fn surgeries_keep_the_netlist_valid() {
        for k in Sabotage::all() {
            let mut design = Synthesizer::new(bank(16))
                .chains(4)
                .code(CodeChoice::hamming7_4())
                .build()
                .unwrap();
            apply_sabotage(&mut design, k).unwrap();
        }
    }
}
