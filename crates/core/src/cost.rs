//! Cost measurement — how the reproduction fills the rows of the
//! paper's Tables I–III.
//!
//! [`measure_cost`] runs one quiet sleep/wake sequence on a protected
//! design with pseudo-random state, and converts the constructed areas
//! and the simulated switching activity into a [`CostRow`]:
//! `W, l, area, overhead %, enc/dec power (mW), latency (ns),
//! enc/dec energy (nJ)`.
//!
//! [`analytic_cost`] is the closed-form alternative (parity-storage
//! dominated); the `ablation_analytic` bench compares the two — a design
//! decision DESIGN.md calls out (costs come from constructed gates, not
//! formulas).

use crate::{CodeChoice, ProtectedDesign};
use scanguard_netlist::{CellLibrary, GateKind};
use std::fmt;

/// One row of a cost table.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostRow {
    /// Code display name.
    pub code: String,
    /// Chain count `W`.
    pub chains: usize,
    /// Chain length `l`.
    pub chain_len: usize,
    /// Total protected area, um^2.
    pub area_um2: f64,
    /// Monitor overhead over the scanned baseline, %.
    pub overhead_pct: f64,
    /// Encoding power, mW.
    pub enc_power_mw: f64,
    /// Decoding power, mW.
    pub dec_power_mw: f64,
    /// Encode/decode latency `l x T`, ns.
    pub latency_ns: f64,
    /// Encoding energy over the latency window, nJ.
    pub enc_energy_nj: f64,
    /// Decoding energy, nJ.
    pub dec_energy_nj: f64,
}

impl fmt::Display for CostRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>3} {:>5} {:>9.0} {:>6.1} {:>6.2} {:>6.2} {:>8.0} {:>7.2} {:>7.2}",
            self.chains,
            self.chain_len,
            self.area_um2,
            self.overhead_pct,
            self.enc_power_mw,
            self.dec_power_mw,
            self.latency_ns,
            self.enc_energy_nj,
            self.dec_energy_nj
        )
    }
}

/// Header matching [`CostRow`]'s `Display` columns.
#[must_use]
pub fn cost_header() -> String {
    format!(
        "{:>3} {:>5} {:>9} {:>6} {:>6} {:>6} {:>8} {:>7} {:>7}",
        "W", "l", "um^2", "%", "encmW", "decmW", "t(ns)", "encnJ", "decnJ"
    )
}

/// Measures a design's cost row by simulating one quiet sleep/wake
/// sequence with pseudo-random state.
///
/// Power is the average over each phase's energy window; energy is
/// reported over the paper's latency definition `l x T` (the windows
/// also contain the 2 clear/capture bookkeeping cycles, which the paper
/// does not count).
#[must_use]
pub fn measure_cost(design: &ProtectedDesign, seed: u64) -> CostRow {
    let mut rt = design.runtime();
    rt.load_random_state(seed);
    let rep = rt.sleep_wake(|_, _| 0);
    debug_assert!(rep.state_intact(), "cost run must be error-free");
    let latency_ns = design.latency_ns();
    let enc_power = rep.encode.power_mw(design.clock_mhz);
    let dec_power = rep.decode.power_mw(design.clock_mhz);
    CostRow {
        code: design.monitor.code.name(),
        chains: design.chains.width(),
        chain_len: design.chain_len(),
        area_um2: design.protected.total_area_um2,
        overhead_pct: design.area_overhead_pct(),
        enc_power_mw: enc_power,
        dec_power_mw: dec_power,
        latency_ns,
        // P(mW) x t(ns) = pJ; /1000 = nJ.
        enc_energy_nj: enc_power * latency_ns / 1000.0,
        dec_energy_nj: dec_power * latency_ns / 1000.0,
    }
}

/// Closed-form cost estimate for comparison against the constructed
/// netlist (parity-store-dominated model).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnalyticCost {
    /// Estimated monitor area, um^2.
    pub monitor_area_um2: f64,
    /// Always-on storage bits.
    pub store_bits: usize,
    /// Latency `l x T`, ns.
    pub latency_ns: f64,
}

/// Estimates monitor cost without constructing gates.
///
/// Hamming: `(n-k) x l` store bits per block plus per-block glue; CRC:
/// two registers of the CRC width per block. Storage is costed at the
/// scan-flop rate, glue at a flat per-block/per-chain estimate.
#[must_use]
pub fn analytic_cost(
    ff_count: usize,
    chains: usize,
    code: CodeChoice,
    lib: &CellLibrary,
    clock_mhz: f64,
) -> AnalyticCost {
    let l = ff_count.div_ceil(chains);
    let groups = match code {
        CodeChoice::Crc16 => 1,
        _ => chains / code.group_width().max(1),
    };
    let store_bits = match code {
        CodeChoice::Crc16 => 32,
        CodeChoice::Parity { .. } => groups * l,
        CodeChoice::Hamming { m } => groups * m as usize * l,
        CodeChoice::ExtendedHamming { m } => groups * (m as usize + 1) * l,
    };
    let sdff = lib.params(GateKind::Sdff).area_um2;
    let mux = lib.params(GateKind::Mux2).area_um2;
    let xor = lib.params(GateKind::Xor2).area_um2;
    let dff = lib.params(GateKind::Dff).area_um2;
    // One shared sequencer: ~log2(l)+1 counter bits of DFF + 2 muxes +
    // inc glue, plus a terminal-count decode.
    let cnt_bits = (usize::BITS - l.leading_zeros()) as f64;
    let sequencer = cnt_bits * (dff + 2.0 * mux + 2.0 * xor) + cnt_bits * xor;
    let per_block_glue = match code {
        // Unrolled update network: ~3 XOR per parallel input bit, plus
        // the 16-bit comparator.
        CodeChoice::Crc16 => chains as f64 * 3.0 * xor + 32.0 * mux + 16.0 * xor,
        // One parity tree + one compare XOR.
        CodeChoice::Parity { group_width } => group_width as f64 * 0.5 * xor + 2.0 * xor,
        CodeChoice::Hamming { m } | CodeChoice::ExtendedHamming { m } => {
            let k = code.group_width() as f64;
            let mf = f64::from(m);
            // parity trees + syndrome XORs + k match/correct cones.
            mf * k * 0.5 * xor + mf * xor + k * (mf + 2.0) * xor
        }
    };
    let storage_area = match code {
        CodeChoice::Crc16 => store_bits as f64 * dff + store_bits as f64 * mux,
        _ => store_bits as f64 * sdff + groups as f64 * mux,
    };
    let feedback = chains as f64 * xor;
    AnalyticCost {
        monitor_area_um2: storage_area + groups as f64 * per_block_glue + sequencer + feedback,
        store_bits,
        latency_ns: l as f64 * 1000.0 / clock_mhz,
    }
}

/// Break-even analysis of a protected power-gating decision: how long a
/// sleep must last before the leakage saved outweighs the energy the
/// methodology spends on encoding and decoding.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BreakEven {
    /// Leakage while the domain runs, nW.
    pub active_leakage_nw: f64,
    /// Leakage while gated (always-on monitor + retention latches), nW.
    pub sleep_leakage_nw: f64,
    /// Monitoring energy per sleep episode (encode + decode), nJ.
    pub protection_energy_nj: f64,
    /// Minimum sleep duration for a net energy win, microseconds.
    pub min_sleep_us: f64,
}

/// Computes the break-even sleep duration from a measured [`CostRow`]
/// and the design's leakage figures.
///
/// The saved power is `active - sleep` leakage; the invested energy is
/// the encode plus decode energy of the monitoring pass. A gated episode
/// shorter than [`BreakEven::min_sleep_us`] costs more energy than it
/// saves — the criterion a power-management policy would use to decide
/// whether entering retention sleep is worth it.
#[must_use]
pub fn break_even(design: &ProtectedDesign, row: &CostRow) -> BreakEven {
    // Active: everything leaks. Asleep: gated cells stop leaking except
    // retention latches; the monitor domain stays on.
    let mut active = 0.0;
    let mut asleep = 0.0;
    for (id, cell) in design.netlist.cells() {
        let p = design.library.params(cell.kind());
        active += p.leakage_nw;
        if id.index() < design.gated_watermark {
            asleep += p.sleep_leakage_nw;
        } else {
            asleep += p.leakage_nw;
        }
    }
    let saved_nw = (active - asleep).max(1e-12);
    let invest_nj = row.enc_energy_nj + row.dec_energy_nj;
    // t[s] = E[J] / P[W]: nJ / nW = seconds.
    let min_sleep_s = invest_nj / saved_nw;
    BreakEven {
        active_leakage_nw: active,
        sleep_leakage_nw: asleep,
        protection_energy_nj: invest_nj,
        min_sleep_us: min_sleep_s * 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Synthesizer;
    use scanguard_netlist::NetlistBuilder;

    fn regs(n: usize) -> scanguard_netlist::Netlist {
        let mut b = NetlistBuilder::new("regs");
        for i in 0..n {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            b.output(&format!("q[{i}]"), q);
        }
        b.finish().unwrap()
    }

    #[test]
    fn cost_row_has_consistent_units() {
        let d = Synthesizer::new(regs(16))
            .chains(4)
            .code(CodeChoice::hamming7_4())
            .build()
            .unwrap();
        let row = measure_cost(&d, 1);
        assert_eq!(row.chains, 4);
        assert_eq!(row.chain_len, 4);
        assert!((row.latency_ns - 40.0).abs() < 1e-9);
        assert!(row.enc_power_mw > 0.0);
        assert!(row.dec_power_mw > 0.0);
        // Energy = power x latency.
        assert!((row.enc_energy_nj - row.enc_power_mw * 40.0 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn more_chains_cut_latency_and_energy() {
        let build = |w: usize| {
            let d = Synthesizer::new(regs(32))
                .chains(w)
                .code(CodeChoice::hamming7_4())
                .build()
                .unwrap();
            measure_cost(&d, 2)
        };
        let narrow = build(4);
        let wide = build(8);
        assert!(wide.latency_ns < narrow.latency_ns);
        assert!(wide.enc_energy_nj < narrow.enc_energy_nj);
        assert!(wide.area_um2 >= narrow.area_um2, "more blocks cost area");
    }

    #[test]
    fn analytic_tracks_constructed_within_factor_two() {
        let d = Synthesizer::new(regs(64))
            .chains(8)
            .code(CodeChoice::hamming7_4())
            .build()
            .unwrap();
        let constructed = d.protected.total_area_um2 - d.baseline.total_area_um2;
        let analytic = analytic_cost(64, 8, CodeChoice::hamming7_4(), &d.library, d.clock_mhz);
        let ratio = analytic.monitor_area_um2 / constructed;
        assert!(
            (0.5..2.0).contains(&ratio),
            "analytic {:.0} vs constructed {constructed:.0} (ratio {ratio:.2})",
            analytic.monitor_area_um2
        );
    }

    #[test]
    fn break_even_has_sane_magnitudes() {
        let d = Synthesizer::new(regs(64))
            .chains(8)
            .code(CodeChoice::hamming7_4())
            .build()
            .unwrap();
        let row = measure_cost(&d, 4);
        let be = break_even(&d, &row);
        assert!(be.active_leakage_nw > be.sleep_leakage_nw);
        assert!(be.protection_energy_nj > 0.0);
        // Microseconds-to-milliseconds is the plausible regime for a
        // ~100-flop domain; days would mean a unit bug.
        assert!(be.min_sleep_us > 0.1 && be.min_sleep_us < 1e6, "{be:?}");
    }

    #[test]
    fn shorter_chains_lower_the_break_even() {
        // Less encode/decode energy (Table I/II trend) means shorter
        // sleeps already pay off.
        let build = |w: usize| {
            let d = Synthesizer::new(regs(64))
                .chains(w)
                .code(CodeChoice::hamming7_4())
                .build()
                .unwrap();
            let row = measure_cost(&d, 5);
            break_even(&d, &row).min_sleep_us
        };
        assert!(build(16) < build(4));
    }

    #[test]
    fn header_and_row_align() {
        let h = cost_header();
        let d = Synthesizer::new(regs(16))
            .chains(4)
            .code(CodeChoice::crc16())
            .build()
            .unwrap();
        let row = measure_cost(&d, 3).to_string();
        assert_eq!(h.split_whitespace().count(), row.split_whitespace().count());
    }
}
