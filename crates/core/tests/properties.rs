//! Property-based tests of the protection flow's central invariants.

use proptest::prelude::*;
use scanguard_core::{CodeChoice, ProtectedDesign, Synthesizer};
use scanguard_netlist::NetlistBuilder;
use std::sync::OnceLock;

/// One shared mid-size design per code (synthesis is the expensive part;
/// the properties vary state and upset positions).
fn design(code: CodeChoice) -> &'static ProtectedDesign {
    static HAMMING: OnceLock<ProtectedDesign> = OnceLock::new();
    static SECDED: OnceLock<ProtectedDesign> = OnceLock::new();
    static CRC: OnceLock<ProtectedDesign> = OnceLock::new();
    static PARITY: OnceLock<ProtectedDesign> = OnceLock::new();
    let build = move || {
        let mut b = NetlistBuilder::new("bank");
        for i in 0..48 {
            let d = b.input(&format!("d[{i}]"));
            let (q, _) = b.dff(&format!("r{i}"), d);
            b.output(&format!("q[{i}]"), q);
        }
        Synthesizer::new(b.finish().expect("valid netlist"))
            .chains(8)
            .code(code)
            .build()
            .expect("synthesis")
    };
    match code {
        CodeChoice::Hamming { .. } => HAMMING.get_or_init(build),
        CodeChoice::ExtendedHamming { .. } => SECDED.get_or_init(build),
        CodeChoice::Crc16 => CRC.get_or_init(build),
        CodeChoice::Parity { .. } => PARITY.get_or_init(build),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE paper's guarantee: a single retention upset at *any* chain
    /// and depth, over *any* state, is detected and corrected.
    #[test]
    fn any_single_upset_is_always_corrected(
        seed in any::<u64>(),
        chain in 0usize..8,
        depth in 0usize..6,
    ) {
        let d = design(CodeChoice::hamming7_4());
        let mut rt = d.runtime();
        rt.load_random_state(seed);
        let rep = rt.sleep_wake(|sim, chains| {
            sim.flip_retention(chains.chains[chain].cells[depth]);
            1
        });
        prop_assert!(rep.error_observed, "upset at ({chain},{depth}) unreported");
        prop_assert!(rep.state_intact(), "upset at ({chain},{depth}) uncorrected");
        prop_assert!(rep.done_observed);
    }

    /// Quiet wake-ups never report errors or disturb state, whatever the
    /// state was.
    #[test]
    fn quiet_wakes_are_always_silent(seed in any::<u64>()) {
        let d = design(CodeChoice::hamming7_4());
        let mut rt = d.runtime();
        rt.load_random_state(seed);
        let rep = rt.sleep_wake(|_, _| 0);
        prop_assert!(!rep.error_observed);
        prop_assert!(rep.state_intact());
    }

    /// CRC-16 detects any upset pattern of 1..=4 clustered flips (bursts
    /// of <= 16 bits along a chain are within its guarantee).
    #[test]
    fn crc_detects_any_small_cluster(
        seed in any::<u64>(),
        chain in 0usize..8,
        start in 0usize..3,
        span in 1usize..4,
    ) {
        let d = design(CodeChoice::crc16());
        let mut rt = d.runtime();
        rt.load_random_state(seed);
        let rep = rt.sleep_wake(|sim, chains| {
            for i in 0..span {
                sim.flip_retention(chains.chains[chain].cells[start + i]);
            }
            span
        });
        prop_assert!(rep.error_observed, "cluster ({chain},{start},+{span}) missed");
        prop_assert_eq!(rep.residual_errors, span, "CRC must not modify state");
    }

    /// Even parity detects every single upset (odd weight) anywhere.
    #[test]
    fn parity_detects_any_single_upset(
        seed in any::<u64>(),
        chain in 0usize..8,
        depth in 0usize..6,
    ) {
        let d = design(CodeChoice::Parity { group_width: 4 });
        let mut rt = d.runtime();
        rt.load_random_state(seed);
        let rep = rt.sleep_wake(|sim, chains| {
            sim.flip_retention(chains.chains[chain].cells[depth]);
            1
        });
        prop_assert!(rep.error_observed, "parity missed ({chain},{depth})");
        prop_assert_eq!(rep.residual_errors, 1, "parity never corrects");
    }

    /// SEC-DED never leaves *more* wrong bits than were injected
    /// (no miscorrection), for any double upset in one word.
    #[test]
    fn secded_never_amplifies_damage(
        seed in any::<u64>(),
        group in 0usize..2,
        a in 0usize..4,
        b in 0usize..4,
        depth in 0usize..6,
    ) {
        prop_assume!(a != b);
        let d = design(CodeChoice::ExtendedHamming { m: 3 });
        let mut rt = d.runtime();
        rt.load_random_state(seed);
        let rep = rt.sleep_wake(|sim, chains| {
            sim.flip_retention(chains.chains[group * 4 + a].cells[depth]);
            sim.flip_retention(chains.chains[group * 4 + b].cells[depth]);
            2
        });
        prop_assert!(rep.error_observed);
        prop_assert!(rep.residual_errors <= 2, "miscorrection added damage");
    }
}

/// Cross-validation of the two fidelities: the gate-level monitor's
/// outcome must match what the behavioural code model predicts for the
/// same upset pattern, word by word.
mod hardware_vs_model {
    use super::*;

    use scanguard_codes::{BlockCode, Hamming};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn gate_level_decode_equals_behavioural_decode(
            seed in any::<u64>(),
            flips in proptest::collection::vec((0usize..8, 0usize..6), 1..4),
        ) {
            let d = design(CodeChoice::hamming7_4());
            let code = Hamming::h7_4();
            let mut rt = d.runtime();
            rt.load_random_state(seed);
            let before = d.chains.snapshot(rt.sim());

            // Behavioural prediction: words are cross-chain at equal
            // depth within each 4-chain group; apply flips, decode each
            // word with the codes crate.
            let l = d.chain_len();
            let mut predicted = before.clone();
            for &(c, depth) in &flips {
                let v = predicted[c][depth];
                predicted[c][depth] = !v;
            }
            for g in 0..2 {
                for t in 0..l {
                    let word_bits = |s: &Vec<Vec<scanguard_netlist::Logic>>| -> u64 {
                        (0..4).fold(0u64, |acc, i| {
                            acc | (u64::from(s[g * 4 + i][t] == scanguard_netlist::Logic::One) << i)
                        })
                    };
                    let clean = word_bits(&before);
                    let dirty = word_bits(&predicted);
                    let parity = code.encode(clean);
                    let (fixed, _) = code.correct(dirty, parity);
                    for i in 0..4 {
                        predicted[g * 4 + i][t] =
                            scanguard_netlist::Logic::from((fixed >> i) & 1 == 1);
                    }
                }
            }

            // Hardware run with the same flips applied to the retention
            // latches.
            let flips2 = flips.clone();
            let _ = rt.sleep_wake(move |sim, chains| {
                let mut n = 0;
                let mut seen = std::collections::HashSet::new();
                for &(c, depth) in &flips2 {
                    if seen.insert((c, depth)) {
                        sim.flip_retention(chains.chains[c].cells[depth]);
                        n += 1;
                    } else {
                        // Flipping twice cancels; mirror that by
                        // flipping again (net zero).
                        sim.flip_retention(chains.chains[c].cells[depth]);
                        n += 1;
                    }
                }
                n
            });
            let after = d.chains.snapshot(rt.sim());
            prop_assert_eq!(&after, &predicted, "hardware != behavioural model");
        }
    }
}
