//! Differential oracle: the symbolic SG205/SG206 verdicts must agree
//! bit-for-bit with gate-level fault injection on the production
//! simulators — scalar (real clock-domain gating) and wide (PPSFP) —
//! for every sampled upset. The prover is only trusted because it never
//! disagrees with simulation.

use proptest::prelude::*;
use scanguard_core::{apply_sabotage, CodeChoice, ProtectedDesign, Sabotage, Synthesizer};
use scanguard_dft::{
    monitor_pass_outcomes, ErrorPattern, MonitorPassConfig, MonitorPassPorts, UpsetOutcome,
    UpsetSimEngine,
};
use scanguard_lint::upset::{retained_state, FailKind, UpsetReport};
use scanguard_lint::LintContext;
use scanguard_netlist::NetlistBuilder;
use std::sync::OnceLock;

fn bank(flops: usize, chains: usize, code: CodeChoice) -> ProtectedDesign {
    let mut b = NetlistBuilder::new("bank");
    for i in 0..flops {
        let d = b.input(&format!("d[{i}]"));
        let (q, _) = b.dff(&format!("r{i}"), d);
        b.output(&format!("q[{i}]"), q);
    }
    Synthesizer::new(b.finish().expect("valid netlist"))
        .chains(chains)
        .code(code)
        .build()
        .expect("synthesis")
}

/// One shared design per code family (synthesis dominates runtime).
fn design(idx: usize) -> &'static ProtectedDesign {
    static CELLS: [OnceLock<ProtectedDesign>; 4] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    let codes = [
        CodeChoice::hamming7_4(),
        CodeChoice::ExtendedHamming { m: 3 },
        CodeChoice::Parity { group_width: 4 },
        CodeChoice::Crc16,
    ];
    CELLS[idx].get_or_init(|| bank(48, 8, codes[idx]))
}

fn symbolic(design: &ProtectedDesign) -> UpsetReport {
    let ctx = LintContext::with_design(&design.netlist, &design.library, design.lint_view());
    ctx.upset_report()
        .expect("monitor view present")
        .as_ref()
        .expect("engine runs")
        .clone()
}

fn oracle(
    design: &ProtectedDesign,
    faults: &[ErrorPattern],
    engine: UpsetSimEngine,
) -> Vec<UpsetOutcome> {
    let mh = &design.monitor;
    let ports = MonitorPassPorts {
        mon_en: mh.mon_en,
        mon_decode: mh.mon_decode,
        mon_clear: mh.mon_clear,
        sig_cap: mh.sig_cap,
        err: mh.err,
        done: mh.done,
    };
    let cfg = MonitorPassConfig {
        streaming_err: mh.code.streaming_check(),
        decode_high: mh.code.streaming_check(),
    };
    let state = retained_state(design.chains.width(), design.chain_len());
    monitor_pass_outcomes(
        &design.netlist,
        &design.library,
        &design.chains,
        &ports,
        &cfg,
        &state,
        faults,
        engine,
    )
}

/// What the symbolic report predicts for one fault: detection, and —
/// only under a correcting code, where SG205 claims it — correction.
fn predicted(rep: &UpsetReport, fault: &ErrorPattern) -> (bool, Option<bool>) {
    let kind = rep
        .failures
        .iter()
        .find(|f| f.pattern == *fault)
        .map(|f| f.kind);
    assert_ne!(kind, Some(FailKind::XAtSample), "verdicts must be sound");
    let detected = kind != Some(FailKind::MissedDetect);
    let corrected = if rep.corrects && matches!(fault, ErrorPattern::Single { .. }) {
        Some(kind != Some(FailKind::MissedCorrect))
    } else {
        None
    };
    (detected, corrected)
}

fn check_agreement(design: &ProtectedDesign, rep: &UpsetReport, faults: &[ErrorPattern]) {
    let scalar = oracle(design, faults, UpsetSimEngine::Scalar);
    let wide = oracle(design, faults, UpsetSimEngine::Wide);
    assert_eq!(scalar, wide, "scalar and wide oracles must agree");
    for (f, got) in faults.iter().zip(&scalar) {
        let (det, corr) = predicted(rep, f);
        assert_eq!(
            got.detected, det,
            "{}: symbolic and simulated detection disagree for {f:?}",
            rep.code
        );
        if let Some(corr) = corr {
            assert_eq!(
                got.corrected, corr,
                "{}: symbolic and simulated correction disagree for {f:?}",
                rep.code
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random single upsets on every clean code family: the exhaustive
    /// symbolic sweep and the injecting simulators must agree.
    #[test]
    fn clean_singles_match_simulation(
        code in 0usize..4,
        picks in proptest::collection::vec((0usize..8, 0usize..6), 1..8),
    ) {
        let d = design(code);
        let rep = symbolic(d);
        prop_assert!(rep.is_clean(), "shared designs verify clean");
        let faults: Vec<ErrorPattern> = picks
            .into_iter()
            .map(|(chain, depth)| ErrorPattern::Single { chain, depth })
            .collect();
        check_agreement(d, &rep, &faults);
    }

    /// Random claimed bursts (span 2, in-group) under the correcting
    /// codes: symbolic burst detection matches injection.
    #[test]
    fn clean_bursts_match_simulation(
        code in 0usize..2,
        group in 0usize..2,
        first in 0usize..3,
        depth in 0usize..6,
    ) {
        let d = design(code);
        let rep = symbolic(d);
        let faults = [ErrorPattern::Burst {
            first_chain: group * 4 + first,
            span: 2,
            depth,
        }];
        check_agreement(d, &rep, &faults);
    }
}

/// The seeded missed-correct bug: symbolic says exactly chain 0 goes
/// uncorrected; injection on both engines must paint the same boundary,
/// fault for fault, over the *entire* single-upset space.
#[test]
fn dropped_correction_boundary_matches_simulation_exhaustively() {
    let mut d = bank(32, 4, CodeChoice::hamming7_4());
    apply_sabotage(&mut d, Sabotage::DropCorrection).unwrap();
    let rep = symbolic(&d);
    assert!(rep.clean_failures.is_empty());
    assert!(!rep.failures.is_empty());
    let l = d.chain_len();
    let all_singles: Vec<ErrorPattern> = (0..4)
        .flat_map(|chain| (0..l).map(move |depth| ErrorPattern::Single { chain, depth }))
        .collect();
    check_agreement(&d, &rep, &all_singles);
    // And the boundary is exactly chain 0.
    for f in rep.failures {
        assert!(matches!(f.pattern, ErrorPattern::Single { chain: 0, .. }));
        assert_eq!(f.kind, FailKind::MissedCorrect);
    }
}
