//! Controller FSM phase-event sequence (paper Fig. 3(b)): a
//! protected-FIFO sleep/wake run must emit the encode → sleep → wake →
//! decode/check phases in order, with per-phase cycle counts summing to
//! the run total and per-phase energy matching the report's windows —
//! and attaching the recorder must not change the run itself.

use proptest::prelude::*;
use scanguard_core::{CodeChoice, SleepWakeReport, Synthesizer};
use scanguard_designs::Fifo;
use scanguard_obs::{ArgValue, Event, EventKind, Lane, Recorder, RecorderConfig};
use std::sync::Arc;

/// The Fig. 3(b) traversal order, as span names on the controller lane.
const FIG3B: &[&str] = &[
    "EncodeClear",
    "Encode",
    "EncodeCapture",
    "Save",
    "PowerDown",
    "Sleep",
    "PowerUp",
    "Restore",
    "DecodeClear",
    "Decode",
    "Check",
];

fn u64_arg(ev: &Event, key: &str) -> u64 {
    match ev.args.iter().find(|(k, _)| k == key) {
        Some((_, ArgValue::U(v))) => *v,
        other => panic!("span {:?} missing u64 arg {key:?}: {other:?}", ev.name),
    }
}

fn f64_arg(ev: &Event, key: &str) -> f64 {
    match ev.args.iter().find(|(k, _)| k == key) {
        Some((_, ArgValue::F(v))) => *v,
        other => panic!("span {:?} missing f64 arg {key:?}: {other:?}", ev.name),
    }
}

fn run(w: usize, sleep_cycles: u64, observed: bool) -> (SleepWakeReport, Vec<Event>) {
    let fifo = Fifo::generate(4, 4);
    let design = Synthesizer::new(fifo.netlist)
        .chains(w)
        .code(CodeChoice::hamming7_4())
        .build()
        .unwrap();
    let mut rt = design.runtime();
    let rec = Arc::new(Recorder::new(RecorderConfig {
        trace: true,
        ..RecorderConfig::default()
    }));
    if observed {
        rt.attach_obs(rec.clone());
    }
    rt.set_sleep_cycles(sleep_cycles);
    rt.load_random_state(0xC0FFEE ^ w as u64);
    let report = rt.sleep_wake(|sim, chains| {
        sim.flip_retention(chains.chains[0].cells[0]);
        1
    });
    (report, rec.events())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn phase_events_cover_the_run_in_order(
        // Hamming(7,4) groups chains four at a time, so W is a multiple
        // of 4.
        w in (1usize..4).prop_map(|g| 4 * g),
        sleep_cycles in 1u64..8,
    ) {
        let (report, events) = run(w, sleep_cycles, true);
        let ctrl: Vec<&Event> = events
            .iter()
            .filter(|e| e.lane == Lane::Controller)
            .collect();

        // Span opens walk the Fig. 3(b) sequence in order.
        let opened: Vec<&str> = ctrl
            .iter()
            .filter(|e| e.kind == EventKind::Begin)
            .map(|e| e.name.as_str())
            .collect();
        prop_assert_eq!(&opened, FIG3B);

        // Per-phase cycle counts partition the run total.
        let closes: Vec<&&Event> =
            ctrl.iter().filter(|e| e.kind == EventKind::End).collect();
        prop_assert_eq!(closes.len(), FIG3B.len());
        let total: u64 = closes.iter().map(|e| u64_arg(e, "cycles")).sum();
        prop_assert_eq!(total, report.total_cycles);

        // Sleep lasted exactly what was asked; encode/decode span the
        // chain length.
        let by_name = |name: &str| {
            *closes
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("no {name} close"))
        };
        prop_assert_eq!(u64_arg(by_name("Sleep"), "cycles"), sleep_cycles);
        prop_assert_eq!(u64_arg(by_name("Encode"), "cycles"), report.encode.cycles);
        prop_assert_eq!(u64_arg(by_name("Decode"), "cycles"), report.decode.cycles);

        // The span energies are the report's encode/decode windows.
        let close_enough = |a: f64, b: f64| (a - b).abs() < 1e-9;
        prop_assert!(close_enough(
            f64_arg(by_name("Encode"), "energy_pj"),
            report.encode.dynamic_pj
        ));
        prop_assert!(close_enough(
            f64_arg(by_name("Decode"), "energy_pj"),
            report.decode.dynamic_pj
        ));

        // The rush upset and run summary landed on the timeline.
        prop_assert!(ctrl.iter().any(|e| e.name == "rush_upset"));
        let done = ctrl
            .iter()
            .find(|e| e.name == "sleep_wake.done")
            .expect("summary instant");
        prop_assert_eq!(u64_arg(done, "upsets"), 1);
        prop_assert_eq!(u64_arg(done, "residual_errors"), 0);
    }

    #[test]
    fn observation_does_not_perturb_the_run(
        w in (1usize..4).prop_map(|g| 4 * g),
        sleep_cycles in 1u64..8,
    ) {
        let (observed, events) = run(w, sleep_cycles, true);
        let (plain, no_events) = run(w, sleep_cycles, false);
        prop_assert_eq!(observed, plain);
        prop_assert!(!events.is_empty());
        prop_assert!(no_events.is_empty());
    }
}
