//! Exact multi-objective Pareto analysis over evaluated points.
//!
//! All objectives are cost-like (smaller is better); reliability is
//! expressed as residual upset probability so that it minimizes too.
//! Fronts are computed by exact `O(n^2)` pairwise dominance — the
//! spaces here are hundreds of points, where the simple algorithm is
//! both fast and obviously correct (the property tests in
//! `tests/pareto_props.rs` lean on that).

use crate::report::PointResult;

/// A minimizable objective extracted from a [`PointResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Objective {
    /// Monitor area overhead over the scanned baseline, %.
    AreaOverheadPct,
    /// Encode/decode latency `l x T`, ns.
    LatencyNs,
    /// Encode + decode energy per sleep episode, nJ.
    EnergyNj,
    /// Wake-to-usable latency (power-network settle + decode), cycles.
    WakeCycles,
    /// Peak shared-rail bounce on wake, V.
    PeakBounceV,
    /// Probability a wake event ends with corrupted state.
    ResidualUpsetProb,
    /// Break-even sleep duration, us.
    MinSleepUs,
}

/// Every objective, in the canonical order.
pub const ALL_OBJECTIVES: [Objective; 7] = [
    Objective::AreaOverheadPct,
    Objective::LatencyNs,
    Objective::EnergyNj,
    Objective::WakeCycles,
    Objective::PeakBounceV,
    Objective::ResidualUpsetProb,
    Objective::MinSleepUs,
];

impl Objective {
    /// Parses one objective name (short or field-style spelling).
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name.trim() {
            "area" | "area_overhead_pct" | "overhead" => Ok(Objective::AreaOverheadPct),
            "latency" | "latency_ns" => Ok(Objective::LatencyNs),
            "energy" | "energy_nj" => Ok(Objective::EnergyNj),
            "wake" | "wake_cycles" => Ok(Objective::WakeCycles),
            "bounce" | "peak_bounce_v" => Ok(Objective::PeakBounceV),
            "residual" | "residual_upset_prob" => Ok(Objective::ResidualUpsetProb),
            "sleep" | "min_sleep_us" => Ok(Objective::MinSleepUs),
            other => Err(format!(
                "unknown objective {other:?} (area | latency | energy | wake | bounce | residual | sleep)"
            )),
        }
    }

    /// Parses a comma-separated objective list.
    ///
    /// # Errors
    ///
    /// Returns the first bad name, or a message for an empty list.
    pub fn parse_list(list: &str) -> Result<Vec<Self>, String> {
        let objs: Vec<Self> = list
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(Self::parse)
            .collect::<Result<_, _>>()?;
        if objs.is_empty() {
            return Err("empty objective list".into());
        }
        Ok(objs)
    }

    /// Short name (the first spelling [`Objective::parse`] accepts).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Objective::AreaOverheadPct => "area",
            Objective::LatencyNs => "latency",
            Objective::EnergyNj => "energy",
            Objective::WakeCycles => "wake",
            Objective::PeakBounceV => "bounce",
            Objective::ResidualUpsetProb => "residual",
            Objective::MinSleepUs => "sleep",
        }
    }

    /// Extracts this objective's (minimizable) value from a point.
    #[must_use]
    pub fn value(&self, p: &PointResult) -> f64 {
        match self {
            Objective::AreaOverheadPct => p.area_overhead_pct,
            Objective::LatencyNs => p.latency_ns,
            Objective::EnergyNj => p.enc_energy_nj + p.dec_energy_nj,
            Objective::WakeCycles => p.wake_cycles as f64,
            Objective::PeakBounceV => p.peak_bounce_v,
            Objective::ResidualUpsetProb => p.residual_upset_prob,
            Objective::MinSleepUs => p.min_sleep_us,
        }
    }
}

/// `true` when `a` dominates `b`: no worse everywhere, strictly better
/// somewhere (all objectives minimized).
#[must_use]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the exact Pareto front of `vectors` (ascending order).
/// A point equal to a front member on every objective is also on the
/// front (it is not strictly beaten anywhere).
#[must_use]
pub fn pareto_front(vectors: &[Vec<f64>]) -> Vec<usize> {
    (0..vectors.len())
        .filter(|&i| !vectors.iter().any(|other| dominates(other, &vectors[i])))
        .collect()
}

/// Projects `points` onto `objectives` (one vector per point).
#[must_use]
pub fn objective_vectors(points: &[PointResult], objectives: &[Objective]) -> Vec<Vec<f64>> {
    points
        .iter()
        .map(|p| objectives.iter().map(|o| o.value(p)).collect())
        .collect()
}

/// Indices of the Pareto-optimal points under `objectives`.
#[must_use]
pub fn front_of(points: &[PointResult], objectives: &[Objective]) -> Vec<usize> {
    pareto_front(&objective_vectors(points, objectives))
}

/// Picks the knee point of a front: each objective is min-max
/// normalized over the front, and the point minimizing the weighted sum
/// wins. `weights` pairs with `objectives` (missing tail entries weigh
/// 1.0). Returns `None` for an empty front.
#[must_use]
pub fn knee_point(
    points: &[PointResult],
    front: &[usize],
    objectives: &[Objective],
    weights: &[f64],
) -> Option<usize> {
    if front.is_empty() {
        return None;
    }
    let vectors = objective_vectors(points, objectives);
    let dims = objectives.len();
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for &i in front {
        for d in 0..dims {
            lo[d] = lo[d].min(vectors[i][d]);
            hi[d] = hi[d].max(vectors[i][d]);
        }
    }
    let score = |i: usize| -> f64 {
        (0..dims)
            .map(|d| {
                let span = hi[d] - lo[d];
                let norm = if span > 0.0 {
                    (vectors[i][d] - lo[d]) / span
                } else {
                    0.0
                };
                norm * weights.get(d).copied().unwrap_or(1.0)
            })
            .sum()
    };
    // Ties break toward the lower id: stable output.
    front
        .iter()
        .copied()
        .min_by(|&a, &b| score(a).total_cmp(&score(b)).then(a.cmp(&b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 2.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 2.0]));
        assert!(
            !dominates(&[1.0, 2.0], &[1.0, 2.0]),
            "equal never dominates"
        );
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]), "trade-off");
    }

    #[test]
    fn front_of_a_chain_is_its_minimum() {
        // Totally ordered points: only the best survives.
        let vs: Vec<Vec<f64>> = (0..10).map(|i| vec![f64::from(i), f64::from(i)]).collect();
        assert_eq!(pareto_front(&vs), vec![0]);
    }

    #[test]
    fn anti_chain_survives_whole() {
        let vs: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![f64::from(i), f64::from(10 - i)])
            .collect();
        assert_eq!(pareto_front(&vs), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn duplicates_of_a_front_point_stay() {
        let vs = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(pareto_front(&vs), vec![0, 1]);
    }

    #[test]
    fn objective_names_round_trip() {
        for o in ALL_OBJECTIVES {
            assert_eq!(Objective::parse(o.name()).unwrap(), o);
        }
        assert!(Objective::parse("speed").is_err());
        assert_eq!(
            Objective::parse_list("area, latency").unwrap(),
            vec![Objective::AreaOverheadPct, Objective::LatencyNs]
        );
        assert!(Objective::parse_list("").is_err());
    }

    #[test]
    fn knee_prefers_the_balanced_corner() {
        let mk = |area: f64, lat: f64| PointResult {
            area_overhead_pct: area,
            latency_ns: lat,
            ..PointResult::zeroed()
        };
        let points = vec![mk(0.0, 100.0), mk(10.0, 10.0), mk(100.0, 0.0)];
        let objectives = [Objective::AreaOverheadPct, Objective::LatencyNs];
        let front = front_of(&points, &objectives);
        assert_eq!(front, vec![0, 1, 2]);
        let knee = knee_point(&points, &front, &objectives, &[1.0, 1.0]).unwrap();
        assert_eq!(knee, 1, "the 10/10 corner beats the extremes");
    }
}
