//! The exploration worker pool — now the workspace-shared
//! [`scanguard-par`](scanguard_par) crate, re-exported here so existing
//! `scanguard_explore::run_pool` users keep compiling. The fault
//! simulator in `scanguard-dft` uses the same pool, which is why it
//! lives below both crates in the dependency graph.

pub use scanguard_par::run_pool;
