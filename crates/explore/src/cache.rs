//! Memoized synthesis: one build per `(design, W, code)`, shared by the
//! wake-strategy variants.
//!
//! Synthesizing and cost-measuring a protected design dominates a
//! point's evaluation; the wake axis only changes the power-network
//! transient and the Monte-Carlo recovery run. The cache keys builds by
//! the configuration that actually determines the netlist, so a space
//! with three wake strategies does a third of the naive build count.
//!
//! Concurrency: the map hands out one `Arc<OnceLock>` cell per key;
//! [`std::sync::OnceLock::get_or_init`] guarantees exactly one builder
//! runs per key while concurrent lookups for the same key block until
//! the value lands. Hit/miss counts are therefore deterministic
//! (misses = unique keys touched), which the byte-identical-output
//! guarantee relies on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Identity of a synthesized build (wake strategy excluded on purpose).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BuildKey {
    /// Design label (e.g. `fifo32x32`).
    pub design: String,
    /// Chain count `W`.
    pub chains: usize,
    /// Code display name (stable per [`scanguard_core::CodeChoice`]).
    pub code: String,
    /// Manufacturing-test width `T`, when the space requests the test
    /// mode — the concatenation muxes change the netlist, so builds at
    /// different widths must not alias.
    pub test_width: Option<usize>,
}

/// Cache statistics, reported alongside exploration results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups that found (or waited for) an existing build.
    pub hits: usize,
    /// Lookups that ran the builder (= unique keys).
    pub misses: usize,
}

/// A concurrent, memoizing build cache.
pub struct SynthCache<T> {
    cells: Mutex<HashMap<BuildKey, Arc<OnceLock<Arc<T>>>>>,
    builds: AtomicUsize,
    lookups: AtomicUsize,
}

impl<T> std::fmt::Debug for SynthCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthCache")
            .field("entries", &self.cells.lock().map(|m| m.len()).unwrap_or(0))
            .finish_non_exhaustive()
    }
}

impl<T> Default for SynthCache<T> {
    fn default() -> Self {
        SynthCache {
            cells: Mutex::new(HashMap::new()),
            builds: AtomicUsize::new(0),
            lookups: AtomicUsize::new(0),
        }
    }
}

impl<T> SynthCache<T> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached value for `key`, running `build` (once,
    /// globally) if absent. Concurrent callers for the same key block
    /// until the single builder finishes.
    ///
    /// # Panics
    ///
    /// Propagates a poisoned map lock (a builder panicked).
    pub fn get_or_build<F: FnOnce() -> T>(&self, key: BuildKey, build: F) -> Arc<T> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let cell = {
            let mut map = self.cells.lock().expect("cache lock");
            Arc::clone(map.entry(key).or_default())
        };
        Arc::clone(cell.get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(build())
        }))
    }

    /// Hit/miss counts so far. Deterministic for a fixed point set:
    /// misses equal the number of distinct keys, hits the remainder.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let misses = self.builds.load(Ordering::Relaxed);
        CacheStats {
            hits: self.lookups.load(Ordering::Relaxed) - misses,
            misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(w: usize) -> BuildKey {
        BuildKey {
            design: "d".into(),
            chains: w,
            code: "c".into(),
            test_width: None,
        }
    }

    #[test]
    fn second_lookup_reuses_the_build() {
        let cache = SynthCache::new();
        let a = cache.get_or_build(key(4), || 42);
        let b = cache.get_or_build(key(4), || unreachable!("must be cached"));
        assert_eq!(*a, 42);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn distinct_keys_build_separately() {
        let cache = SynthCache::new();
        cache.get_or_build(key(4), || 1);
        cache.get_or_build(key(8), || 2);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = SynthCache::new();
        let built = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    cache.get_or_build(key(4), || {
                        built.fetch_add(1, Ordering::Relaxed);
                        7
                    })
                });
            }
        });
        assert_eq!(built.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 7);
    }
}
