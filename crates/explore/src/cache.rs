//! Memoized synthesis: one build per `(design, W, code)`, shared by the
//! wake-strategy variants.
//!
//! Synthesizing and cost-measuring a protected design dominates a
//! point's evaluation; the wake axis only changes the power-network
//! transient and the Monte-Carlo recovery run. The cache keys builds by
//! the configuration that actually determines the netlist, so a space
//! with three wake strategies does a third of the naive build count.
//!
//! Concurrency: the map hands out one slot per key; the slot's own
//! `Building` state guarantees exactly one builder runs per key while
//! concurrent lookups for the same key block until the value lands.
//! Hit/miss counts are therefore deterministic (misses = unique keys
//! touched), which the byte-identical-output guarantee relies on.
//!
//! Panic safety: a builder that panics does **not** wedge its key. The
//! slot returns to `Empty`, blocked waiters wake and retry (one of them
//! becomes the next builder), and [`SynthCache::try_get_or_build`]
//! reports the panic as an error — the contract a long-running daemon
//! needs, where one poisoned request must not take every later request
//! for the same configuration down with it.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Identity of a synthesized build (wake strategy excluded on purpose).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BuildKey {
    /// Design label (e.g. `fifo32x32`).
    pub design: String,
    /// Chain count `W`.
    pub chains: usize,
    /// Code display name (stable per [`scanguard_core::CodeChoice`]).
    pub code: String,
    /// Manufacturing-test width `T`, when the space requests the test
    /// mode — the concatenation muxes change the netlist, so builds at
    /// different widths must not alias.
    pub test_width: Option<usize>,
}

impl BuildKey {
    /// The canonical content string this key addresses: what the
    /// persistent store hashes (together with its version salt) to name
    /// the entry on disk.
    #[must_use]
    pub fn content(&self) -> String {
        match self.test_width {
            Some(t) => format!("{}/W{}/{}/T{t}", self.design, self.chains, self.code),
            None => format!("{}/W{}/{}/T-", self.design, self.chains, self.code),
        }
    }
}

/// Cache statistics, reported alongside exploration results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups that found (or waited for) an existing build.
    pub hits: usize,
    /// Lookups that ran the builder (= unique keys).
    pub misses: usize,
}

/// A build attempt panicked. The slot it was filling is back to empty
/// and the next lookup for the same key will retry the build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildPanic {
    /// The panic payload, rendered (`&str`/`String` payloads verbatim,
    /// anything else as a placeholder).
    pub message: String,
}

impl std::fmt::Display for BuildPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "builder panicked: {}", self.message)
    }
}

impl std::error::Error for BuildPanic {}

/// One key's slot: `Empty` (no build yet, or the last attempt
/// panicked), `Building` (exactly one builder is running), or `Ready`.
#[derive(Debug)]
enum SlotState<T> {
    Empty,
    Building,
    Ready(Arc<T>),
}

#[derive(Debug)]
struct Slot<T> {
    state: Mutex<SlotState<T>>,
    changed: Condvar,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Slot {
            state: Mutex::new(SlotState::Empty),
            changed: Condvar::new(),
        }
    }
}

/// A concurrent, memoizing build cache.
pub struct SynthCache<T> {
    cells: Mutex<HashMap<BuildKey, Arc<Slot<T>>>>,
    builds: AtomicUsize,
    lookups: AtomicUsize,
    panicked: AtomicUsize,
}

impl<T> std::fmt::Debug for SynthCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthCache")
            .field("entries", &self.cells.lock().map(|m| m.len()).unwrap_or(0))
            .finish_non_exhaustive()
    }
}

impl<T> Default for SynthCache<T> {
    fn default() -> Self {
        SynthCache {
            cells: Mutex::new(HashMap::new()),
            builds: AtomicUsize::new(0),
            lookups: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
        }
    }
}

impl<T> SynthCache<T> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached value for `key`, running `build` (once,
    /// globally) if absent. Concurrent callers for the same key block
    /// until the single builder finishes.
    ///
    /// # Panics
    ///
    /// Re-raises a builder panic — but the slot stays retryable: a
    /// later lookup for the same key runs a fresh build instead of
    /// wedging (see [`try_get_or_build`](Self::try_get_or_build) for
    /// the error-returning form).
    pub fn get_or_build<F: FnOnce() -> T>(&self, key: BuildKey, build: F) -> Arc<T> {
        match self.try_get_or_build(key, build) {
            Ok(v) => v,
            Err(p) => panic!("{p}"),
        }
    }

    /// [`get_or_build`](Self::get_or_build), with builder panics
    /// converted to an error instead of unwinding. On `Err` the slot is
    /// back to empty, so the key stays retryable; waiters blocked on
    /// the panicked build wake and retry (one becomes the new builder).
    ///
    /// # Errors
    ///
    /// [`BuildPanic`] when `build` panicked.
    pub fn try_get_or_build<F: FnOnce() -> T>(
        &self,
        key: BuildKey,
        build: F,
    ) -> Result<Arc<T>, BuildPanic> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let slot = {
            let mut map = self.cells.lock().expect("cache lock");
            Arc::clone(map.entry(key).or_default())
        };
        // Wait until the slot is ready (return it) or empty (claim it).
        {
            let mut state = slot.state.lock().expect("slot lock");
            loop {
                match &*state {
                    SlotState::Ready(v) => return Ok(Arc::clone(v)),
                    SlotState::Building => {
                        state = slot.changed.wait(state).expect("slot lock");
                    }
                    SlotState::Empty => {
                        *state = SlotState::Building;
                        break;
                    }
                }
            }
        }
        // We are the builder; the slot lock is released while we run.
        let built = std::panic::catch_unwind(AssertUnwindSafe(build));
        let mut state = slot.state.lock().expect("slot lock");
        let result = match built {
            Ok(value) => {
                self.builds.fetch_add(1, Ordering::Relaxed);
                let value = Arc::new(value);
                *state = SlotState::Ready(Arc::clone(&value));
                Ok(value)
            }
            Err(payload) => {
                self.panicked.fetch_add(1, Ordering::Relaxed);
                *state = SlotState::Empty;
                Err(BuildPanic {
                    message: panic_message(payload.as_ref()),
                })
            }
        };
        drop(state);
        slot.changed.notify_all();
        result
    }

    /// Hit/miss counts so far. Deterministic for a fixed point set:
    /// misses equal the number of distinct keys, hits the remainder.
    /// A panicked build counts as neither (its lookup is excluded).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let misses = self.builds.load(Ordering::Relaxed);
        CacheStats {
            hits: self
                .lookups
                .load(Ordering::Relaxed)
                .saturating_sub(misses)
                .saturating_sub(self.panics()),
            misses,
        }
    }

    /// Lookups whose build panicked (lookups = hits + misses + panics).
    fn panics(&self) -> usize {
        self.panicked.load(Ordering::Relaxed)
    }

    /// Entries currently cached (ready or building).
    ///
    /// # Panics
    ///
    /// Propagates a poisoned map lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.lock().expect("cache lock").len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(w: usize) -> BuildKey {
        BuildKey {
            design: "d".into(),
            chains: w,
            code: "c".into(),
            test_width: None,
        }
    }

    #[test]
    fn second_lookup_reuses_the_build() {
        let cache = SynthCache::new();
        let a = cache.get_or_build(key(4), || 42);
        let b = cache.get_or_build(key(4), || unreachable!("must be cached"));
        assert_eq!(*a, 42);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn distinct_keys_build_separately() {
        let cache = SynthCache::new();
        cache.get_or_build(key(4), || 1);
        cache.get_or_build(key(8), || 2);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
    }

    #[test]
    fn concurrent_same_key_builds_once() {
        let cache = SynthCache::new();
        let built = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    cache.get_or_build(key(4), || {
                        built.fetch_add(1, Ordering::Relaxed);
                        7
                    })
                });
            }
        });
        assert_eq!(built.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 7);
    }

    #[test]
    fn key_content_is_stable() {
        assert_eq!(key(4).content(), "d/W4/c/T-");
        let mut k = key(8);
        k.test_width = Some(2);
        assert_eq!(k.content(), "d/W8/c/T2");
    }

    #[test]
    fn panicked_build_leaves_the_slot_retryable() {
        // Regression: a panicking builder used to be able to wedge
        // every later request for the same key; now it reports the
        // panic and the next lookup rebuilds.
        let cache: SynthCache<u32> = SynthCache::new();
        let err = cache
            .try_get_or_build(key(4), || panic!("synthesis exploded"))
            .unwrap_err();
        assert!(err.message.contains("synthesis exploded"), "{err}");
        let v = cache
            .try_get_or_build(key(4), || 9)
            .expect("slot must be retryable after a panic");
        assert_eq!(*v, 9);
        assert_eq!(cache.stats().misses, 1, "only the good build counts");
    }

    #[test]
    fn waiters_blocked_on_a_panicking_build_recover() {
        let cache: SynthCache<u32> = SynthCache::new();
        let rebuilt = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let panicker = s.spawn(|| {
                cache.try_get_or_build(key(4), || {
                    // Give waiters time to block on the Building slot.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    panic!("boom")
                })
            });
            let waiters: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        cache.try_get_or_build(key(4), || {
                            rebuilt.fetch_add(1, Ordering::Relaxed);
                            11
                        })
                    })
                })
                .collect();
            assert!(panicker.join().unwrap().is_err());
            for w in waiters {
                assert_eq!(*w.join().unwrap().unwrap(), 11);
            }
        });
        assert_eq!(
            rebuilt.load(Ordering::Relaxed),
            1,
            "exactly one waiter rebuilds"
        );
    }

    #[test]
    fn get_or_build_repanics_but_does_not_wedge() {
        let cache: SynthCache<u32> = SynthCache::new();
        let unwound = std::panic::catch_unwind(AssertUnwindSafe(|| {
            cache.get_or_build(key(4), || panic!("first attempt"))
        }));
        assert!(unwound.is_err());
        assert_eq!(*cache.get_or_build(key(4), || 5), 5);
    }
}
