//! Persistent content-addressed build store.
//!
//! The in-memory [`crate::SynthCache`] amortizes synthesis within one
//! exploration run but evaporates with the process. This module is its
//! durable backing: a directory of JSON entries addressed by the hash
//! of a **salted** [`crate::BuildKey`] content string, shared across
//! requests of a serving daemon and across restarts.
//!
//! Three properties carry the design:
//!
//! * **Content addressing with a version salt.** The address is
//!   `fnv64(salt + key)`; the salt folds in the crate version and a
//!   digest of the cell library ([`cache_salt`]), so entries written by
//!   an older build — different cost model, different synthesis —
//!   can never alias a current lookup. Each entry also records its
//!   salt and full key verbatim, and a load verifies both, so even a
//!   hash collision degrades to a miss, never to a wrong answer.
//! * **LRU / size-bounded eviction.** The store keeps an index
//!   (`index.json`) with per-entry byte sizes and a logical
//!   last-used clock; whenever a write pushes the store over
//!   [`StoreLimits`], least-recently-used entries are deleted first.
//! * **Write-through layering.** The store never computes anything: a
//!   caller's builder consults [`DiskStore::load`] before synthesizing
//!   and [`DiskStore::save`]s afterwards, making the in-memory cache a
//!   write-through layer over this one (see
//!   [`crate::explore_env`]).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// FNV-1a over a byte string — the store's address hash.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The version salt current builds write under: the crate version plus
/// a digest of the calibrated cell library. Either changing means old
/// entries describe a different cost model, and the salted address
/// guarantees they are never read again.
#[must_use]
pub fn cache_salt() -> String {
    let library = serde_json::to_string(&scanguard_netlist::CellLibrary::st120nm())
        .unwrap_or_else(|_| "unencodable-library".to_owned());
    format!(
        "v{}-lib{:016x}",
        env!("CARGO_PKG_VERSION"),
        fnv64(library.as_bytes())
    )
}

/// Bounds on the store; eviction keeps both satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreLimits {
    /// Maximum entry count (least-recently-used evicted beyond it).
    pub max_entries: usize,
    /// Maximum total payload bytes.
    pub max_bytes: u64,
}

impl Default for StoreLimits {
    fn default() -> Self {
        StoreLimits {
            max_entries: 4096,
            max_bytes: 256 * 1024 * 1024,
        }
    }
}

/// Store traffic counters (process-lifetime, not persisted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StoreStats {
    /// Loads that returned a verified entry.
    pub hits: usize,
    /// Loads that found nothing (or an alias that failed verification).
    pub misses: usize,
    /// Entries written.
    pub writes: usize,
    /// Entries evicted by the LRU policy.
    pub evictions: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Total payload bytes currently resident.
    pub bytes: u64,
}

#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct IndexEntry {
    bytes: u64,
    last_used: u64,
}

#[derive(Debug, Default, serde::Serialize, serde::Deserialize)]
struct Index {
    clock: u64,
    entries: BTreeMap<String, IndexEntry>,
}

#[derive(Debug, Default)]
struct Counters {
    hits: usize,
    misses: usize,
    writes: usize,
    evictions: usize,
}

/// A persistent content-addressed build store rooted at one directory.
///
/// Concurrency: one `DiskStore` is safe to share across threads (the
/// index sits behind a mutex). Two *processes* sharing a root are not
/// coordinated — the daemon is the single writer by design.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    salt: String,
    limits: StoreLimits,
    inner: Mutex<(Index, Counters)>,
}

impl DiskStore {
    /// Opens (creating if needed) the store rooted at `root`, writing
    /// under [`cache_salt`] with the given limits. An existing
    /// `index.json` is reloaded so LRU order survives restarts; if it
    /// is missing or unreadable the directory is rescanned.
    ///
    /// # Errors
    ///
    /// Returns a message when the root cannot be created.
    pub fn open(root: &Path, limits: StoreLimits) -> Result<Self, String> {
        Self::open_salted(root, &cache_salt(), limits)
    }

    /// [`open`](Self::open) with an explicit salt (tests exercise salt
    /// mismatches with it).
    ///
    /// # Errors
    ///
    /// Returns a message when the root cannot be created.
    pub fn open_salted(root: &Path, salt: &str, limits: StoreLimits) -> Result<Self, String> {
        std::fs::create_dir_all(root)
            .map_err(|e| format!("creating cache root {}: {e}", root.display()))?;
        let index = match std::fs::read_to_string(root.join("index.json"))
            .ok()
            .and_then(|doc| serde_json::from_str::<Index>(&doc).ok())
        {
            Some(index) => index,
            None => Self::rescan(root),
        };
        Ok(DiskStore {
            root: root.to_owned(),
            salt: salt.to_owned(),
            limits,
            inner: Mutex::new((index, Counters::default())),
        })
    }

    /// Rebuilds the index from the entry files on disk (used when
    /// `index.json` is absent or corrupt). Recovered entries share
    /// `last_used = 0`, so they are the first eviction candidates.
    fn rescan(root: &Path) -> Index {
        let mut entries = BTreeMap::new();
        if let Ok(dir) = std::fs::read_dir(root) {
            for file in dir.flatten() {
                let name = file.file_name().to_string_lossy().into_owned();
                let Some(addr) = name.strip_suffix(".entry.json") else {
                    continue;
                };
                let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
                entries.insert(addr.to_owned(), IndexEntry::new(bytes, 0));
            }
        }
        Index { clock: 1, entries }
    }

    /// The salt entries are written under.
    #[must_use]
    pub fn salt(&self) -> &str {
        &self.salt
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn addr(&self, key: &str) -> String {
        format!("{:016x}", fnv64(format!("{}\n{key}", self.salt).as_bytes()))
    }

    fn entry_path(&self, addr: &str) -> PathBuf {
        self.root.join(format!("{addr}.entry.json"))
    }

    /// Loads the payload stored for `key`, verifying the entry's
    /// recorded salt and key match before trusting it. Any IO or
    /// verification failure is a miss, never an error — the caller
    /// rebuilds and overwrites.
    ///
    /// # Panics
    ///
    /// Propagates a poisoned index lock.
    #[must_use]
    pub fn load(&self, key: &str) -> Option<String> {
        let addr = self.addr(key);
        let mut inner = self.inner.lock().expect("store lock");
        let (index, counters) = &mut *inner;
        let hit = index.entries.contains_key(&addr).then(|| {
            let doc = std::fs::read_to_string(self.entry_path(&addr)).ok()?;
            let value: serde::Value = serde_json::from_str(&doc).ok()?;
            let field = |name: &str| value.get(name).and_then(serde::Value::as_str);
            if field("salt") != Some(self.salt.as_str()) || field("key") != Some(key) {
                return None;
            }
            Some(field("doc")?.to_owned())
        });
        match hit.flatten() {
            Some(doc) => {
                counters.hits += 1;
                index.clock += 1;
                let clock = index.clock;
                if let Some(e) = index.entries.get_mut(&addr) {
                    e.last_used = clock;
                }
                self.persist_index(index);
                Some(doc)
            }
            None => {
                counters.misses += 1;
                None
            }
        }
    }

    /// Writes `doc` as the payload for `key`, then evicts
    /// least-recently-used entries until the limits hold again.
    ///
    /// # Errors
    ///
    /// Returns a message when the entry file cannot be written (the
    /// store is then unchanged).
    ///
    /// # Panics
    ///
    /// Propagates a poisoned index lock.
    pub fn save(&self, key: &str, doc: &str) -> Result<(), String> {
        let addr = self.addr(key);
        let entry = serde::Value::Object(vec![
            ("salt".to_owned(), serde::Value::Str(self.salt.clone())),
            ("key".to_owned(), serde::Value::Str(key.to_owned())),
            ("doc".to_owned(), serde::Value::Str(doc.to_owned())),
        ]);
        let rendered = serde_json::to_string(&entry).map_err(|e| format!("encoding entry: {e}"))?;
        let mut inner = self.inner.lock().expect("store lock");
        let (index, counters) = &mut *inner;
        let path = self.entry_path(&addr);
        std::fs::write(&path, &rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
        counters.writes += 1;
        index.clock += 1;
        let clock = index.clock;
        index
            .entries
            .insert(addr, IndexEntry::new(rendered.len() as u64, clock));
        counters.evictions += self.evict_over_limit(index);
        self.persist_index(index);
        Ok(())
    }

    /// Evicts LRU entries until the limits hold; returns how many went.
    fn evict_over_limit(&self, index: &mut Index) -> usize {
        let mut evicted = 0;
        loop {
            let total: u64 = index.entries.values().map(|e| e.bytes).sum();
            if index.entries.len() <= self.limits.max_entries && total <= self.limits.max_bytes {
                return evicted;
            }
            let Some(oldest) = index
                .entries
                .iter()
                .min_by_key(|(addr, e)| (e.last_used, (*addr).clone()))
                .map(|(addr, _)| addr.clone())
            else {
                return evicted;
            };
            index.entries.remove(&oldest);
            let _ = std::fs::remove_file(self.entry_path(&oldest));
            evicted += 1;
        }
    }

    /// Persists the index atomically (write + rename), so a kill mid-
    /// write leaves the previous index intact rather than a torn file.
    fn persist_index(&self, index: &Index) {
        let Ok(doc) = serde_json::to_string(index) else {
            return;
        };
        let tmp = self.root.join("index.json.tmp");
        if std::fs::write(&tmp, doc).is_ok() {
            let _ = std::fs::rename(&tmp, self.root.join("index.json"));
        }
    }

    /// Traffic counters plus current occupancy.
    ///
    /// # Panics
    ///
    /// Propagates a poisoned index lock.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store lock");
        let (index, counters) = &*inner;
        StoreStats {
            hits: counters.hits,
            misses: counters.misses,
            writes: counters.writes,
            evictions: counters.evictions,
            entries: index.entries.len(),
            bytes: index.entries.values().map(|e| e.bytes).sum(),
        }
    }
}

impl IndexEntry {
    fn new(bytes: u64, last_used: u64) -> Self {
        IndexEntry { bytes, last_used }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("scanguard-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn round_trips_and_counts() {
        let root = tmp_root("roundtrip");
        let store = DiskStore::open(&root, StoreLimits::default()).unwrap();
        assert_eq!(store.load("fifo4x4/W4/CRC-16/T-"), None);
        store.save("fifo4x4/W4/CRC-16/T-", "{\"x\":1}").unwrap();
        assert_eq!(
            store.load("fifo4x4/W4/CRC-16/T-").as_deref(),
            Some("{\"x\":1}")
        );
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.entries), (1, 1, 1, 1));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn survives_reopen() {
        let root = tmp_root("reopen");
        {
            let store = DiskStore::open(&root, StoreLimits::default()).unwrap();
            store.save("k1", "payload-one").unwrap();
        }
        let store = DiskStore::open(&root, StoreLimits::default()).unwrap();
        assert_eq!(store.load("k1").as_deref(), Some("payload-one"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn survives_a_lost_index() {
        let root = tmp_root("rescan");
        {
            let store = DiskStore::open(&root, StoreLimits::default()).unwrap();
            store.save("k1", "payload-one").unwrap();
        }
        std::fs::remove_file(root.join("index.json")).unwrap();
        let store = DiskStore::open(&root, StoreLimits::default()).unwrap();
        assert_eq!(store.load("k1").as_deref(), Some("payload-one"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_different_salt_never_reads_old_entries() {
        let root = tmp_root("salt");
        {
            let store = DiskStore::open_salted(&root, "v1", StoreLimits::default()).unwrap();
            store.save("k1", "old-model").unwrap();
        }
        let store = DiskStore::open_salted(&root, "v2", StoreLimits::default()).unwrap();
        assert_eq!(store.load("k1"), None, "salted address must not alias");
        store.save("k1", "new-model").unwrap();
        assert_eq!(store.load("k1").as_deref(), Some("new-model"));
        // The v1 entry is untouched on disk and still valid under v1.
        let old = DiskStore::open_salted(&root, "v1", StoreLimits::default()).unwrap();
        assert_eq!(old.load("k1").as_deref(), Some("old-model"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn entry_count_limit_evicts_least_recently_used() {
        let root = tmp_root("lru");
        let store = DiskStore::open_salted(
            &root,
            "s",
            StoreLimits {
                max_entries: 2,
                max_bytes: u64::MAX,
            },
        )
        .unwrap();
        store.save("a", "1").unwrap();
        store.save("b", "2").unwrap();
        // Touch `a` so `b` is now the least recently used.
        assert!(store.load("a").is_some());
        store.save("c", "3").unwrap();
        assert_eq!(store.load("b"), None, "LRU entry must be evicted");
        assert!(store.load("a").is_some());
        assert!(store.load("c").is_some());
        assert_eq!(store.stats().evictions, 1);
        assert_eq!(store.stats().entries, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn byte_limit_evicts_until_it_holds() {
        let root = tmp_root("bytes");
        // Each entry's JSON wrapper is ~40 bytes; cap to roughly two.
        let store = DiskStore::open_salted(
            &root,
            "s",
            StoreLimits {
                max_entries: usize::MAX,
                max_bytes: 90,
            },
        )
        .unwrap();
        store.save("a", "xxxxxxxxxx").unwrap();
        store.save("b", "yyyyyyyyyy").unwrap();
        store.save("c", "zzzzzzzzzz").unwrap();
        let s = store.stats();
        assert!(s.bytes <= 90, "limit must hold, got {} bytes", s.bytes);
        assert!(s.evictions >= 1);
        assert!(store.load("c").is_some(), "newest entry survives");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn salt_names_version_and_library() {
        let salt = cache_salt();
        assert!(salt.starts_with(&format!("v{}-lib", env!("CARGO_PKG_VERSION"))));
        assert_eq!(salt, cache_salt(), "salt must be stable within a build");
    }
}
