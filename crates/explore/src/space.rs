//! Design-space enumeration: the cross-product of design, chain count,
//! code choice and wake strategy that [`crate::explore`] evaluates.
//!
//! The chain-count axis is not free-form: a configuration is only
//! meaningful when every chain has the same length (`W` divides the
//! flop count) and the monitor blocks tile the chains exactly
//! (`W` is a multiple of [`CodeChoice::group_width`]). [`SpaceSpec::enumerate`]
//! applies both constraints, so infeasible combinations (e.g.
//! Hamming(15,11) on the 32x32 FIFO, whose 1040 flops have no divisor
//! divisible by 11 in range) silently contribute zero points.

use scanguard_core::CodeChoice;
use scanguard_designs::{mesh, register_file, Datapath, Fifo};
use scanguard_netlist::Netlist;
use scanguard_power::WakeStrategy;

/// A gated design the explorer can synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DesignSpec {
    /// `depth x width` FIFO (the paper's case study is 32x32).
    Fifo {
        /// Queue depth (words).
        depth: usize,
        /// Word width (bits).
        width: usize,
    },
    /// Accumulator datapath with `regs` registers of `width` bits.
    Datapath {
        /// Register count.
        regs: usize,
        /// Register width (bits).
        width: usize,
    },
    /// `words x width` register file.
    RegFile {
        /// Word count.
        words: usize,
        /// Word width (bits).
        width: usize,
    },
    /// `rows x cols` toroidal XOR mesh — the scaling workhorse
    /// (`mesh100x100` is 10^4 flops, `mesh320x320` ~10^5).
    Mesh {
        /// Grid rows.
        rows: usize,
        /// Grid columns (>= 2).
        cols: usize,
    },
    /// A netlist imported from structural Verilog and registered in
    /// this process under a content hash (see [`register_import`]).
    ///
    /// The variant stays `Copy` and serializable, so imported designs
    /// flow through the explorer's point keys and caches like any
    /// generator — but [`DesignSpec::netlist`] can only resolve it in
    /// the process that called [`register_import`].
    Import {
        /// FNV-1a hash of the imported source text.
        key: u64,
    },
}

/// Process-global registry backing [`DesignSpec::Import`].
fn import_registry() -> &'static std::sync::Mutex<std::collections::HashMap<u64, Netlist>> {
    static REGISTRY: std::sync::OnceLock<
        std::sync::Mutex<std::collections::HashMap<u64, Netlist>>,
    > = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| std::sync::Mutex::new(std::collections::HashMap::new()))
}

/// Registers an imported netlist under `key` (the FNV-1a hash of its
/// source text) and returns the [`DesignSpec::Import`] spec that
/// resolves to it for the rest of the process lifetime.
///
/// Re-registering the same key replaces the stored netlist — callers
/// hash the source, so identical keys mean identical designs.
pub fn register_import(key: u64, netlist: Netlist) -> DesignSpec {
    import_registry()
        .lock()
        .expect("import registry poisoned")
        .insert(key, netlist);
    DesignSpec::Import { key }
}

impl DesignSpec {
    /// Parses a compact design name: `fifo32x32`, `datapath8x16`,
    /// `regfile16x8`.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown prefixes or malformed dimensions.
    pub fn parse(name: &str) -> Result<Self, String> {
        let (kind, dims) = name
            .find(|c: char| c.is_ascii_digit())
            .map(|i| name.split_at(i))
            .ok_or_else(|| format!("design {name:?} has no dimensions"))?;
        let (a, b) = dims
            .split_once('x')
            .ok_or_else(|| format!("design {name:?}: expected <kind><A>x<B>"))?;
        let a: usize = a.parse().map_err(|_| format!("bad dimension {a:?}"))?;
        let b: usize = b.parse().map_err(|_| format!("bad dimension {b:?}"))?;
        if a == 0 || b == 0 {
            return Err(format!("design {name:?}: dimensions must be nonzero"));
        }
        match kind {
            // Mirror the generator's own constraint so a bad name is a
            // CLI error, not a panic deep in netlist generation.
            "fifo" if !a.is_power_of_two() || a < 2 => {
                Err(format!("fifo depth {a} must be a power of two >= 2"))
            }
            "fifo" => Ok(DesignSpec::Fifo { depth: a, width: b }),
            "datapath" => Ok(DesignSpec::Datapath { regs: a, width: b }),
            "regfile" => Ok(DesignSpec::RegFile { words: a, width: b }),
            "mesh" if b < 2 => Err(format!("mesh needs at least 2 columns, got {b}")),
            "mesh" => Ok(DesignSpec::Mesh { rows: a, cols: b }),
            other => Err(format!(
                "unknown design kind {other:?} (fifo | datapath | regfile | mesh)"
            )),
        }
    }

    /// The compact name this spec parses from.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            DesignSpec::Fifo { depth, width } => format!("fifo{depth}x{width}"),
            DesignSpec::Datapath { regs, width } => format!("datapath{regs}x{width}"),
            DesignSpec::RegFile { words, width } => format!("regfile{words}x{width}"),
            DesignSpec::Mesh { rows, cols } => format!("mesh{rows}x{cols}"),
            DesignSpec::Import { key } => format!("import{key:016x}"),
        }
    }

    /// Generates the design's netlist (fresh each call; generation is
    /// deterministic).
    ///
    /// # Panics
    ///
    /// Panics for [`DesignSpec::Import`] specs whose key was never
    /// passed to [`register_import`] in this process.
    #[must_use]
    pub fn netlist(&self) -> Netlist {
        match *self {
            DesignSpec::Fifo { depth, width } => Fifo::generate(depth, width).netlist,
            DesignSpec::Datapath { regs, width } => Datapath::generate(regs, width).netlist,
            DesignSpec::RegFile { words, width } => register_file(words, width),
            DesignSpec::Mesh { rows, cols } => mesh(rows, cols),
            DesignSpec::Import { key } => import_registry()
                .lock()
                .expect("import registry poisoned")
                .get(&key)
                .cloned()
                .unwrap_or_else(|| {
                    panic!("imported design {key:016x} is not registered in this process")
                }),
        }
    }

    /// Flop count of the generated netlist (what the chain axis divides).
    #[must_use]
    pub fn ff_count(&self) -> usize {
        self.netlist().ff_count()
    }
}

/// A wake strategy with its exploration parameters pinned, so points
/// serialize to stable labels.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WakeSpec {
    /// All switches at once.
    FullBank,
    /// Ref \[7\] staggering in `groups` steps.
    Staggered {
        /// Activation steps (>= 2).
        groups: usize,
    },
    /// Ref \[8\] slow gate-voltage ramp.
    SlowRamp {
        /// Ramp stretch over a full-bank wake (> 1).
        ramp_factor: f64,
    },
}

impl WakeSpec {
    /// The three strategies the rush-current ablation compares.
    #[must_use]
    pub fn all() -> Vec<WakeSpec> {
        vec![
            WakeSpec::FullBank,
            WakeSpec::Staggered { groups: 8 },
            WakeSpec::SlowRamp { ramp_factor: 20.0 },
        ]
    }

    /// Stable display label (also the serialized `wake` field).
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            WakeSpec::FullBank => "full-bank".into(),
            WakeSpec::Staggered { groups } => format!("staggered-{groups}"),
            WakeSpec::SlowRamp { ramp_factor } => format!("slow-ramp-{ramp_factor:.0}"),
        }
    }

    /// The power-model strategy this spec names.
    #[must_use]
    pub fn strategy(&self) -> WakeStrategy {
        match *self {
            WakeSpec::FullBank => WakeStrategy::FullBank,
            WakeSpec::Staggered { groups } => WakeStrategy::Staggered { groups },
            WakeSpec::SlowRamp { ramp_factor } => WakeStrategy::SlowRamp { ramp_factor },
        }
    }
}

/// One candidate configuration: what a worker evaluates.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExplorePoint {
    /// Stable index within the enumerated space (results are ordered by
    /// it regardless of evaluation order).
    pub id: usize,
    /// The gated design.
    pub design: DesignSpec,
    /// Chain count `W`.
    pub chains: usize,
    /// Monitoring code.
    pub code: CodeChoice,
    /// Wake-up strategy.
    pub wake: WakeSpec,
}

impl ExplorePoint {
    /// Canonical key string; also the basis of the point's RNG seed, so
    /// results are a function of the configuration alone.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}/W{}/{}/{}",
            self.design.label(),
            self.chains,
            self.code.name(),
            self.wake.label()
        )
    }
}

/// The space to explore: one design crossed with code, chain-count and
/// wake axes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpaceSpec {
    /// The gated design.
    pub design: DesignSpec,
    /// Candidate codes (infeasible `(code, W)` pairs are dropped).
    pub codes: Vec<CodeChoice>,
    /// Candidate wake strategies.
    pub wakes: Vec<WakeSpec>,
    /// Smallest chain count considered.
    pub w_min: usize,
    /// Largest chain count considered.
    pub w_max: usize,
    /// Monte-Carlo wake trials per point (residual-upset estimate).
    pub trials: u64,
    /// Manufacturing-test I/O width `T` applied to every point, when
    /// the explored designs should carry the Fig. 5(b) test mode.
    /// `None` (the default) builds monitor-only designs, as before the
    /// pruning gate existed.
    pub test_width: Option<usize>,
    /// When `true` (the default), points the build gate rejects —
    /// statically infeasible `(W, T)` pairs, synthesis refusals,
    /// Error-severity lint findings — land in the report's `pruned`
    /// section. When `false`, the first rejected point (by id) fails
    /// the whole run, the pre-gate behavior.
    pub prune: bool,
}

impl SpaceSpec {
    /// The default space over `design`: the paper's code family
    /// (CRC-16, Hamming m=3..=6, SEC-DED(8,4), parity-8) crossed with
    /// the three wake strategies, chain counts 4..=128.
    #[must_use]
    pub fn paper(design: DesignSpec) -> Self {
        SpaceSpec {
            design,
            codes: vec![
                CodeChoice::Crc16,
                CodeChoice::Hamming { m: 3 },
                CodeChoice::Hamming { m: 4 },
                CodeChoice::Hamming { m: 5 },
                CodeChoice::Hamming { m: 6 },
                CodeChoice::ExtendedHamming { m: 3 },
                CodeChoice::Parity { group_width: 8 },
            ],
            wakes: WakeSpec::all(),
            w_min: 4,
            w_max: 128,
            trials: 400,
            test_width: None,
            prune: true,
        }
    }

    /// Feasible chain counts for `code`: divisors of the flop count in
    /// `[w_min, w_max]` that are multiples of the code's group width.
    #[must_use]
    pub fn feasible_chains(&self, ff_count: usize, code: CodeChoice) -> Vec<usize> {
        let gw = code.group_width().max(1);
        (self.w_min..=self.w_max.min(ff_count))
            .filter(|w| ff_count % w == 0 && w % gw == 0)
            .collect()
    }

    /// Enumerates every feasible point, in a stable order (code-major,
    /// then chains, then wake), with `id` assigned sequentially.
    #[must_use]
    pub fn enumerate(&self) -> Vec<ExplorePoint> {
        let ff_count = self.design.ff_count();
        let mut points = Vec::new();
        for &code in &self.codes {
            for w in self.feasible_chains(ff_count, code) {
                for &wake in &self.wakes {
                    points.push(ExplorePoint {
                        id: points.len(),
                        design: self.design,
                        chains: w,
                        code,
                        wake,
                    });
                }
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_labels() {
        for name in ["fifo32x32", "datapath8x16", "regfile16x8", "mesh20x50"] {
            let spec = DesignSpec::parse(name).unwrap();
            assert_eq!(spec.label(), name);
        }
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(DesignSpec::parse("fifo").is_err());
        assert!(DesignSpec::parse("ring4x4").is_err());
        assert!(DesignSpec::parse("fifo32").is_err());
        assert!(DesignSpec::parse("mesh4x1").is_err());
    }

    #[test]
    fn paper_fifo_space_is_large_enough() {
        let spec = SpaceSpec::paper(DesignSpec::Fifo {
            depth: 32,
            width: 32,
        });
        let points = spec.enumerate();
        assert!(points.len() >= 50, "only {} points", points.len());
        // Ids are the positions.
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.id, i);
        }
    }

    #[test]
    fn chain_counts_satisfy_both_constraints() {
        let spec = SpaceSpec::paper(DesignSpec::Fifo {
            depth: 32,
            width: 32,
        });
        let ff = spec.design.ff_count();
        assert_eq!(ff, 1040);
        for p in spec.enumerate() {
            assert_eq!(ff % p.chains, 0, "{}", p.key());
            assert_eq!(p.chains % p.code.group_width().max(1), 0, "{}", p.key());
        }
    }

    #[test]
    fn infeasible_codes_contribute_nothing() {
        // Hamming(15,11) needs W % 11 == 0; 1040 = 2^4 * 5 * 13 has no
        // such divisor.
        let spec = SpaceSpec::paper(DesignSpec::Fifo {
            depth: 32,
            width: 32,
        });
        assert!(spec
            .feasible_chains(1040, CodeChoice::Hamming { m: 4 })
            .is_empty());
    }
}
