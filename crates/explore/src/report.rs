//! Result records and their serialized forms (JSON and CSV).
//!
//! Everything here is deliberately flat and `HashMap`-free: the JSON a
//! run writes is a pure function of the evaluated space, so two runs of
//! the same space — at any thread count — produce byte-identical files
//! (`tests/determinism.rs` pins that).

use crate::cache::CacheStats;
use scanguard_core::CostRow;

/// Everything measured for one design point.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PointResult {
    /// Stable point id (enumeration order).
    pub id: usize,
    /// Design label (e.g. `fifo32x32`).
    pub design: String,
    /// Code display name.
    pub code: String,
    /// Chain count `W`.
    pub chains: usize,
    /// Chain length `l`.
    pub chain_len: usize,
    /// Wake-strategy label.
    pub wake: String,
    /// Protected total area, um^2.
    pub area_um2: f64,
    /// Monitor overhead over the scanned baseline, %.
    pub area_overhead_pct: f64,
    /// Encoding power, mW.
    pub enc_power_mw: f64,
    /// Decoding power, mW.
    pub dec_power_mw: f64,
    /// Encode energy per sleep episode, nJ.
    pub enc_energy_nj: f64,
    /// Decode energy per sleep episode, nJ.
    pub dec_energy_nj: f64,
    /// Encode/decode latency `l x T`, ns.
    pub latency_ns: f64,
    /// Wake-to-usable latency: rail settle plus decode, cycles.
    pub wake_cycles: u64,
    /// Peak shared-rail bounce on wake, V.
    pub peak_bounce_v: f64,
    /// Fraction of wake events with at least one retention upset.
    pub upset_prob: f64,
    /// Fraction of wake events ending with corrupted state (after
    /// correction, when the code corrects).
    pub residual_upset_prob: f64,
    /// Break-even sleep duration for a net energy win, us.
    pub min_sleep_us: f64,
}

impl PointResult {
    /// An all-zero record (test scaffolding for Pareto analysis).
    #[must_use]
    pub fn zeroed() -> Self {
        PointResult {
            id: 0,
            design: String::new(),
            code: String::new(),
            chains: 0,
            chain_len: 0,
            wake: String::new(),
            area_um2: 0.0,
            area_overhead_pct: 0.0,
            enc_power_mw: 0.0,
            dec_power_mw: 0.0,
            enc_energy_nj: 0.0,
            dec_energy_nj: 0.0,
            latency_ns: 0.0,
            wake_cycles: 0,
            peak_bounce_v: 0.0,
            upset_prob: 0.0,
            residual_upset_prob: 0.0,
            min_sleep_us: 0.0,
        }
    }

    /// The CSV column order of [`PointResult::csv_row`].
    #[must_use]
    pub fn csv_header() -> String {
        "id,design,code,chains,chain_len,wake,area_um2,area_overhead_pct,\
         enc_power_mw,dec_power_mw,enc_energy_nj,dec_energy_nj,latency_ns,\
         wake_cycles,peak_bounce_v,upset_prob,residual_upset_prob,min_sleep_us"
            .to_owned()
    }

    /// One CSV row (codes may contain commas, so they are quoted).
    #[must_use]
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},\"{}\",{},{},{},{:.2},{:.3},{:.4},{:.4},{:.4},{:.4},{:.1},{},{:.4},{:.5},{:.5},{:.3}",
            self.id,
            self.design,
            self.code,
            self.chains,
            self.chain_len,
            self.wake,
            self.area_um2,
            self.area_overhead_pct,
            self.enc_power_mw,
            self.dec_power_mw,
            self.enc_energy_nj,
            self.dec_energy_nj,
            self.latency_ns,
            self.wake_cycles,
            self.peak_bounce_v,
            self.upset_prob,
            self.residual_upset_prob,
            self.min_sleep_us
        )
    }
}

/// A design point the build gate rejected before evaluation: either
/// statically infeasible (the test width does not tile the chains),
/// refused by the synthesizer, or failing the lint registry at Error
/// severity after synthesis.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PrunedPoint {
    /// Stable point id — the same enumeration order the evaluated
    /// points use, so the two sections partition the space.
    pub id: usize,
    /// Design label (e.g. `fifo32x32`).
    pub design: String,
    /// Code display name.
    pub code: String,
    /// Chain count `W`.
    pub chains: usize,
    /// Wake-strategy label.
    pub wake: String,
    /// Manufacturing-test width `T` the space requested, when any.
    pub test_width: Option<usize>,
    /// IDs of the design rules behind the rejection (e.g. `SG104`),
    /// deduplicated; empty when raw synthesis failed without a rule
    /// attribution.
    pub rules: Vec<String>,
    /// Human-readable reason, naming the point.
    pub detail: String,
}

impl PrunedPoint {
    /// One CSV comment row (the pruned block rides below the data as
    /// `#`-prefixed lines so plain CSV readers skip it).
    #[must_use]
    pub fn csv_row(&self) -> String {
        format!(
            "# {},{},\"{}\",{},{},{},{},\"{}\"",
            self.id,
            self.design,
            self.code,
            self.chains,
            self.wake,
            self.test_width
                .map_or_else(|| "-".to_owned(), |t| t.to_string()),
            self.rules.join("+"),
            self.detail
        )
    }
}

/// A full exploration result: the space's identity plus every point.
///
/// Thread count and wall-clock are deliberately absent — the report is
/// a function of the space, not of how it was scheduled.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpaceReport {
    /// Design label.
    pub design: String,
    /// Flop count of the design (the chain axis divides it).
    pub ff_count: usize,
    /// Monte-Carlo wake trials per point.
    pub trials: u64,
    /// Build-cache statistics (misses = unique syntheses).
    pub cache: CacheStats,
    /// Every evaluated point, ordered by id.
    pub points: Vec<PointResult>,
    /// Every rejected point, ordered by id (empty unless the space's
    /// prune gate fired).
    pub pruned: Vec<PrunedPoint>,
}

impl SpaceReport {
    /// Serializes the report as pretty JSON (stable byte-for-byte for a
    /// given space; see module docs).
    ///
    /// # Errors
    ///
    /// Returns an encoding error (non-finite floats).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| format!("encoding report: {e}"))
    }

    /// Parses a report back from [`SpaceReport::to_json`] output.
    ///
    /// Reports written before the pruning gate existed lack the
    /// `pruned` member; they decode as having pruned nothing.
    ///
    /// # Errors
    ///
    /// Returns a parse/shape error message.
    pub fn from_json(doc: &str) -> Result<Self, String> {
        let mut value: serde::Value =
            serde_json::from_str(doc).map_err(|e| format!("parsing report: {e}"))?;
        if value.as_object().is_some() && value.get("pruned").is_none() {
            value["pruned"] = serde::Value::Array(Vec::new());
        }
        serde_json::from_value(&value).map_err(|e| format!("decoding report: {e}"))
    }

    /// Counts pruned points per design rule, ordered by rule ID. A
    /// point rejected under several rules counts once per rule;
    /// rule-less rejections (raw synthesis failures) land under `-`.
    #[must_use]
    pub fn prune_rule_counts(&self) -> std::collections::BTreeMap<String, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for p in &self.pruned {
            if p.rules.is_empty() {
                *counts.entry("-".to_owned()).or_insert(0) += 1;
            }
            for rule in &p.rules {
                *counts.entry(rule.clone()).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Serializes the points as CSV (header + one row per point). When
    /// any point was pruned, a `#`-commented block follows the data;
    /// for clean spaces the output is byte-identical to the pre-gate
    /// format.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = PointResult::csv_header();
        out.push('\n');
        for p in &self.points {
            out.push_str(&p.csv_row());
            out.push('\n');
        }
        if !self.pruned.is_empty() {
            out.push_str("# pruned\n");
            out.push_str("# id,design,code,chains,wake,test_width,rules,detail\n");
            for p in &self.pruned {
                out.push_str(&p.csv_row());
                out.push('\n');
            }
        }
        out
    }
}

/// Serializes cost rows (the `sweep` command's table) as pretty JSON.
///
/// # Errors
///
/// Returns an encoding error (non-finite floats).
pub fn cost_rows_json(rows: &[CostRow]) -> Result<String, String> {
    serde_json::to_string_pretty(&rows).map_err(|e| format!("encoding rows: {e}"))
}

/// Serializes cost rows as CSV, mirroring the paper-table columns.
#[must_use]
pub fn cost_rows_csv(rows: &[CostRow]) -> String {
    let mut out = String::from(
        "code,chains,chain_len,area_um2,overhead_pct,enc_power_mw,dec_power_mw,\
         latency_ns,enc_energy_nj,dec_energy_nj\n",
    );
    for r in rows {
        out.push_str(&format!(
            "\"{}\",{},{},{:.2},{:.3},{:.4},{:.4},{:.1},{:.4},{:.4}\n",
            r.code,
            r.chains,
            r.chain_len,
            r.area_um2,
            r.overhead_pct,
            r.enc_power_mw,
            r.dec_power_mw,
            r.latency_ns,
            r.enc_energy_nj,
            r.dec_energy_nj
        ));
    }
    out
}

/// Writes `content` to `path`, mapping IO errors to a message naming
/// the path.
///
/// # Errors
///
/// Returns the rendered IO error.
pub fn write_file(path: &str, content: &str) -> Result<(), String> {
    std::fs::write(path, content).map_err(|e| format!("writing {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> SpaceReport {
        let mut p = PointResult::zeroed();
        p.design = "fifo4x4".into();
        p.code = "Hamming(7,4)".into();
        p.chains = 4;
        p.wake = "full-bank".into();
        p.area_um2 = 1234.5;
        SpaceReport {
            design: "fifo4x4".into(),
            ff_count: 40,
            trials: 10,
            cache: CacheStats { hits: 0, misses: 1 },
            points: vec![p],
            pruned: Vec::new(),
        }
    }

    fn pruned_entry() -> PrunedPoint {
        PrunedPoint {
            id: 7,
            design: "fifo4x4".into(),
            code: "CRC-16".into(),
            chains: 5,
            wake: "full-bank".into(),
            test_width: Some(4),
            rules: vec!["SG104".into()],
            detail: "test width 4 does not tile the 5 chains".into(),
        }
    }

    #[test]
    fn json_round_trips() {
        let r = tiny_report();
        let doc = r.to_json().unwrap();
        let back = SpaceReport::from_json(&doc).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn json_round_trips_with_pruned_points() {
        let mut r = tiny_report();
        r.pruned.push(pruned_entry());
        let back = SpaceReport::from_json(&r.to_json().unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn pre_gate_reports_still_decode() {
        // A report written before the `pruned` member existed must
        // decode as having pruned nothing.
        let r = tiny_report();
        let mut v: serde::Value = serde_json::from_str(&r.to_json().unwrap()).unwrap();
        v.as_object_mut().unwrap().retain(|(k, _)| k != "pruned");
        let legacy = serde_json::to_string_pretty(&v).unwrap();
        assert!(!legacy.contains("pruned"));
        let back = SpaceReport::from_json(&legacy).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn csv_pruned_block_appears_only_when_nonempty() {
        let mut r = tiny_report();
        let clean = r.to_csv();
        assert!(!clean.contains("# pruned"));
        r.pruned.push(pruned_entry());
        let gated = r.to_csv();
        assert!(gated.starts_with(&clean), "data section must be unchanged");
        assert!(gated.contains("# pruned"));
        assert!(gated.contains("# 7,fifo4x4,\"CRC-16\",5,full-bank,4,SG104,"));
    }

    #[test]
    fn prune_rule_counts_tally_per_rule() {
        let mut r = tiny_report();
        assert!(r.prune_rule_counts().is_empty());
        r.pruned.push(pruned_entry());
        let mut multi = pruned_entry();
        multi.id = 8;
        multi.rules = vec!["SG104".into(), "SG201".into()];
        r.pruned.push(multi);
        let mut bare = pruned_entry();
        bare.id = 9;
        bare.rules = Vec::new();
        r.pruned.push(bare);
        let counts = r.prune_rule_counts();
        assert_eq!(counts.len(), 3);
        assert_eq!(counts["SG104"], 2);
        assert_eq!(counts["SG201"], 1);
        assert_eq!(counts["-"], 1);
    }

    #[test]
    fn csv_has_header_plus_rows() {
        let r = tiny_report();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        // "Hamming(7,4)" is quoted, so its comma is not a separator.
        let row_cols = lines[1].split(',').count() - 1;
        assert_eq!(lines[0].split(',').count(), row_cols);
        assert!(lines[1].contains("\"Hamming(7,4)\""));
    }

    #[test]
    fn cost_rows_csv_aligns_with_fields() {
        let row = CostRow {
            code: "CRC-16".into(),
            chains: 4,
            chain_len: 260,
            area_um2: 73658.0,
            overhead_pct: 2.8,
            enc_power_mw: 4.99,
            dec_power_mw: 4.99,
            latency_ns: 2600.0,
            enc_energy_nj: 12.97,
            dec_energy_nj: 12.97,
        };
        let csv = cost_rows_csv(&[row]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }
}
