//! # scanguard-explore
//!
//! Parallel design-space exploration for scan-based state retention
//! (Yang et al., DATE 2010). The paper's Sec. V walks the trade-off
//! between chain count, code choice and monitoring cost by hand
//! (Tables I–III, Fig. 9); this crate turns that walk into an engine:
//!
//! * [`SpaceSpec`] — enumerate the cross-product of design, chain count
//!   `W`, [`CodeChoice`] and wake strategy, keeping only feasible
//!   combinations (`W` divides the flop count and tiles the code's
//!   group width);
//! * [`explore`] — evaluate every point's cost/reliability vector on a
//!   work-stealing scoped-thread pool, memoizing synthesized designs by
//!   `(design, W, code)` so the wake-strategy variants share one build;
//! * [`pareto`] — exact multi-objective Pareto fronts over any
//!   objective subset, plus a weighted knee-point recommendation;
//! * [`report`] — flat, deterministic JSON/CSV records: the same space
//!   yields byte-identical output at any thread count.
//!
//! ```
//! use scanguard_explore::{explore, DesignSpec, SpaceSpec};
//!
//! let mut spec = SpaceSpec::paper(DesignSpec::Fifo { depth: 4, width: 4 });
//! spec.trials = 20; // keep the doctest fast
//! let report = explore(&spec, 2).unwrap();
//! assert!(!report.points.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod pareto;
pub mod report;
pub mod space;
pub mod worker;

pub use cache::{BuildKey, CacheStats, SynthCache};
pub use pareto::{front_of, knee_point, Objective, ALL_OBJECTIVES};
pub use report::{PointResult, SpaceReport};
pub use space::{DesignSpec, ExplorePoint, SpaceSpec, WakeSpec};
pub use worker::run_pool;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scanguard_codes::SequenceCodec;
use scanguard_core::{break_even, measure_cost, BreakEven, CodeChoice, CostRow, Synthesizer};
use scanguard_obs::{arg, Lane, Recorder};
use scanguard_power::{PowerNetwork, UpsetModel};

/// What one synthesis run contributes to every wake variant of a
/// `(design, W, code)` configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildMetrics {
    /// The measured cost row.
    pub row: CostRow,
    /// Break-even sleep analysis for the same run.
    pub break_even: BreakEven,
    /// The design's clock, MHz (wake cycles are counted at it).
    pub clock_mhz: f64,
}

/// FNV-1a over a key string: the deterministic per-point seed source.
fn seed_of(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Synthesizes and measures one `(design, W, code)` configuration.
///
/// # Errors
///
/// Returns the synthesizer's message for an infeasible configuration
/// (the enumerator should have filtered those out).
pub fn build_metrics(
    design: &DesignSpec,
    chains: usize,
    code: CodeChoice,
) -> Result<BuildMetrics, String> {
    let built = Synthesizer::new(design.netlist())
        .chains(chains)
        .code(code)
        .build()
        .map_err(|e| format!("{}/W{chains}/{}: {e}", design.label(), code.name()))?;
    let seed = seed_of(&format!("{}/W{chains}/{}", design.label(), code.name()));
    let row = measure_cost(&built, seed);
    let be = break_even(&built, &row);
    Ok(BuildMetrics {
        row,
        break_even: be,
        clock_mhz: built.clock_mhz,
    })
}

/// Evaluates one point: the memoized build metrics plus this wake
/// strategy's transient and Monte-Carlo recovery outcome.
///
/// The recovery model follows the harness's rush ablation: upsets
/// cluster along the chain-major latch array while codewords run across
/// chains at equal depth, so physical latch `i` (chain `i / l`, depth
/// `i % l`) is sequence bit `depth * W + chain`. Codes that only detect
/// (CRC, parity) leave corrupted state corrupted — their residual rate
/// is the upset rate.
///
/// # Errors
///
/// Propagates a build failure, naming the point.
pub fn evaluate_point(
    point: &ExplorePoint,
    cache: &SynthCache<Result<BuildMetrics, String>>,
    trials: u64,
) -> Result<PointResult, String> {
    let build = cache.get_or_build(
        BuildKey {
            design: point.design.label(),
            chains: point.chains,
            code: point.code.name(),
        },
        || build_metrics(&point.design, point.chains, point.code),
    );
    let metrics = build.as_ref().as_ref().map_err(String::clone)?;
    let chain_len = metrics.row.chain_len;

    let network = PowerNetwork::default_120nm();
    let upsets = UpsetModel::default_120nm();
    let event = point.wake.strategy().wake(&network);
    // Decode runs after the rail settles: chain_len shift cycles plus
    // the clear/capture bookkeeping pair.
    let wake_cycles = event.wake_cycles(metrics.clock_mhz) + chain_len as u64 + 2;

    let latches = point.chains * chain_len;
    let codec = if point.code.corrects() {
        point
            .code
            .block_code()
            .map_err(|e| format!("{}: {e}", point.key()))?
            .map(SequenceCodec::new)
    } else {
        None
    };
    let seed = seed_of(&point.key());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut upset_events = 0u64;
    let mut residual_events = 0u64;
    for t in 0..trials {
        let flips = upsets.upsets(event.peak_bounce_v, latches, seed ^ (t + 1));
        if flips.is_empty() {
            continue;
        }
        upset_events += 1;
        let Some(codec) = &codec else {
            residual_events += 1;
            continue;
        };
        let original: Vec<bool> = (0..latches).map(|_| rng.gen()).collect();
        let parities = codec.protect(&original);
        let mut corrupted = original.clone();
        for &i in &flips {
            let (c, d) = (i / chain_len, i % chain_len);
            let pos = d * point.chains + c;
            corrupted[pos] = !corrupted[pos];
        }
        codec.recover(&mut corrupted, &parities);
        if corrupted != original {
            residual_events += 1;
        }
    }
    let trials_f = trials.max(1) as f64;

    Ok(PointResult {
        id: point.id,
        design: point.design.label(),
        code: point.code.name(),
        chains: point.chains,
        chain_len,
        wake: point.wake.label(),
        area_um2: metrics.row.area_um2,
        area_overhead_pct: metrics.row.overhead_pct,
        enc_power_mw: metrics.row.enc_power_mw,
        dec_power_mw: metrics.row.dec_power_mw,
        enc_energy_nj: metrics.row.enc_energy_nj,
        dec_energy_nj: metrics.row.dec_energy_nj,
        latency_ns: metrics.row.latency_ns,
        wake_cycles,
        peak_bounce_v: event.peak_bounce_v,
        upset_prob: upset_events as f64 / trials_f,
        residual_upset_prob: residual_events as f64 / trials_f,
        min_sleep_us: metrics.break_even.min_sleep_us,
    })
}

/// Explores the whole space on `threads` workers.
///
/// Results are ordered by point id and are a pure function of `spec` —
/// the thread count changes wall-clock time, nothing else.
///
/// # Errors
///
/// Returns the first (by point id) build failure.
pub fn explore(spec: &SpaceSpec, threads: usize) -> Result<SpaceReport, String> {
    explore_obs(spec, threads, None)
}

/// [`explore`] with observability: when a [`Recorder`] is supplied,
/// every design point becomes a span on its worker's lane (code, `W`,
/// wake model) and the run's totals land in the metrics registry —
/// `explore.points` plus the synthesis-cache `explore.cache.hits` /
/// `explore.cache.misses` (all pure functions of `spec`, so the
/// deterministic snapshot is thread-count-blind). The report itself is
/// unchanged by observation.
///
/// # Errors
///
/// As [`explore`].
pub fn explore_obs(
    spec: &SpaceSpec,
    threads: usize,
    obs: Option<&Recorder>,
) -> Result<SpaceReport, String> {
    let points = spec.enumerate();
    let ff_count = spec.design.ff_count();
    let cache: SynthCache<Result<BuildMetrics, String>> = SynthCache::new();
    let results = scanguard_par::run_pool_obs(points.len(), threads, obs, |worker, i| {
        let point = &points[i];
        if let Some(rec) = obs {
            rec.begin(Lane::Worker(worker as u32), "point", point.id as u64);
        }
        let result = evaluate_point(point, &cache, spec.trials);
        if let Some(rec) = obs {
            rec.end(
                Lane::Worker(worker as u32),
                "point",
                point.id as u64,
                vec![
                    arg("id", point.id as u64),
                    arg("code", point.code.name()),
                    arg("chains", point.chains as u64),
                    arg("wake", point.wake.label()),
                ],
            );
        }
        result
    });
    let stats = cache.stats();
    if let Some(rec) = obs {
        rec.counter("explore.points").add(points.len() as u64);
        rec.counter("explore.cache.hits").add(stats.hits as u64);
        rec.counter("explore.cache.misses").add(stats.misses as u64);
    }
    let evaluated: Result<Vec<PointResult>, String> = results.into_iter().collect();
    Ok(SpaceReport {
        design: spec.design.label(),
        ff_count,
        trials: spec.trials,
        cache: stats,
        points: evaluated?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SpaceSpec {
        let mut spec = SpaceSpec::paper(DesignSpec::Fifo { depth: 4, width: 4 });
        spec.trials = 10;
        spec
    }

    #[test]
    fn tiny_space_explores_clean() {
        let spec = tiny_spec();
        let report = explore(&spec, 2).unwrap();
        assert_eq!(report.points.len(), spec.enumerate().len());
        assert!(!report.points.is_empty());
        for (i, p) in report.points.iter().enumerate() {
            assert_eq!(p.id, i);
            assert!(p.area_um2 > 0.0);
            assert!(p.latency_ns > 0.0);
            assert!(p.wake_cycles > 0);
            assert!(p.residual_upset_prob <= p.upset_prob + 1e-12);
        }
    }

    #[test]
    fn wake_variants_share_builds() {
        let spec = tiny_spec();
        let report = explore(&spec, 4).unwrap();
        let wakes = spec.wakes.len();
        assert_eq!(report.cache.misses * wakes, report.points.len());
        assert_eq!(report.cache.hits, report.points.len() - report.cache.misses);
    }

    #[test]
    fn observed_exploration_matches_and_records_cache_traffic() {
        use scanguard_obs::{EventKind, RecorderConfig};
        let spec = tiny_spec();
        let rec = Recorder::new(RecorderConfig {
            trace: true,
            metrics: true,
            ..RecorderConfig::default()
        });
        let observed = explore_obs(&spec, 4, Some(&rec)).unwrap();
        let plain = explore(&spec, 4).unwrap();
        assert_eq!(observed, plain, "observation must not change the report");
        let snap = rec.metrics_snapshot();
        assert_eq!(
            snap.counters["explore.points"],
            observed.points.len() as u64
        );
        assert_eq!(
            snap.counters["explore.cache.hits"],
            observed.cache.hits as u64
        );
        assert_eq!(
            snap.counters["explore.cache.misses"],
            observed.cache.misses as u64
        );
        let point_spans = rec
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Begin && e.name == "point")
            .count();
        assert_eq!(point_spans, observed.points.len(), "one span per point");
    }

    #[test]
    fn detect_only_codes_cannot_correct() {
        let spec = tiny_spec();
        let report = explore(&spec, 2).unwrap();
        for p in report.points.iter().filter(|p| p.code == "CRC-16") {
            assert!(
                (p.residual_upset_prob - p.upset_prob).abs() < 1e-12,
                "CRC leaves upsets in place: {p:?}"
            );
        }
    }

    #[test]
    fn point_seed_is_stable() {
        // The seed derives from the key string alone; pin one value so
        // accidental key-format changes (which would shift every
        // published number) fail loudly.
        assert_eq!(seed_of(""), 0xcbf2_9ce4_8422_2325);
        let spec = tiny_spec();
        let p = &spec.enumerate()[0];
        assert_eq!(seed_of(&p.key()), seed_of(&p.key()));
    }
}
