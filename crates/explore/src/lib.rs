//! # scanguard-explore
//!
//! Parallel design-space exploration for scan-based state retention
//! (Yang et al., DATE 2010). The paper's Sec. V walks the trade-off
//! between chain count, code choice and monitoring cost by hand
//! (Tables I–III, Fig. 9); this crate turns that walk into an engine:
//!
//! * [`SpaceSpec`] — enumerate the cross-product of design, chain count
//!   `W`, [`CodeChoice`] and wake strategy, keeping only feasible
//!   combinations (`W` divides the flop count and tiles the code's
//!   group width);
//! * [`explore`] — evaluate every point's cost/reliability vector on a
//!   work-stealing scoped-thread pool, memoizing synthesized designs by
//!   `(design, W, code, T)` so the wake-strategy variants share one
//!   build, with the lint registry as a build gate: rejected points
//!   land in the report's `pruned` section instead of erroring inside
//!   a worker;
//! * [`pareto`] — exact multi-objective Pareto fronts over any
//!   objective subset, plus a weighted knee-point recommendation;
//! * [`report`] — flat, deterministic JSON/CSV records: the same space
//!   yields byte-identical output at any thread count.
//!
//! ```
//! use scanguard_explore::{explore, DesignSpec, SpaceSpec};
//!
//! let mut spec = SpaceSpec::paper(DesignSpec::Fifo { depth: 4, width: 4 });
//! spec.trials = 20; // keep the doctest fast
//! let report = explore(&spec, 2).unwrap();
//! assert!(!report.points.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod pareto;
pub mod report;
pub mod space;
pub mod store;
pub mod worker;

pub use cache::{BuildKey, BuildPanic, CacheStats, SynthCache};
pub use pareto::{front_of, knee_point, Objective, ALL_OBJECTIVES};
pub use report::{PointResult, PrunedPoint, SpaceReport};
pub use space::{register_import, DesignSpec, ExplorePoint, SpaceSpec, WakeSpec};
pub use store::{cache_salt, DiskStore, StoreLimits, StoreStats};
pub use worker::run_pool;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scanguard_codes::SequenceCodec;
use scanguard_core::{break_even, measure_cost, BreakEven, CodeChoice, CostRow, Synthesizer};
use scanguard_lint::{RuleSet, Severity};
use scanguard_obs::{arg, Lane, Recorder};
use scanguard_par::CancelToken;
use scanguard_power::{PowerNetwork, UpsetModel};

/// What one synthesis run contributes to every wake variant of a
/// `(design, W, code)` configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BuildMetrics {
    /// The measured cost row.
    pub row: CostRow,
    /// Break-even sleep analysis for the same run.
    pub break_even: BreakEven,
    /// The design's clock, MHz (wake cycles are counted at it).
    pub clock_mhz: f64,
}

/// FNV-1a over a key string: the deterministic per-point seed source.
fn seed_of(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why the build gate rejected a `(design, W, code, T)` configuration
/// instead of measuring it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BuildRejection {
    /// Statically infeasible before synthesis — e.g. the test width
    /// does not tile the chain count, SG104's Fig. 5(b) invariant.
    Static {
        /// IDs of the rules that would fire on such a netlist.
        rules: Vec<String>,
        /// Human-readable reason, naming the configuration.
        detail: String,
    },
    /// The synthesizer refused the configuration outright.
    Synthesis {
        /// The synthesizer's message, naming the configuration.
        detail: String,
    },
    /// The synthesized design violates Error-severity lint rules.
    Lint {
        /// The violated rule IDs, deduplicated, in registry order.
        rules: Vec<String>,
        /// The first violation's message, naming the configuration.
        detail: String,
    },
}

impl BuildRejection {
    /// The rule IDs behind the rejection (empty for raw synthesis
    /// failures, which carry no rule attribution).
    #[must_use]
    pub fn rules(&self) -> &[String] {
        match self {
            BuildRejection::Static { rules, .. } | BuildRejection::Lint { rules, .. } => rules,
            BuildRejection::Synthesis { .. } => &[],
        }
    }

    /// The human-readable reason.
    #[must_use]
    pub fn detail(&self) -> &str {
        match self {
            BuildRejection::Static { detail, .. }
            | BuildRejection::Synthesis { detail }
            | BuildRejection::Lint { detail, .. } => detail,
        }
    }
}

/// The serialized form a build takes in the persistent store
/// (the vendored serde has no `Result` impl, so the two outcomes are
/// an explicit enum).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
enum StoredBuild {
    /// The configuration synthesized and measured cleanly.
    Built(BuildMetrics),
    /// The build gate rejected the configuration (also worth caching:
    /// the gate is deterministic, so the rejection will recur).
    Rejected(BuildRejection),
}

impl StoredBuild {
    fn from_result(r: &Result<BuildMetrics, BuildRejection>) -> Self {
        match r {
            Ok(m) => StoredBuild::Built(m.clone()),
            Err(rej) => StoredBuild::Rejected(rej.clone()),
        }
    }

    fn into_result(self) -> Result<BuildMetrics, BuildRejection> {
        match self {
            StoredBuild::Built(m) => Ok(m),
            StoredBuild::Rejected(rej) => Err(rej),
        }
    }
}

/// Why an exploration run did not produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The run's [`CancelToken`] was raised before every point was
    /// evaluated.
    Cancelled,
    /// An internal invariant failed (or, with pruning off, the first
    /// rejected point's message).
    Failed(String),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::Cancelled => f.write_str("exploration cancelled"),
            ExploreError::Failed(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ExploreError {}

/// How an exploration runs: thread count plus the optional service
/// machinery — observability, cooperative cancellation, and the
/// persistent build store the in-memory cache writes through to.
///
/// [`explore`] and [`explore_obs`] are thin wrappers over this; a
/// serving daemon fills in every field.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreEnv<'a> {
    /// Worker threads (clamped to at least 1).
    pub threads: usize,
    /// Observability sink, when tracing/metrics are on.
    pub obs: Option<&'a Recorder>,
    /// Cooperative cancellation, checked between points.
    pub cancel: Option<&'a CancelToken>,
    /// Persistent build store: consulted before synthesizing, written
    /// through after. Entries are keyed by the salted
    /// [`BuildKey::content`] string, so report bytes are identical
    /// whether the store is cold or warm.
    pub store: Option<&'a DiskStore>,
}

/// Synthesizes, lint-gates and measures one `(design, W, code, T)`
/// configuration.
///
/// The gate runs in three stages, cheapest first: a static `T | W`
/// check (SG104's invariant, caught before any synthesis), the
/// synthesizer's own validation, and the full lint registry at Error
/// severity over the built design — so a statically invalid point
/// costs microseconds, not a synthesis run.
///
/// # Errors
///
/// Returns the stage that rejected the configuration.
pub fn build_metrics(
    design: &DesignSpec,
    chains: usize,
    code: CodeChoice,
    test_width: Option<usize>,
) -> Result<BuildMetrics, BuildRejection> {
    let tag = format!("{}/W{chains}/{}", design.label(), code.name());
    if let Some(t) = test_width {
        if t == 0 || chains % t != 0 {
            return Err(BuildRejection::Static {
                rules: vec!["SG104".to_owned()],
                detail: format!(
                    "{tag}: test width {t} does not tile the {chains} chains \
                     (Fig. 5(b) concatenates whole chain groups per test pin)"
                ),
            });
        }
    }
    let mut synth = Synthesizer::new(design.netlist()).chains(chains).code(code);
    if let Some(t) = test_width {
        synth = synth.test_width(t);
    }
    let built = synth.build().map_err(|e| BuildRejection::Synthesis {
        detail: format!("{tag}: {e}"),
    })?;
    let report = built.lint(&RuleSet::all(), None);
    if report.error_count() > 0 {
        let mut rules: Vec<String> = Vec::new();
        let mut first = String::new();
        for d in report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
        {
            if first.is_empty() {
                first.clone_from(&d.message);
            }
            if !rules.iter().any(|r| r == d.rule) {
                rules.push(d.rule.to_owned());
            }
        }
        return Err(BuildRejection::Lint {
            detail: format!("{tag}: {} lint errors ({first})", report.error_count()),
            rules,
        });
    }
    let seed = seed_of(&tag);
    let row = measure_cost(&built, seed);
    let be = break_even(&built, &row);
    Ok(BuildMetrics {
        row,
        break_even: be,
        clock_mhz: built.clock_mhz,
    })
}

/// What one worker produced for one enumerated point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// The point was synthesized, measured and Monte-Carlo evaluated.
    Evaluated(PointResult),
    /// The build gate rejected the point before evaluation.
    Pruned(PrunedPoint),
}

/// Evaluates one point: the memoized build metrics plus this wake
/// strategy's transient and Monte-Carlo recovery outcome. A point the
/// build gate rejects comes back as [`PointOutcome::Pruned`] — the
/// caller decides whether that is a report section or a run failure.
///
/// The recovery model follows the harness's rush ablation: upsets
/// cluster along the chain-major latch array while codewords run across
/// chains at equal depth, so physical latch `i` (chain `i / l`, depth
/// `i % l`) is sequence bit `depth * W + chain`. Codes that only detect
/// (CRC, parity) leave corrupted state corrupted — their residual rate
/// is the upset rate.
///
/// When a persistent `store` is supplied, the in-memory cache becomes
/// a write-through layer over it: a memory miss first consults the
/// store (deserializing a previous run's build instead of
/// re-synthesizing) and a fresh build is written through on the way
/// out. Rejections are stored too — the gate is deterministic.
///
/// # Errors
///
/// Returns a message only for internal invariant failures (a code
/// family that cannot produce its block codec, a panicked builder);
/// build-gate rejections are data, not errors.
pub fn evaluate_point(
    point: &ExplorePoint,
    cache: &SynthCache<Result<BuildMetrics, BuildRejection>>,
    trials: u64,
    test_width: Option<usize>,
    store: Option<&DiskStore>,
) -> Result<PointOutcome, String> {
    let key = BuildKey {
        design: point.design.label(),
        chains: point.chains,
        code: point.code.name(),
        test_width,
    };
    let content = key.content();
    let build = cache
        .try_get_or_build(key, || {
            if let Some(store) = store {
                if let Some(doc) = store.load(&content) {
                    if let Ok(stored) = serde_json::from_str::<StoredBuild>(&doc) {
                        return stored.into_result();
                    }
                }
            }
            let built = build_metrics(&point.design, point.chains, point.code, test_width);
            if let Some(store) = store {
                if let Ok(doc) = serde_json::to_string(&StoredBuild::from_result(&built)) {
                    let _ = store.save(&content, &doc);
                }
            }
            built
        })
        .map_err(|p| format!("{}: {p}", point.key()))?;
    let metrics = match build.as_ref() {
        Ok(metrics) => metrics,
        Err(rejection) => {
            return Ok(PointOutcome::Pruned(PrunedPoint {
                id: point.id,
                design: point.design.label(),
                code: point.code.name(),
                chains: point.chains,
                wake: point.wake.label(),
                test_width,
                rules: rejection.rules().to_vec(),
                detail: rejection.detail().to_owned(),
            }))
        }
    };
    let chain_len = metrics.row.chain_len;

    let network = PowerNetwork::default_120nm();
    let upsets = UpsetModel::default_120nm();
    let event = point.wake.strategy().wake(&network);
    // Decode runs after the rail settles: chain_len shift cycles plus
    // the clear/capture bookkeeping pair.
    let wake_cycles = event.wake_cycles(metrics.clock_mhz) + chain_len as u64 + 2;

    let latches = point.chains * chain_len;
    let codec = if point.code.corrects() {
        point
            .code
            .block_code()
            .map_err(|e| format!("{}: {e}", point.key()))?
            .map(SequenceCodec::new)
    } else {
        None
    };
    let seed = seed_of(&point.key());
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut upset_events = 0u64;
    let mut residual_events = 0u64;
    for t in 0..trials {
        let flips = upsets.upsets(event.peak_bounce_v, latches, seed ^ (t + 1));
        if flips.is_empty() {
            continue;
        }
        upset_events += 1;
        let Some(codec) = &codec else {
            residual_events += 1;
            continue;
        };
        let original: Vec<bool> = (0..latches).map(|_| rng.gen()).collect();
        let parities = codec.protect(&original);
        let mut corrupted = original.clone();
        for &i in &flips {
            let (c, d) = (i / chain_len, i % chain_len);
            let pos = d * point.chains + c;
            corrupted[pos] = !corrupted[pos];
        }
        codec.recover(&mut corrupted, &parities);
        if corrupted != original {
            residual_events += 1;
        }
    }
    let trials_f = trials.max(1) as f64;

    Ok(PointOutcome::Evaluated(PointResult {
        id: point.id,
        design: point.design.label(),
        code: point.code.name(),
        chains: point.chains,
        chain_len,
        wake: point.wake.label(),
        area_um2: metrics.row.area_um2,
        area_overhead_pct: metrics.row.overhead_pct,
        enc_power_mw: metrics.row.enc_power_mw,
        dec_power_mw: metrics.row.dec_power_mw,
        enc_energy_nj: metrics.row.enc_energy_nj,
        dec_energy_nj: metrics.row.dec_energy_nj,
        latency_ns: metrics.row.latency_ns,
        wake_cycles,
        peak_bounce_v: event.peak_bounce_v,
        upset_prob: upset_events as f64 / trials_f,
        residual_upset_prob: residual_events as f64 / trials_f,
        min_sleep_us: metrics.break_even.min_sleep_us,
    }))
}

/// Explores the whole space on `threads` workers.
///
/// Results are ordered by point id and are a pure function of `spec` —
/// the thread count changes wall-clock time, nothing else. Points the
/// build gate rejects land in the report's `pruned` section when
/// `spec.prune` is on.
///
/// # Errors
///
/// With `spec.prune` off, the first (by point id) rejected point's
/// message; otherwise only internal invariant failures.
pub fn explore(spec: &SpaceSpec, threads: usize) -> Result<SpaceReport, String> {
    explore_obs(spec, threads, None)
}

/// [`explore`] with observability: when a [`Recorder`] is supplied,
/// every design point becomes a span on its worker's lane (code, `W`,
/// wake model) and the run's totals land in the metrics registry —
/// `explore.points`, `explore.pruned` and the synthesis-cache
/// `explore.cache.hits` / `explore.cache.misses` (all pure functions
/// of `spec`, so the deterministic snapshot is thread-count-blind).
/// The report itself is unchanged by observation.
///
/// # Errors
///
/// As [`explore`].
pub fn explore_obs(
    spec: &SpaceSpec,
    threads: usize,
    obs: Option<&Recorder>,
) -> Result<SpaceReport, String> {
    let env = ExploreEnv {
        threads,
        obs,
        ..ExploreEnv::default()
    };
    explore_env(spec, &env).map_err(|e| e.to_string())
}

/// [`explore_obs`] with the full environment: a persistent
/// [`DiskStore`] the per-run synthesis cache writes through to, and a
/// [`CancelToken`] that aborts the run between points.
///
/// The report stays a pure function of `spec` — the store only changes
/// *how fast* a miss resolves (deserialization instead of synthesis),
/// never what it resolves to, so warm and cold runs serialize to
/// identical bytes.
///
/// # Errors
///
/// [`ExploreError::Cancelled`] when the token fires before every point
/// lands; otherwise [`ExploreError::Failed`] as [`explore`].
pub fn explore_env(spec: &SpaceSpec, env: &ExploreEnv) -> Result<SpaceReport, ExploreError> {
    let points = spec.enumerate();
    let ff_count = spec.design.ff_count();
    let obs = env.obs;
    let cache: SynthCache<Result<BuildMetrics, BuildRejection>> = SynthCache::new();
    let results =
        scanguard_par::run_pool_cancel(points.len(), env.threads, obs, env.cancel, |worker, i| {
            let point = &points[i];
            if let Some(rec) = obs {
                rec.begin(Lane::Worker(worker as u32), "point", point.id as u64);
            }
            let result = evaluate_point(point, &cache, spec.trials, spec.test_width, env.store);
            if let Some(rec) = obs {
                rec.end(
                    Lane::Worker(worker as u32),
                    "point",
                    point.id as u64,
                    vec![
                        arg("id", point.id as u64),
                        arg("code", point.code.name()),
                        arg("chains", point.chains as u64),
                        arg("wake", point.wake.label()),
                    ],
                );
            }
            result
        })
        .map_err(|_| ExploreError::Cancelled)?;
    let stats = cache.stats();
    let outcomes: Vec<PointOutcome> = results
        .into_iter()
        .collect::<Result<_, String>>()
        .map_err(ExploreError::Failed)?;
    let mut evaluated = Vec::new();
    let mut pruned = Vec::new();
    for outcome in outcomes {
        match outcome {
            PointOutcome::Evaluated(p) => evaluated.push(p),
            PointOutcome::Pruned(p) if spec.prune => pruned.push(p),
            // Strict mode: the first rejection (outcomes are id-ordered)
            // fails the run, matching the pre-gate first-error behavior.
            PointOutcome::Pruned(p) => return Err(ExploreError::Failed(p.detail)),
        }
    }
    if let Some(rec) = obs {
        rec.counter("explore.points").add(points.len() as u64);
        rec.counter("explore.pruned").add(pruned.len() as u64);
        rec.counter("explore.cache.hits").add(stats.hits as u64);
        rec.counter("explore.cache.misses").add(stats.misses as u64);
    }
    Ok(SpaceReport {
        design: spec.design.label(),
        ff_count,
        trials: spec.trials,
        cache: stats,
        points: evaluated,
        pruned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SpaceSpec {
        let mut spec = SpaceSpec::paper(DesignSpec::Fifo { depth: 4, width: 4 });
        spec.trials = 10;
        spec
    }

    #[test]
    fn tiny_space_explores_clean() {
        let spec = tiny_spec();
        let report = explore(&spec, 2).unwrap();
        assert_eq!(report.points.len(), spec.enumerate().len());
        assert!(!report.points.is_empty());
        assert!(report.pruned.is_empty(), "clean space must prune nothing");
        for (i, p) in report.points.iter().enumerate() {
            assert_eq!(p.id, i);
            assert!(p.area_um2 > 0.0);
            assert!(p.latency_ns > 0.0);
            assert!(p.wake_cycles > 0);
            assert!(p.residual_upset_prob <= p.upset_prob + 1e-12);
        }
    }

    #[test]
    fn wake_variants_share_builds() {
        let spec = tiny_spec();
        let report = explore(&spec, 4).unwrap();
        let wakes = spec.wakes.len();
        assert_eq!(report.cache.misses * wakes, report.points.len());
        assert_eq!(report.cache.hits, report.points.len() - report.cache.misses);
    }

    #[test]
    fn observed_exploration_matches_and_records_cache_traffic() {
        use scanguard_obs::{EventKind, RecorderConfig};
        let spec = tiny_spec();
        let rec = Recorder::new(RecorderConfig {
            trace: true,
            metrics: true,
            ..RecorderConfig::default()
        });
        let observed = explore_obs(&spec, 4, Some(&rec)).unwrap();
        let plain = explore(&spec, 4).unwrap();
        assert_eq!(observed, plain, "observation must not change the report");
        let snap = rec.metrics_snapshot();
        assert_eq!(
            snap.counters["explore.points"],
            observed.points.len() as u64
        );
        assert_eq!(
            snap.counters["explore.cache.hits"],
            observed.cache.hits as u64
        );
        assert_eq!(
            snap.counters["explore.cache.misses"],
            observed.cache.misses as u64
        );
        let point_spans = rec
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Begin && e.name == "point")
            .count();
        assert_eq!(point_spans, observed.points.len(), "one span per point");
    }

    #[test]
    fn persistent_store_warms_without_changing_the_report() {
        let dir = std::env::temp_dir().join(format!(
            "scanguard-store-warm-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec();
        let store = DiskStore::open(&dir, StoreLimits::default()).unwrap();
        let cold_env = ExploreEnv {
            threads: 4,
            store: Some(&store),
            ..ExploreEnv::default()
        };
        let cold = explore_env(&spec, &cold_env).unwrap();
        let cold_stats = store.stats();
        assert_eq!(cold_stats.hits, 0, "first run cannot hit the store");
        assert_eq!(cold_stats.writes as usize, cold.cache.misses);

        // A fresh store handle on the same directory models a restart.
        let reopened = DiskStore::open(&dir, StoreLimits::default()).unwrap();
        let warm_env = ExploreEnv {
            threads: 4,
            store: Some(&reopened),
            ..ExploreEnv::default()
        };
        let warm = explore_env(&spec, &warm_env).unwrap();
        let warm_stats = reopened.stats();
        assert_eq!(
            warm_stats.hits as usize, warm.cache.misses,
            "every in-memory miss must resolve from disk when warm"
        );
        assert_eq!(warm_stats.writes, 0, "a warm run re-synthesizes nothing");
        assert_eq!(
            cold.to_json().unwrap(),
            warm.to_json().unwrap(),
            "the store must never change report bytes"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_exploration_reports_cancellation() {
        let spec = tiny_spec();
        let cancel = CancelToken::new();
        cancel.cancel();
        let env = ExploreEnv {
            threads: 2,
            cancel: Some(&cancel),
            ..ExploreEnv::default()
        };
        match explore_env(&spec, &env) {
            Err(ExploreError::Cancelled) => {}
            other => panic!("pre-cancelled run must cancel, got {other:?}"),
        }
    }

    #[test]
    fn detect_only_codes_cannot_correct() {
        let spec = tiny_spec();
        let report = explore(&spec, 2).unwrap();
        for p in report.points.iter().filter(|p| p.code == "CRC-16") {
            assert!(
                (p.residual_upset_prob - p.upset_prob).abs() < 1e-12,
                "CRC leaves upsets in place: {p:?}"
            );
        }
    }

    #[test]
    fn point_seed_is_stable() {
        // The seed derives from the key string alone; pin one value so
        // accidental key-format changes (which would shift every
        // published number) fail loudly.
        assert_eq!(seed_of(""), 0xcbf2_9ce4_8422_2325);
        let spec = tiny_spec();
        let p = &spec.enumerate()[0];
        assert_eq!(seed_of(&p.key()), seed_of(&p.key()));
    }
}
