//! Lint-gated pruning: infeasible `(W, code, T)` combinations land in
//! the report's `pruned` section instead of failing inside a worker,
//! and the gate is behavior-preserving — a clean space produces the
//! same points, CSV bytes and Pareto front with the gate on or off,
//! and a pruning run is byte-identical at any thread count.

use scanguard_explore::{explore, front_of, DesignSpec, Objective, SpaceSpec};

fn spec(test_width: Option<usize>, prune: bool) -> SpaceSpec {
    let mut spec = SpaceSpec::paper(DesignSpec::Fifo { depth: 4, width: 4 });
    spec.trials = 10;
    spec.test_width = test_width;
    spec.prune = prune;
    spec
}

#[test]
fn clean_space_is_untouched_by_the_prune_gate() {
    let gated = explore(&spec(None, true), 2).unwrap();
    let strict = explore(&spec(None, false), 2).unwrap();
    assert!(gated.pruned.is_empty(), "clean space pruned something");
    assert_eq!(gated.points, strict.points);
    assert_eq!(
        gated.to_csv().as_bytes(),
        strict.to_csv().as_bytes(),
        "clean-space CSV must be byte-identical with the gate on or off"
    );
    let objectives = [Objective::AreaOverheadPct, Objective::LatencyNs];
    assert_eq!(
        front_of(&gated.points, &objectives),
        front_of(&strict.points, &objectives),
        "Pareto front shifted"
    );
}

#[test]
fn mismatched_test_width_prunes_exactly_the_offending_points() {
    // T = 3 over a space whose W axis holds powers of two times small
    // odd factors: every W with 3 ∤ W must land in `pruned` under
    // SG104, every W with 3 | W must evaluate normally.
    let spec = spec(Some(3), true);
    let all = spec.enumerate();
    assert!(!all.is_empty());
    let report = explore(&spec, 2).unwrap();
    assert_eq!(
        report.points.len() + report.pruned.len(),
        all.len(),
        "the two sections must partition the space"
    );
    for point in &all {
        if point.chains % 3 == 0 {
            assert!(
                report.points.iter().any(|p| p.id == point.id),
                "{} should have been evaluated",
                point.key()
            );
        } else {
            let p = report
                .pruned
                .iter()
                .find(|p| p.id == point.id)
                .unwrap_or_else(|| panic!("{} should have been pruned", point.key()));
            assert_eq!(p.rules, vec!["SG104".to_owned()], "{}", point.key());
            assert_eq!(p.test_width, Some(3));
            assert_eq!(p.chains, point.chains);
            assert!(
                p.detail.contains("test width 3"),
                "unhelpful detail: {}",
                p.detail
            );
        }
    }
    let expect_pruned = all.iter().filter(|p| p.chains % 3 != 0).count();
    assert_eq!(report.pruned.len(), expect_pruned);
    assert!(expect_pruned > 0, "fixture stopped exercising the gate");
}

#[test]
fn strict_mode_fails_on_the_first_rejected_point() {
    let err = explore(&spec(Some(3), false), 2).unwrap_err();
    assert!(
        err.contains("test width 3"),
        "strict mode must surface the rejection: {err}"
    );
}

#[test]
fn pruning_runs_are_thread_count_blind() {
    let spec = spec(Some(3), true);
    let sequential = explore(&spec, 1).unwrap();
    let parallel = explore(&spec, 8).unwrap();
    assert_eq!(sequential, parallel, "structural mismatch");
    assert_eq!(
        sequential.to_json().unwrap().as_bytes(),
        parallel.to_json().unwrap().as_bytes(),
        "serialized JSON differs"
    );
    assert_eq!(
        sequential.to_csv().as_bytes(),
        parallel.to_csv().as_bytes(),
        "serialized CSV differs"
    );
    assert!(sequential.to_csv().contains("# pruned"));
}

#[test]
fn report_round_trips_with_a_pruned_section() {
    let report = explore(&spec(Some(3), true), 2).unwrap();
    let back = scanguard_explore::SpaceReport::from_json(&report.to_json().unwrap()).unwrap();
    assert_eq!(report, back);
}
