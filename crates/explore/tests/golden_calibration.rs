//! Golden-row regression: the explorer's numbers must keep the
//! calibration the paper's Tables I/II and Fig. 9 establish on the
//! 32x32 FIFO (1040 flops, 100 MHz):
//!
//! * latency is exactly `l x T` = `chain_len x 10 ns`;
//! * the W=4 -> W=80 encode-energy ratio is ~20x (Table I rows 1/5);
//! * Hamming(7,4) costs far more area than CRC-16 at equal W (Table II
//!   vs Table I);
//! * along the W axis, more chains buy latency with area (Fig. 9's
//!   trade-off direction).

use scanguard_core::CodeChoice;
use scanguard_explore::{explore, DesignSpec, PointResult, SpaceReport, SpaceSpec, WakeSpec};

/// The chain counts of the paper's Tables I/II and Fig. 9.
const PAPER_W: [usize; 5] = [4, 8, 16, 40, 80];

fn paper_fifo_report() -> &'static SpaceReport {
    static REPORT: std::sync::OnceLock<SpaceReport> = std::sync::OnceLock::new();
    REPORT.get_or_init(|| {
        let mut spec = SpaceSpec::paper(DesignSpec::Fifo {
            depth: 32,
            width: 32,
        });
        // Restrict to the axes this regression pins, to keep the
        // debug-mode build count reasonable.
        spec.codes = vec![CodeChoice::Crc16, CodeChoice::Hamming { m: 3 }];
        spec.wakes = vec![WakeSpec::FullBank];
        spec.w_max = 80;
        spec.trials = 20;
        explore(&spec, 8).unwrap()
    })
}

fn point<'a>(report: &'a SpaceReport, code: &str, chains: usize) -> &'a PointResult {
    report
        .points
        .iter()
        .find(|p| p.code == code && p.chains == chains)
        .unwrap_or_else(|| panic!("missing {code} W={chains}"))
}

#[test]
fn paper_fifo_calibration_holds() {
    let report = paper_fifo_report();
    assert_eq!(report.ff_count, 1040);

    // Latency = chain_len x 10 ns at 100 MHz, for every point.
    for p in &report.points {
        assert_eq!(p.chain_len, 1040 / p.chains, "{}", p.code);
        let expect_ns = p.chain_len as f64 * 10.0;
        assert!(
            (p.latency_ns - expect_ns).abs() < 1e-9,
            "{} W={}: latency {} != {expect_ns}",
            p.code,
            p.chains,
            p.latency_ns
        );
    }

    // Table I rows 1 and 5: W=4 holds ~20x the encode energy of W=80
    // (the same power over 20x the latency).
    let crc4 = point(report, "CRC-16", 4);
    let crc80 = point(report, "CRC-16", 80);
    let ratio = crc4.enc_energy_nj / crc80.enc_energy_nj;
    assert!(
        (15.0..=25.0).contains(&ratio),
        "W=4/W=80 encode energy ratio {ratio:.1}, expected ~20"
    );

    // Table II vs Table I: Hamming(7,4)'s monitor dwarfs CRC-16's at
    // the same chain count.
    for w in [4usize, 8, 16, 40, 80] {
        let crc = point(report, "CRC-16", w);
        let ham = point(report, "Hamming(7,4)", w);
        assert!(
            ham.area_overhead_pct > 3.0 * crc.area_overhead_pct,
            "W={w}: Hamming {:.1}% !>> CRC {:.1}%",
            ham.area_overhead_pct,
            crc.area_overhead_pct
        );
    }
}

#[test]
fn fig9_tradeoff_direction_holds() {
    let report = paper_fifo_report();
    // Along the paper's W sweep (fixed code and wake): strictly less
    // latency, strictly more area. This is the Pareto-front shape
    // Fig. 9 plots. (Adjacent divisors like W=4 -> W=5 can dip a few
    // um^2 when a shorter chain drops a sequencer counter bit, which is
    // why the regression pins the paper's sweep, not every divisor.)
    for code in ["CRC-16", "Hamming(7,4)"] {
        let mut series: Vec<&PointResult> = report
            .points
            .iter()
            .filter(|p| p.code == code && PAPER_W.contains(&p.chains))
            .collect();
        series.sort_by_key(|p| p.chains);
        for pair in series.windows(2) {
            assert!(
                pair[1].latency_ns < pair[0].latency_ns,
                "{code}: W={} latency !< W={}",
                pair[1].chains,
                pair[0].chains
            );
            assert!(
                pair[1].area_um2 > pair[0].area_um2,
                "{code}: W={} area !> W={}",
                pair[1].chains,
                pair[0].chains
            );
        }
    }
}

#[test]
fn every_w_axis_point_is_pareto_optimal_under_area_latency() {
    use scanguard_explore::Objective;
    let report = paper_fifo_report();
    // With one code and one wake strategy, area and latency move in
    // opposite directions along the paper's W sweep — so restricted to
    // one code, every swept point sits on its own (area, latency)
    // front.
    for code in ["CRC-16", "Hamming(7,4)"] {
        let series: Vec<PointResult> = report
            .points
            .iter()
            .filter(|p| p.code == code && PAPER_W.contains(&p.chains))
            .cloned()
            .collect();
        let front = scanguard_explore::front_of(
            &series,
            &[Objective::AreaOverheadPct, Objective::LatencyNs],
        );
        assert_eq!(
            front.len(),
            series.len(),
            "{code}: some W dominated on (area, latency)"
        );
    }
}
