//! Exploration output is a pure function of the space: the serialized
//! report is byte-identical whether one worker or eight evaluated it.

use scanguard_explore::{explore, DesignSpec, SpaceSpec};

fn small_spec() -> SpaceSpec {
    let mut spec = SpaceSpec::paper(DesignSpec::Fifo { depth: 8, width: 8 });
    spec.trials = 50;
    spec
}

#[test]
fn one_and_eight_threads_serialize_identically() {
    let spec = small_spec();
    let sequential = explore(&spec, 1).unwrap();
    let parallel = explore(&spec, 8).unwrap();
    assert_eq!(sequential, parallel, "structural mismatch");
    let a = sequential.to_json().unwrap();
    let b = parallel.to_json().unwrap();
    assert_eq!(a.as_bytes(), b.as_bytes(), "serialized bytes differ");
}

#[test]
fn repeated_runs_are_stable() {
    let spec = small_spec();
    let first = explore(&spec, 4).unwrap().to_json().unwrap();
    let second = explore(&spec, 4).unwrap().to_json().unwrap();
    assert_eq!(first, second);
}

#[test]
fn csv_is_deterministic_too() {
    let spec = small_spec();
    assert_eq!(
        explore(&spec, 1).unwrap().to_csv(),
        explore(&spec, 8).unwrap().to_csv()
    );
}
