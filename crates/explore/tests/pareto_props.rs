//! Property tests for the exact Pareto-front computation: the front
//! contains no dominated point, and every excluded point is dominated
//! by some front member.

use proptest::prelude::*;
use scanguard_explore::pareto::{dominates, pareto_front};

/// Random objective matrices: 1..=40 points, 1..=4 objectives, small
/// integer-valued coordinates so ties and duplicates actually occur.
fn matrices() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..=40, 1usize..=4).prop_flat_map(|(n, d)| {
        proptest::collection::vec(
            proptest::collection::vec((0u32..8).prop_map(f64::from), d),
            n,
        )
    })
}

proptest! {
    #[test]
    fn front_contains_no_dominated_point(vs in matrices()) {
        let front = pareto_front(&vs);
        prop_assert!(!front.is_empty(), "a non-empty set has a front");
        for &i in &front {
            for v in &vs {
                prop_assert!(
                    !dominates(v, &vs[i]),
                    "front member {i} is dominated"
                );
            }
        }
    }

    #[test]
    fn every_excluded_point_is_dominated(vs in matrices()) {
        let front = pareto_front(&vs);
        for i in 0..vs.len() {
            if front.contains(&i) {
                continue;
            }
            prop_assert!(
                front.iter().any(|&f| dominates(&vs[f], &vs[i])),
                "excluded point {i} is dominated by no front member"
            );
        }
    }

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(
        a in proptest::collection::vec((0u32..8).prop_map(f64::from), 3),
        b in proptest::collection::vec((0u32..8).prop_map(f64::from), 3),
    ) {
        prop_assert!(!dominates(&a, &a));
        prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)));
    }

    #[test]
    fn front_is_invariant_under_duplication(vs in matrices()) {
        // Appending a copy of an existing point never changes which
        // *values* are optimal.
        let front = pareto_front(&vs);
        let mut doubled = vs.clone();
        doubled.push(vs[0].clone());
        let front2 = pareto_front(&doubled);
        let values = |f: &[usize], m: &[Vec<f64>]| -> Vec<Vec<u64>> {
            let mut v: Vec<Vec<u64>> = f
                .iter()
                .map(|&i| m[i].iter().map(|x| x.to_bits()).collect())
                .collect();
            v.sort();
            v.dedup();
            v
        };
        prop_assert_eq!(values(&front, &vs), values(&front2, &doubled));
    }
}
