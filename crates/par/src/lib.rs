//! # scanguard-par
//!
//! The workspace's deterministic work pool: a scoped-thread fan-out over
//! an indexed work list, shared by the design-space explorer and the
//! fault-simulation engine (any crate below `scanguard-explore` in the
//! dependency graph can use it without a cycle).
//!
//! Scheduling is a shared atomic cursor — each worker claims the next
//! unevaluated index, so a slow point (a large synthesis, a
//! hard-to-detect fault) never stalls the rest of the queue behind a
//! static partition. Results carry their index and are re-sorted before
//! returning, which makes the output order — and, because every
//! evaluation is a pure function of its index, the output *bytes* —
//! independent of the thread count.
//!
//! # Examples
//!
//! ```
//! let squares = scanguard_par::run_pool(4, 2, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use scanguard_obs::{arg, Lane, Recorder};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Evaluates `eval(i)` for every `i < n` on `threads` workers and
/// returns the results in index order.
///
/// `eval` must be a pure function of the index for the determinism
/// guarantee to hold (shared caches are fine: a memoized build is the
/// same value whoever computes it).
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_pool<T, F>(n: usize, threads: usize, eval: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_pool_obs(n, threads, None, |_, i| eval(i))
}

/// [`run_pool`] with observability: `eval` additionally receives the
/// worker index (so callers can emit onto the right [`Lane::Worker`]),
/// and — when a [`Recorder`] is supplied — each worker's whole loop
/// becomes a span on its lane, with per-pool/per-worker metrics:
///
/// * `par.tasks` (deterministic): total tasks executed, `== n`;
/// * `par.workers` (volatile): distinct worker lanes spawned — a
///   function of the requested thread count, so it must not enter
///   snapshot equality;
/// * `par.worker.NN.tasks` / `par.worker.NN.busy_ns` /
///   `par.worker.NN.idle_ns` (volatile): which worker claimed how much
///   work and how long it sat in pool overhead — scheduling noise,
///   excluded from snapshot equality.
///
/// The result (and its byte identity) is unchanged by the recorder:
/// only wall-clock observation is added, never scheduling.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_pool_obs<T, F>(n: usize, threads: usize, obs: Option<&Recorder>, eval: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if let Some(rec) = obs {
        rec.counter_volatile("par.workers").add(threads as u64);
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let eval = &eval;
                let cursor = &cursor;
                let collected = &collected;
                s.spawn(move || {
                    let started = obs.map(|rec| {
                        rec.begin(Lane::Worker(w as u32), "worker", 0);
                        Instant::now()
                    });
                    let mut local = Vec::new();
                    let mut busy_ns = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t0 = started.map(|_| Instant::now());
                        local.push((i, eval(w, i)));
                        if let Some(t0) = t0 {
                            busy_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        }
                    }
                    if let (Some(rec), Some(started)) = (obs, started) {
                        let executed = local.len() as u64;
                        let total_ns =
                            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        rec.end(
                            Lane::Worker(w as u32),
                            "worker",
                            executed,
                            vec![arg("tasks", executed)],
                        );
                        rec.counter("par.tasks").add(executed);
                        rec.counter_volatile(&format!("par.worker.{w:02}.tasks"))
                            .add(executed);
                        rec.counter_volatile(&format!("par.worker.{w:02}.busy_ns"))
                            .add(busy_ns);
                        rec.counter_volatile(&format!("par.worker.{w:02}.idle_ns"))
                            .add(total_ns.saturating_sub(busy_ns));
                    }
                    collected.lock().expect("result lock").extend(local);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pool worker panicked");
        }
    });
    let mut results = collected.into_inner().expect("result lock");
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_pool(100, 8, |i| {
            // Vary per-item latency to scramble completion order.
            std::thread::sleep(std::time::Duration::from_micros((i % 7) as u64));
            i * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let f = |i: usize| i.wrapping_mul(0x9E37_79B9) ^ (i << 3);
        assert_eq!(run_pool(64, 1, f), run_pool(64, 8, f));
    }

    #[test]
    fn empty_and_oversubscribed_pools_work() {
        assert!(run_pool(0, 4, |i| i).is_empty());
        assert_eq!(run_pool(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        assert_eq!(run_pool(5, 0, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn observed_pool_emits_one_lane_per_worker_and_counts_tasks() {
        let rec = Recorder::new(scanguard_obs::RecorderConfig {
            trace: true,
            metrics: true,
            ..scanguard_obs::RecorderConfig::default()
        });
        let out = run_pool_obs(40, 4, Some(&rec), |_, i| i);
        assert_eq!(out, (0..40).collect::<Vec<_>>());
        let lanes: std::collections::HashSet<Lane> = rec.events().iter().map(|e| e.lane).collect();
        assert_eq!(lanes.len(), 4, "one span lane per worker: {lanes:?}");
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counters["par.tasks"], 40);
        assert_eq!(snap.volatile["par.workers"], 4);
        let claimed: u64 = snap
            .volatile
            .iter()
            .filter(|(k, _)| k.ends_with(".tasks"))
            .map(|(_, &v)| v)
            .sum();
        assert_eq!(claimed, 40, "volatile per-worker claims sum to n");
    }

    #[test]
    fn recorder_does_not_change_pool_results() {
        let rec = Recorder::new(scanguard_obs::RecorderConfig {
            trace: true,
            metrics: true,
            ..scanguard_obs::RecorderConfig::default()
        });
        let f = |i: usize| i.wrapping_mul(0x9E37_79B9) ^ (i << 3);
        assert_eq!(
            run_pool_obs(64, 8, Some(&rec), |_, i| f(i)),
            run_pool(64, 8, f)
        );
    }
}
