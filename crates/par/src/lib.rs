//! # scanguard-par
//!
//! The workspace's deterministic work pool: a scoped-thread fan-out over
//! an indexed work list, shared by the design-space explorer and the
//! fault-simulation engine (any crate below `scanguard-explore` in the
//! dependency graph can use it without a cycle).
//!
//! Scheduling is a shared atomic cursor — each worker claims the next
//! unevaluated index, so a slow point (a large synthesis, a
//! hard-to-detect fault) never stalls the rest of the queue behind a
//! static partition. Results carry their index and are re-sorted before
//! returning, which makes the output order — and, because every
//! evaluation is a pure function of its index, the output *bytes* —
//! independent of the thread count.
//!
//! # Examples
//!
//! ```
//! let squares = scanguard_par::run_pool(4, 2, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use scanguard_obs::{arg, Lane, Recorder};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A shared worker-slot budget: long-running services run many pool
/// fan-outs concurrently, and without coordination an 8-core host
/// asked to serve four 8-thread requests would oversubscribe to 32
/// threads. Each run [`acquire`](Self::acquire)s slots first — it gets
/// as many as are free (at least one, blocking until one frees up), so
/// the total worker count across every concurrent run never exceeds
/// the budget.
///
/// Determinism is untouched: a grant only sizes the pool, and
/// [`run_pool`] results are thread-count-blind by construction.
#[derive(Debug)]
pub struct PoolBudget {
    slots: usize,
    free: Mutex<usize>,
    freed: Condvar,
    waiters: AtomicUsize,
}

impl PoolBudget {
    /// A budget of `slots` worker slots (clamped to at least 1).
    #[must_use]
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1);
        PoolBudget {
            slots,
            free: Mutex::new(slots),
            freed: Condvar::new(),
            waiters: AtomicUsize::new(0),
        }
    }

    /// Total slots in the budget.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Slots currently unclaimed.
    ///
    /// # Panics
    ///
    /// Propagates a poisoned budget lock.
    #[must_use]
    pub fn available(&self) -> usize {
        *self.free.lock().expect("budget lock")
    }

    /// Requests currently blocked in [`acquire`](Self::acquire) waiting
    /// for a slot to free — the daemon's queue depth gauge. Zero means
    /// every arriving request got at least one slot immediately.
    #[must_use]
    pub fn waiters(&self) -> usize {
        self.waiters.load(Ordering::Relaxed)
    }

    /// Claims up to `want` slots (at least 1), blocking while none are
    /// free. The grant returns its slots on drop.
    ///
    /// # Panics
    ///
    /// Propagates a poisoned budget lock.
    #[must_use]
    pub fn acquire(&self, want: usize) -> BudgetGrant<'_> {
        let want = want.max(1);
        let mut free = self.free.lock().expect("budget lock");
        if *free == 0 {
            self.waiters.fetch_add(1, Ordering::Relaxed);
            while *free == 0 {
                free = self.freed.wait(free).expect("budget lock");
            }
            self.waiters.fetch_sub(1, Ordering::Relaxed);
        }
        let granted = want.min(*free);
        *free -= granted;
        BudgetGrant {
            budget: self,
            threads: granted,
        }
    }

    fn release(&self, n: usize) {
        let mut free = self.free.lock().expect("budget lock");
        *free = (*free + n).min(self.slots);
        drop(free);
        self.freed.notify_all();
    }
}

/// Worker slots claimed from a [`PoolBudget`]; returned on drop.
#[derive(Debug)]
pub struct BudgetGrant<'a> {
    budget: &'a PoolBudget,
    threads: usize,
}

impl BudgetGrant<'_> {
    /// How many slots this grant holds — the thread count to run with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for BudgetGrant<'_> {
    fn drop(&mut self) {
        self.budget.release(self.threads);
    }
}

/// A cooperative cancellation flag shared between a pool run and
/// whoever may abort it (a serving daemon's `cancel` request, a
/// deadline sweeper). Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Workers stop claiming new tasks; tasks already
    /// running finish normally.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A cancellable pool run observed its token mid-run and stopped
/// before evaluating every index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("pool run cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// Evaluates `eval(i)` for every `i < n` on `threads` workers and
/// returns the results in index order.
///
/// `eval` must be a pure function of the index for the determinism
/// guarantee to hold (shared caches are fine: a memoized build is the
/// same value whoever computes it).
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_pool<T, F>(n: usize, threads: usize, eval: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_pool_obs(n, threads, None, |_, i| eval(i))
}

/// [`run_pool`] with observability: `eval` additionally receives the
/// worker index (so callers can emit onto the right [`Lane::Worker`]),
/// and — when a [`Recorder`] is supplied — each worker's whole loop
/// becomes a span on its lane, with per-pool/per-worker metrics:
///
/// * `par.tasks` (deterministic): total tasks executed, `== n`;
/// * `par.workers` (volatile): distinct worker lanes spawned — a
///   function of the requested thread count, so it must not enter
///   snapshot equality;
/// * `par.worker.NN.tasks` / `par.worker.NN.busy_ns` /
///   `par.worker.NN.idle_ns` (volatile): which worker claimed how much
///   work and how long it sat in pool overhead — scheduling noise,
///   excluded from snapshot equality.
///
/// The result (and its byte identity) is unchanged by the recorder:
/// only wall-clock observation is added, never scheduling.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_pool_obs<T, F>(n: usize, threads: usize, obs: Option<&Recorder>, eval: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    run_pool_cancel(n, threads, obs, None, eval).expect("uncancellable run cannot be cancelled")
}

/// [`run_pool_obs`] with cooperative cancellation: workers check
/// `cancel` before claiming each next index and stop claiming once the
/// token is raised. A run that stopped short returns `Err(Cancelled)`;
/// a run whose tasks all completed returns `Ok` even if the token was
/// raised after the last claim (the result is whole, so it is valid).
///
/// # Errors
///
/// [`Cancelled`] when the token aborted the run before every index was
/// evaluated.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_pool_cancel<T, F>(
    n: usize,
    threads: usize,
    obs: Option<&Recorder>,
    cancel: Option<&CancelToken>,
    eval: F,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if let Some(rec) = obs {
        rec.counter_volatile("par.workers").add(threads as u64);
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let eval = &eval;
                let cursor = &cursor;
                let collected = &collected;
                s.spawn(move || {
                    let started = obs.map(|rec| {
                        rec.begin(Lane::Worker(w as u32), "worker", 0);
                        Instant::now()
                    });
                    let mut local = Vec::new();
                    let mut busy_ns = 0u64;
                    loop {
                        if cancel.is_some_and(CancelToken::is_cancelled) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t0 = started.map(|_| Instant::now());
                        local.push((i, eval(w, i)));
                        if let Some(t0) = t0 {
                            busy_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        }
                    }
                    if let (Some(rec), Some(started)) = (obs, started) {
                        let executed = local.len() as u64;
                        let total_ns =
                            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        rec.end(
                            Lane::Worker(w as u32),
                            "worker",
                            executed,
                            vec![arg("tasks", executed)],
                        );
                        rec.counter("par.tasks").add(executed);
                        rec.counter_volatile(&format!("par.worker.{w:02}.tasks"))
                            .add(executed);
                        rec.counter_volatile(&format!("par.worker.{w:02}.busy_ns"))
                            .add(busy_ns);
                        rec.counter_volatile(&format!("par.worker.{w:02}.idle_ns"))
                            .add(total_ns.saturating_sub(busy_ns));
                    }
                    collected.lock().expect("result lock").extend(local);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pool worker panicked");
        }
    });
    let mut results = collected.into_inner().expect("result lock");
    if results.len() < n {
        return Err(Cancelled);
    }
    results.sort_by_key(|&(i, _)| i);
    Ok(results.into_iter().map(|(_, v)| v).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_pool(100, 8, |i| {
            // Vary per-item latency to scramble completion order.
            std::thread::sleep(std::time::Duration::from_micros((i % 7) as u64));
            i * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let f = |i: usize| i.wrapping_mul(0x9E37_79B9) ^ (i << 3);
        assert_eq!(run_pool(64, 1, f), run_pool(64, 8, f));
    }

    #[test]
    fn empty_and_oversubscribed_pools_work() {
        assert!(run_pool(0, 4, |i| i).is_empty());
        assert_eq!(run_pool(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        assert_eq!(run_pool(5, 0, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn observed_pool_emits_one_lane_per_worker_and_counts_tasks() {
        let rec = Recorder::new(scanguard_obs::RecorderConfig {
            trace: true,
            metrics: true,
            ..scanguard_obs::RecorderConfig::default()
        });
        let out = run_pool_obs(40, 4, Some(&rec), |_, i| i);
        assert_eq!(out, (0..40).collect::<Vec<_>>());
        let lanes: std::collections::HashSet<Lane> = rec.events().iter().map(|e| e.lane).collect();
        assert_eq!(lanes.len(), 4, "one span lane per worker: {lanes:?}");
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counters["par.tasks"], 40);
        assert_eq!(snap.volatile["par.workers"], 4);
        let claimed: u64 = snap
            .volatile
            .iter()
            .filter(|(k, _)| k.ends_with(".tasks"))
            .map(|(_, &v)| v)
            .sum();
        assert_eq!(claimed, 40, "volatile per-worker claims sum to n");
    }

    #[test]
    fn budget_caps_concurrent_grants() {
        let budget = PoolBudget::new(4);
        let a = budget.acquire(3);
        assert_eq!(a.threads(), 3);
        // Only one slot is left: a greedy request gets it, not more.
        let b = budget.acquire(8);
        assert_eq!(b.threads(), 1);
        assert_eq!(budget.available(), 0);
        drop(a);
        assert_eq!(budget.available(), 3);
        drop(b);
        assert_eq!(budget.available(), 4);
    }

    #[test]
    fn budget_blocks_until_a_slot_frees() {
        let budget = PoolBudget::new(2);
        let held = budget.acquire(2);
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| budget.acquire(1).threads());
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert_eq!(budget.waiters(), 1, "blocked acquire shows as a waiter");
            drop(held);
            assert_eq!(waiter.join().unwrap(), 1);
        });
        assert!(t0.elapsed().as_millis() >= 30, "acquire must have blocked");
        assert_eq!(budget.waiters(), 0, "queue drains back to zero");
    }

    #[test]
    fn zero_slot_budget_is_clamped_to_one() {
        let budget = PoolBudget::new(0);
        assert_eq!(budget.slots(), 1);
        assert_eq!(budget.acquire(5).threads(), 1);
    }

    #[test]
    fn cancelled_run_stops_claiming_and_reports_it() {
        let token = CancelToken::new();
        let started = AtomicUsize::new(0);
        let result = run_pool_cancel(1000, 2, None, Some(&token), |_, i| {
            started.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                token.cancel();
            }
            i
        });
        assert_eq!(result, Err(Cancelled));
        assert!(
            started.load(Ordering::Relaxed) < 1000,
            "workers must stop claiming after cancel"
        );
    }

    #[test]
    fn completed_run_ignores_a_late_cancel() {
        let token = CancelToken::new();
        let out = run_pool_cancel(8, 2, None, Some(&token), |_, i| i).unwrap();
        token.cancel();
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let token = CancelToken::new();
        let f = |i: usize| i.wrapping_mul(0x9E37_79B9) ^ (i << 3);
        assert_eq!(
            run_pool_cancel(64, 8, None, Some(&token), |_, i| f(i)).unwrap(),
            run_pool(64, 8, f)
        );
    }

    #[test]
    fn recorder_does_not_change_pool_results() {
        let rec = Recorder::new(scanguard_obs::RecorderConfig {
            trace: true,
            metrics: true,
            ..scanguard_obs::RecorderConfig::default()
        });
        let f = |i: usize| i.wrapping_mul(0x9E37_79B9) ^ (i << 3);
        assert_eq!(
            run_pool_obs(64, 8, Some(&rec), |_, i| f(i)),
            run_pool(64, 8, f)
        );
    }
}
