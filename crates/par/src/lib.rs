//! # scanguard-par
//!
//! The workspace's deterministic work pool: a scoped-thread fan-out over
//! an indexed work list, shared by the design-space explorer and the
//! fault-simulation engine (any crate below `scanguard-explore` in the
//! dependency graph can use it without a cycle).
//!
//! Scheduling is a shared atomic cursor — each worker claims the next
//! unevaluated index, so a slow point (a large synthesis, a
//! hard-to-detect fault) never stalls the rest of the queue behind a
//! static partition. Results carry their index and are re-sorted before
//! returning, which makes the output order — and, because every
//! evaluation is a pure function of its index, the output *bytes* —
//! independent of the thread count.
//!
//! # Examples
//!
//! ```
//! let squares = scanguard_par::run_pool(4, 2, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Evaluates `eval(i)` for every `i < n` on `threads` workers and
/// returns the results in index order.
///
/// `eval` must be a pure function of the index for the determinism
/// guarantee to hold (shared caches are fine: a memoized build is the
/// same value whoever computes it).
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_pool<T, F>(n: usize, threads: usize, eval: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, eval(i)));
                    }
                    collected.lock().expect("result lock").extend(local);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pool worker panicked");
        }
    });
    let mut results = collected.into_inner().expect("result lock");
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_pool(100, 8, |i| {
            // Vary per-item latency to scramble completion order.
            std::thread::sleep(std::time::Duration::from_micros((i % 7) as u64));
            i * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let f = |i: usize| i.wrapping_mul(0x9E37_79B9) ^ (i << 3);
        assert_eq!(run_pool(64, 1, f), run_pool(64, 8, f));
    }

    #[test]
    fn empty_and_oversubscribed_pools_work() {
        assert!(run_pool(0, 4, |i| i).is_empty());
        assert_eq!(run_pool(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        assert_eq!(run_pool(5, 0, |i| i + 1), vec![1, 2, 3, 4, 5]);
    }
}
