//! Seeded-mutation study (EXPERIMENTS.md E14): take a healthy protected
//! design, apply N random rewiring mutations — each repoints one random
//! cell input at one random net, the classic botched-ECO defect — and
//! count what the linter catches at each mutation budget.
//!
//! ```text
//! cargo run --release -p scanguard-lint --example lint_mutations
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scanguard_core::{CodeChoice, Synthesizer};
use scanguard_designs::Fifo;
use scanguard_lint::{lint_design, RuleSet};
use scanguard_netlist::NetId;
use std::collections::BTreeMap;

fn main() {
    let design = Synthesizer::new(Fifo::generate(8, 8).netlist)
        .chains(8)
        .code(CodeChoice::hamming7_4())
        .test_width(4)
        .build()
        .expect("fifo8x8 synthesizes");
    let rules = RuleSet::all();
    let baseline = design.lint(&rules, None);
    println!(
        "baseline: {} ({} infos are the expected redundant si ports)\n",
        baseline.summary(),
        baseline.diagnostics.len()
    );

    println!(
        "{:>9} {:>6} {:>6} {:>6} {:>5}  rules fired",
        "mutations", "errors", "warns", "infos", "runs"
    );
    for &mutations in &[1usize, 2, 4, 8, 16, 32] {
        let mut errors = 0usize;
        let mut warns = 0usize;
        let mut infos = 0usize;
        let mut fired: BTreeMap<&'static str, usize> = BTreeMap::new();
        let runs = 20;
        for run in 0..runs {
            let mut rng = SmallRng::seed_from_u64(0xE14 + run as u64 * 1000 + mutations as u64);
            let mut nl = design.netlist.clone();
            for _ in 0..mutations {
                let cell = scanguard_netlist::CellId::from_index(rng.gen_range(0..nl.cell_count()));
                let pins = nl.cell(cell).inputs().len();
                if pins == 0 {
                    continue;
                }
                let pin = rng.gen_range(0..pins);
                let net = NetId::from_index(rng.gen_range(0..nl.net_count()));
                nl.set_cell_input(cell, pin, net);
            }
            let report = lint_design(&nl, &design.library, design.lint_view(), &rules, None);
            errors += report.error_count();
            warns += report.count(scanguard_lint::Severity::Warn);
            infos += report.count(scanguard_lint::Severity::Info);
            for d in &report.diagnostics {
                *fired.entry(d.rule).or_default() += 1;
            }
        }
        let rules_fired: Vec<String> = fired.iter().map(|(r, n)| format!("{r}x{n}")).collect();
        println!(
            "{:>9} {:>6} {:>6} {:>6} {:>5}  {}",
            mutations,
            errors,
            warns,
            infos,
            runs,
            rules_fired.join(" ")
        );
    }
}
