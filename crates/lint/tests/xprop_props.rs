//! Differential harness for the static X-propagation analysis: the
//! static verdict must be *conservative* with respect to the dynamic
//! 3-state simulator. For random always-on cones over a collapsed
//! power domain, any net the simulator can drive to X is also flagged
//! as possibly-X statically, and any always-on flop whose dynamic
//! capture value is X has X in its static capture set — so a "clean"
//! SG204 verdict can never hide a dynamically reachable corruption.
//!
//! A second, exhaustive test pins the ternary eval helpers to `Logic`'s
//! `&`/`|`/`^`/`!` truth tables.

use proptest::prelude::*;
use scanguard_lint::{LintContext, XPropContext};
use scanguard_netlist::{
    CellId, CellLibrary, GateKind, Logic, LogicSet, NetId, Netlist, NetlistBuilder,
};
use scanguard_sim::Simulator;

/// Combinational kinds a random cone may instantiate.
const COMB: [GateKind; 14] = [
    GateKind::TieLo,
    GateKind::TieHi,
    GateKind::Buf,
    GateKind::Not,
    GateKind::And2,
    GateKind::And3,
    GateKind::Nand2,
    GateKind::Or2,
    GateKind::Or3,
    GateKind::Nor2,
    GateKind::Xor2,
    GateKind::Xor3,
    GateKind::Xnor2,
    GateKind::Mux2,
];

/// Builds a random netlist: `n_gated` flops first (the power-gated
/// domain, watermark = `n_gated`), then an always-on cone of `ops`
/// combinational gates over ports/gated-state/earlier gates, then
/// `n_aff` always-on flops reading the cone.
fn build_cone(
    n_ports: usize,
    n_gated: usize,
    ops: &[(u8, u16, u16, u16)],
    n_aff: usize,
) -> (Netlist, usize) {
    let mut b = NetlistBuilder::new("cone");
    let ports: Vec<NetId> = (0..n_ports).map(|i| b.input(&format!("p{i}"))).collect();
    let mut pool: Vec<NetId> = ports.clone();
    for i in 0..n_gated {
        let (q, _) = b.dff(&format!("g{i}"), ports[i % n_ports]);
        pool.push(q);
    }
    for (j, &(k, a, bb, c)) in ops.iter().enumerate() {
        let kind = COMB[(k as usize) % COMB.len()];
        let pick = |x: u16| pool[(x as usize) % pool.len()];
        let ins: Vec<NetId> = match kind.input_count() {
            0 => Vec::new(),
            1 => vec![pick(a)],
            2 => vec![pick(a), pick(bb)],
            _ => vec![pick(a), pick(bb), pick(c)],
        };
        let (q, _) = b.named_cell(&format!("u{j}"), kind, ins);
        pool.push(q);
    }
    for i in 0..n_aff {
        let d = pool[(i * 7 + 3) % pool.len()];
        let (q, _) = b.dff(&format!("a{i}"), d);
        pool.push(q);
    }
    let last = *pool.last().unwrap();
    b.output("y", last);
    (b.finish().expect("generated cone is well-formed"), n_gated)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn static_xprop_is_conservative_vs_the_simulator(
        n_ports in 1usize..4,
        n_gated in 1usize..4,
        n_aff in 0usize..3,
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u16>()),
            1..30,
        ),
        port_bits in any::<u64>(),
        ff_bits in any::<u64>(),
    ) {
        let (nl, watermark) = build_cone(n_ports, n_gated, &ops, n_aff);
        let lib = CellLibrary::st120nm();
        let ctx = LintContext::new(&nl, &lib);
        let xp = XPropContext::build(&ctx, watermark);

        // Dynamic side: concrete known inputs and state, then collapse
        // the gated domain and settle.
        let mut sim = Simulator::new(&nl, &lib);
        let dom = sim.define_domain("gated");
        sim.assign_domain_all((0..watermark).map(CellId::from_index), dom);
        for (i, (_, net)) in nl.input_ports().iter().enumerate() {
            sim.set_net(*net, Logic::from(port_bits >> (i % 64) & 1 == 1));
        }
        let mut k = 0usize;
        for (id, cell) in nl.cells() {
            if cell.kind().is_sequential() {
                sim.force_ff(id, Logic::from(ff_bits >> (k % 64) & 1 == 1));
                k += 1;
            }
        }
        sim.settle();
        sim.set_power(dom, false);
        sim.settle();

        // Conservativeness on every driven net: dynamic X ⇒ static X.
        for (_, cell) in nl.cells() {
            let net = cell.output();
            if sim.value(net) == Logic::X {
                prop_assert!(
                    xp.net_set(net).may_be_x(),
                    "net {net} is X dynamically but statically {}",
                    xp.net_set(net),
                );
            }
        }
        // Capture conservativeness for always-on flops: if the value a
        // flop would latch at the next edge is X, SG204's capture set
        // must contain X (no false "clean" verdicts).
        for (id, cell) in nl.cells() {
            if id.index() < watermark || !cell.kind().is_sequential() {
                continue;
            }
            let ins: Vec<Logic> = cell.inputs().iter().map(|&n| sim.value(n)).collect();
            if cell.kind().eval(&ins) == Logic::X {
                prop_assert!(
                    xp.capture_set(&ctx, id).may_be_x(),
                    "flop {id} captures X dynamically but statically {}",
                    xp.capture_set(&ctx, id),
                );
            }
        }
    }
}

#[test]
fn ternary_eval_helpers_agree_with_logic_tables() {
    for a in Logic::ALL {
        assert_eq!(GateKind::Not.eval(&[a]), !a);
        assert_eq!(GateKind::Buf.eval(&[a]), a);
        assert_eq!(GateKind::Not.eval_set(&[a.into()]), LogicSet::singleton(!a));
        for b in Logic::ALL {
            assert_eq!(GateKind::And2.eval(&[a, b]), a & b);
            assert_eq!(GateKind::Or2.eval(&[a, b]), a | b);
            assert_eq!(GateKind::Xor2.eval(&[a, b]), a ^ b);
            assert_eq!(GateKind::Nand2.eval(&[a, b]), !(a & b));
            assert_eq!(GateKind::Nor2.eval(&[a, b]), !(a | b));
            assert_eq!(GateKind::Xnor2.eval(&[a, b]), !(a ^ b));
            assert_eq!(
                GateKind::And2.eval_set(&[a.into(), b.into()]),
                LogicSet::singleton(a & b)
            );
            assert_eq!(
                GateKind::Or2.eval_set(&[a.into(), b.into()]),
                LogicSet::singleton(a | b)
            );
            assert_eq!(
                GateKind::Xor2.eval_set(&[a.into(), b.into()]),
                LogicSet::singleton(a ^ b)
            );
            for c in Logic::ALL {
                assert_eq!(GateKind::Mux2.eval(&[a, b, c]), Logic::mux(a, b, c));
                assert_eq!(GateKind::Xor3.eval(&[a, b, c]), a ^ b ^ c);
            }
        }
    }
}
