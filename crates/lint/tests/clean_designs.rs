//! Clean-pass coverage: every built-in design — raw and synthesized
//! with each code family — must lint without Error-severity findings,
//! and the raw generators without Warn-severity ones either (no dead
//! logic in the shipped circuit generators).

use scanguard_core::{CodeChoice, Synthesizer};
use scanguard_designs::{
    counter_bank, lfsr_netlist, register_file, shift_register, Datapath, Fifo,
};
use scanguard_lint::{lint_netlist, RuleSet, Severity};
use scanguard_netlist::{CellLibrary, Netlist};

fn raw_designs() -> Vec<(&'static str, Netlist)> {
    vec![
        ("fifo8x8", Fifo::generate(8, 8).netlist),
        ("fifo32x32", Fifo::generate(32, 32).netlist),
        ("datapath4x8", Datapath::generate(4, 8).netlist),
        ("shift64", shift_register(64)),
        ("counters4x8", counter_bank(4, 8)),
        ("regfile8x8", register_file(8, 8)),
        ("lfsr16", lfsr_netlist(16, 0b1101_0000_0000_1000).0),
    ]
}

#[test]
fn raw_generators_are_error_and_warn_clean() {
    let lib = CellLibrary::st120nm();
    for (name, nl) in raw_designs() {
        let report = lint_netlist(&nl, &lib, &RuleSet::all(), None);
        assert_eq!(report.error_count(), 0, "{name} has lint errors:\n{report}");
        assert_eq!(
            report.count(Severity::Warn),
            0,
            "{name} has lint warnings (dead logic?):\n{report}"
        );
    }
}

#[test]
fn protected_designs_are_error_clean_for_every_code_family() {
    let codes: Vec<(&str, CodeChoice, usize)> = vec![
        ("hamming7_4", CodeChoice::hamming7_4(), 8),
        ("secded", CodeChoice::ExtendedHamming { m: 3 }, 8),
        ("crc16", CodeChoice::crc16(), 8),
        ("parity", CodeChoice::Parity { group_width: 4 }, 8),
    ];
    for (code_name, code, chains) in codes {
        let fifo = Fifo::generate(8, 8);
        let design = Synthesizer::new(fifo.netlist)
            .chains(chains)
            .code(code)
            .test_width(4)
            .build()
            .unwrap_or_else(|e| panic!("{code_name}: build failed: {e}"));
        let report = design.lint(&RuleSet::all(), None);
        assert_eq!(
            report.error_count(),
            0,
            "{code_name} protected fifo8x8 has lint errors:\n{report}"
        );
        assert_eq!(
            report.count(Severity::Warn),
            0,
            "{code_name} protected fifo8x8 has lint warnings:\n{report}"
        );
        // The raw per-chain si ports replaced by monitor feedback are
        // expected Info findings, nothing else is.
        for d in &report.diagnostics {
            assert_eq!(d.rule, "SG005", "unexpected info finding: {d}");
        }
    }
}

#[test]
fn sg204_is_clean_on_every_built_in_design_and_code_family() {
    // The X-propagation rule must prove every shipped monitor immune to
    // gated-domain collapse: all built-in generators × all four code
    // families, no SG204 finding anywhere.
    let codes: Vec<(&str, CodeChoice)> = vec![
        ("hamming7_4", CodeChoice::hamming7_4()),
        ("secded", CodeChoice::ExtendedHamming { m: 3 }),
        ("crc16", CodeChoice::crc16()),
        ("parity", CodeChoice::Parity { group_width: 4 }),
    ];
    let rules = RuleSet::select(&["SG204"]).expect("SG204 is registered");
    for (name, nl) in raw_designs() {
        for (code_name, code) in &codes {
            let design = Synthesizer::new(nl.clone())
                .chains(8)
                .code(*code)
                .test_width(4)
                .build()
                .unwrap_or_else(|e| panic!("{name}/{code_name}: build failed: {e}"));
            let report = design.lint(&rules, None);
            assert_eq!(
                report.error_count(),
                0,
                "{name}/{code_name} leaks X into always-on state:\n{report}"
            );
        }
    }
}

#[test]
fn build_linted_accepts_all_built_in_protected_designs() {
    for (name, nl) in [
        ("fifo8x8", Fifo::generate(8, 8).netlist),
        ("datapath4x8", Datapath::generate(4, 8).netlist),
        ("regfile8x8", register_file(8, 8)),
    ] {
        let design = Synthesizer::new(nl)
            .chains(8)
            .code(CodeChoice::hamming7_4())
            .test_width(4)
            .build_linted()
            .unwrap_or_else(|e| panic!("{name}: lint gate rejected a good design: {e}"));
        assert!(design.baseline_timing.functional_ps > 0.0);
    }
}

#[test]
fn injector_overlay_stays_error_clean() {
    let fifo = Fifo::generate(8, 8);
    let design = Synthesizer::new(fifo.netlist)
        .chains(8)
        .code(CodeChoice::hamming7_4())
        .test_width(4)
        .with_injector(true)
        .build()
        .unwrap();
    let report = design.lint(&RuleSet::all(), None);
    assert_eq!(report.error_count(), 0, "injector build:\n{report}");
}
