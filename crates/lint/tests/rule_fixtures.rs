//! Known-bad fixtures: every shipped rule has a fixture that *triggers*
//! it. Each test selects only the rule under scrutiny, breaks a healthy
//! design in precisely the way the rule exists to catch, and asserts
//! the diagnostic fires (and that the healthy design was clean first —
//! so the trigger is attributable to the sabotage, not a false
//! positive).

use scanguard_core::{CodeChoice, ProtectedDesign, Synthesizer};
use scanguard_designs::Fifo;
use scanguard_lint::{lint_design, lint_netlist, DesignView, LintReport, RuleSet, Severity};
use scanguard_netlist::{CellId, CellLibrary, GateKind, Netlist, NetlistBuilder};

fn protected() -> ProtectedDesign {
    Synthesizer::new(Fifo::generate(8, 8).netlist)
        .chains(8)
        .code(CodeChoice::hamming7_4())
        .test_width(4)
        .build()
        .expect("fifo8x8 synthesizes")
}

fn only(rule: &str) -> RuleSet {
    RuleSet::select(&[rule]).expect("known rule id")
}

/// Lints `design`'s netlist under a possibly doctored view.
fn lint_with(design: &ProtectedDesign, view: DesignView<'_>, rule: &str) -> LintReport {
    lint_design(&design.netlist, &design.library, view, &only(rule), None)
}

fn assert_fires(report: &LintReport, rule: &str) {
    assert!(
        report.diagnostics.iter().any(|d| d.rule == rule),
        "{rule} did not fire:\n{report}"
    );
}

#[test]
fn sg001_fires_on_a_floating_consumed_net() {
    let mut b = NetlistBuilder::new("t");
    let a = b.input("a");
    let (x, gate) = b.named_cell("g", GateKind::And2, vec![a, a]);
    b.output("y", x);
    let mut nl = b.finish().unwrap();
    // Sabotage: repoint the gate's second input at a driverless net.
    let orphan = nl.add_net(Some("orphan"));
    nl.set_cell_input(gate, 1, orphan);
    let report = lint_netlist(&nl, &CellLibrary::st120nm(), &only("SG001"), None);
    assert_fires(&report, "SG001");
    assert_eq!(report.error_count(), 1);
    assert!(report.diagnostics[0].message.contains("orphan"));
}

#[test]
fn sg002_fires_on_a_multi_driven_net() {
    // The builder refuses contention, so smuggle it in through raw
    // JSON (the linter must not trust validated-construction paths).
    let mut b = NetlistBuilder::new("t");
    let a = b.input("a");
    let x = b.not(a);
    let y = b.not(a);
    let z = b.and2(x, y);
    b.output("z", z);
    let nl = b.finish().unwrap();
    let mut v: serde_json::Value = serde_json::from_str(&nl.to_json().unwrap()).unwrap();
    let cells = v["cells"].as_array_mut().unwrap();
    let first_out = cells[0]["output"].clone();
    cells[1]["output"] = first_out;
    let doctored: Netlist = serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
    let report = lint_netlist(&doctored, &CellLibrary::st120nm(), &only("SG002"), None);
    assert_fires(&report, "SG002");
    assert!(report.diagnostics[0].message.contains("2 cells"));
}

#[test]
fn sg003_fires_on_a_dead_cell() {
    let mut b = NetlistBuilder::new("t");
    let a = b.input("a");
    let x = b.not(a);
    let _dead = b.not(x);
    b.output("y", x);
    let nl = b.finish().unwrap();
    let report = lint_netlist(&nl, &CellLibrary::st120nm(), &only("SG003"), None);
    assert_fires(&report, "SG003");
    assert_eq!(report.count(Severity::Warn), 1);
}

#[test]
fn sg004_fires_on_a_combinational_loop() {
    let mut b = NetlistBuilder::new("t");
    let a = b.input("a");
    let (x, and_cell) = b.named_cell("g_and", GateKind::And2, vec![a, a]);
    let (y, _) = b.named_cell("g_not", GateKind::Not, vec![x]);
    b.output("y", y);
    let mut nl = b.finish().unwrap();
    nl.set_cell_input(and_cell, 1, y); // close the cycle
    let report = lint_netlist(&nl, &CellLibrary::st120nm(), &only("SG004"), None);
    assert_fires(&report, "SG004");
    assert!(report.diagnostics[0].message.contains("2 cell(s)"));
}

#[test]
fn sg005_fires_on_an_unused_input_port() {
    let mut b = NetlistBuilder::new("t");
    let a = b.input("a");
    let _unused = b.input("nc");
    let x = b.not(a);
    b.output("y", x);
    let nl = b.finish().unwrap();
    let report = lint_netlist(&nl, &CellLibrary::st120nm(), &only("SG005"), None);
    assert_fires(&report, "SG005");
    assert!(report.diagnostics[0].message.contains("nc"));
}

#[test]
fn sg101_fires_when_a_retention_flop_falls_off_its_chain() {
    let design = protected();
    assert_eq!(
        lint_with(&design, design.lint_view(), "SG101").error_count(),
        0
    );
    // Sabotage: drop the first flop from chain 0's metadata.
    let mut chains = design.chains.clone();
    chains.chains[0].cells.remove(0);
    let view = DesignView {
        chains: &chains,
        ..design.lint_view()
    };
    let report = lint_with(&design, view, "SG101");
    assert_fires(&report, "SG101");
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("on no scan chain")));
}

#[test]
fn sg102_fires_when_a_chain_stitch_is_cut() {
    let design = protected();
    assert_eq!(
        lint_with(&design, design.lint_view(), "SG102").error_count(),
        0
    );
    // Sabotage the netlist: rewire flop 2's scan pin to the scan-enable
    // net — a classic botched-ECO mispatch.
    let mut nl = design.netlist.clone();
    let victim = design.chains.chains[0].cells[2];
    nl.set_cell_input(victim, 1, design.chains.se);
    let report = lint_design(
        &nl,
        &design.library,
        design.lint_view(),
        &only("SG102"),
        None,
    );
    assert_fires(&report, "SG102");
    assert!(report.diagnostics[0].message.contains("position 2"));
}

#[test]
fn sg103_fires_on_unbalanced_chains() {
    let design = protected();
    assert_eq!(
        lint_with(&design, design.lint_view(), "SG103").count(Severity::Warn),
        0
    );
    let mut chains = design.chains.clone();
    chains.chains[0].cells.pop();
    let view = DesignView {
        chains: &chains,
        ..design.lint_view()
    };
    let report = lint_with(&design, view, "SG103");
    assert_fires(&report, "SG103");
    assert!(report.diagnostics[0].message.contains("unbalanced"));
}

#[test]
fn sg104_fires_on_stale_test_chain_metadata() {
    let design = protected();
    assert_eq!(
        lint_with(&design, design.lint_view(), "SG104").error_count(),
        0
    );
    let mut tm = design.test_mode.clone().expect("test mode configured");
    tm.test_chain_lens[0] += 1;
    let view = DesignView {
        test_mode: Some(&tm),
        ..design.lint_view()
    };
    let report = lint_with(&design, view, "SG104");
    assert_fires(&report, "SG104");
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("does not match")));
}

#[test]
fn sg104_fires_when_test_width_does_not_divide_chains() {
    let design = protected();
    let mut tm = design.test_mode.clone().expect("test mode configured");
    tm.test_width = 3; // 8 chains % 3 != 0
    let view = DesignView {
        test_mode: Some(&tm),
        ..design.lint_view()
    };
    let report = lint_with(&design, view, "SG104");
    assert_fires(&report, "SG104");
    assert!(report.diagnostics[0].message.contains("does not divide"));
}

#[test]
fn sg201_fires_on_an_unisolated_domain_crossing() {
    let design = protected();
    assert_eq!(
        lint_with(&design, design.lint_view(), "SG201").error_count(),
        0
    );
    let wm = design.gated_watermark;
    // A gated combinational net...
    let gated_net = design
        .netlist
        .cells()
        .find(|(id, c)| id.index() < wm && !c.kind().is_sequential())
        .map(|(_, c)| c.output())
        .expect("fifo has gated gates");
    // ...wired straight into an always-on monitor gate.
    let victim = design
        .netlist
        .cells()
        .find(|(id, c)| id.index() >= wm && !c.inputs().is_empty())
        .map(|(id, _)| id)
        .expect("monitor has gates with inputs");
    let mut nl = design.netlist.clone();
    nl.set_cell_input(victim, 0, gated_net);
    let report = lint_design(
        &nl,
        &design.library,
        design.lint_view(),
        &only("SG201"),
        None,
    );
    assert_fires(&report, "SG201");
    assert!(report.diagnostics[0].message.contains("reads gated net"));
}

#[test]
fn sg202_fires_when_monitor_cells_sit_below_the_watermark() {
    let design = protected();
    assert_eq!(
        lint_with(&design, design.lint_view(), "SG202").error_count(),
        0
    );
    // Sabotage: claim the whole netlist is power-gated.
    let view = DesignView {
        gated_watermark: design.netlist.cell_count(),
        ..design.lint_view()
    };
    let report = lint_with(&design, view, "SG202");
    assert_fires(&report, "SG202");
    assert_eq!(report.error_count(), design.monitor.cells.len());
}

#[test]
fn sg203_fires_when_a_chain_bypasses_the_monitor() {
    let design = protected();
    assert_eq!(
        lint_with(&design, design.lint_view(), "SG203").error_count(),
        0
    );
    // Sabotage: rewire chain 0's first scan pin back to the raw si
    // port, bypassing the correction feedback.
    let mut nl = design.netlist.clone();
    let chain = &design.chains.chains[0];
    nl.set_cell_input(chain.cells[0], 1, chain.si);
    let report = lint_design(
        &nl,
        &design.library,
        design.lint_view(),
        &only("SG203"),
        None,
    );
    assert_fires(&report, "SG203");
    assert!(report.diagnostics[0].message.contains("chain 0"));
}

/// A gated flop's q and an always-on parity-store row (store rows are
/// the only always-on `Sdff`s in a Hamming monitor).
fn gated_q_and_store_row(design: &ProtectedDesign) -> (scanguard_netlist::NetId, String, CellId) {
    let wm = design.gated_watermark;
    let (gated_q, gated_name) = design
        .netlist
        .cells()
        .find(|(id, c)| id.index() < wm && c.kind().is_sequential())
        .map(|(_, c)| (c.output(), c.name().unwrap_or("?").to_owned()))
        .expect("fifo has gated flops");
    let store = design
        .netlist
        .cells()
        .find(|(id, c)| id.index() >= wm && c.kind() == GateKind::Sdff)
        .map(|(id, _)| id)
        .expect("monitor has store rows");
    (gated_q, gated_name, store)
}

#[test]
fn sg204_fires_on_a_gated_bypass_into_the_parity_store() {
    let design = protected();
    assert_eq!(
        lint_with(&design, design.lint_view(), "SG204").error_count(),
        0
    );
    // Sabotage: wire a gated flop's q straight onto a store row's d pin
    // — the bypass path the always-on store must never have.
    let (gated_q, gated_name, store) = gated_q_and_store_row(&design);
    let mut nl = design.netlist.clone();
    nl.set_cell_input(store, 0, gated_q);
    let report = lint_design(
        &nl,
        &design.library,
        design.lint_view(),
        &only("SG204"),
        None,
    );
    assert_fires(&report, "SG204");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "SG204")
        .unwrap();
    assert!(d.message.contains("capture X"));
    // The witness runs gated source → corrupted store bit.
    assert!(d.path.len() >= 2, "path must name source and sink: {d}");
    assert!(
        d.path[0].contains(&gated_name),
        "path starts at the gated flop: {d}"
    );
    assert_eq!(d.path.last(), d.cell.as_ref(), "path ends at the store bit");
}

#[test]
fn sg204_fires_when_a_store_scan_enable_comes_from_the_gated_domain() {
    let design = protected();
    // Sabotage: rewire a store row's se pin (the select of its internal
    // capture mux) from mon_en to a gated flop's q. With an X select
    // and disagreeing arms the capture goes X — the
    // mux-select-from-gated-domain variant.
    let (gated_q, gated_name, store) = gated_q_and_store_row(&design);
    let mut nl = design.netlist.clone();
    nl.set_cell_input(store, 2, gated_q);
    let report = lint_design(
        &nl,
        &design.library,
        design.lint_view(),
        &only("SG204"),
        None,
    );
    assert_fires(&report, "SG204");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "SG204")
        .unwrap();
    assert!(
        d.path.iter().any(|p| p.contains(&gated_name)),
        "witness names the gated select source: {d}"
    );
    assert_eq!(d.path.last(), d.cell.as_ref(), "path ends at the store bit");
}

#[test]
fn sg301_fires_when_arrivals_exceed_the_recorded_baseline() {
    let design = protected();
    assert_eq!(
        lint_with(&design, design.lint_view(), "SG301").error_count(),
        0
    );
    // Sabotage the baseline instead of the netlist: any real path now
    // "exceeds" it, which is exactly what a regressed design looks like.
    let view = DesignView {
        baseline_functional_ps: Some(0.001),
        ..design.lint_view()
    };
    let report = lint_with(&design, view, "SG301");
    assert_fires(&report, "SG301");
    assert!(report.diagnostics[0].message.contains("critical path grew"));
}

#[test]
fn sg302_fires_when_monitor_logic_feeds_a_functional_d_pin() {
    let design = protected();
    assert_eq!(
        lint_with(&design, design.lint_view(), "SG302").error_count(),
        0
    );
    let wm = design.gated_watermark;
    let mon_net = design
        .netlist
        .cells()
        .find(|(id, c)| id.index() >= wm && !c.kind().is_sequential())
        .map(|(_, c)| c.output())
        .expect("monitor has combinational gates");
    let victim = design
        .netlist
        .cells()
        .find(|(id, c)| id.index() < wm && c.kind().is_sequential())
        .map(|(id, _)| id)
        .expect("fifo has gated flops");
    let mut nl = design.netlist.clone();
    nl.set_cell_input(victim, 0, mon_net);
    let report = lint_design(
        &nl,
        &design.library,
        design.lint_view(),
        &only("SG302"),
        None,
    );
    assert_fires(&report, "SG302");
    assert!(report.diagnostics[0].message.contains("functional d pin"));
}
