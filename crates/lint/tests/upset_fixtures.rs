//! SG205/SG206 regression fixtures: clean designs must verify
//! exhaustively, and each seeded-bad surgery must produce a failing
//! verdict with a concrete counterexample trace (witness path + VCD).
//!
//! The seeded designs come from `scanguard_core::apply_sabotage` — the
//! same surgeries `scanguard verify --seed-bad` and CI's
//! expected-failure gate use.

use scanguard_core::{apply_sabotage, CodeChoice, ProtectedDesign, Sabotage, Synthesizer};
use scanguard_designs::Fifo;
use scanguard_lint::upset::{counterexample, FailKind};
use scanguard_lint::{LintContext, RuleSet};
use scanguard_netlist::NetlistBuilder;

fn fifo_design(code: CodeChoice) -> ProtectedDesign {
    Synthesizer::new(Fifo::generate(8, 8).netlist)
        .chains(8)
        .code(code)
        .build()
        .expect("synthesis")
}

fn bank_design(flops: usize, chains: usize, code: CodeChoice) -> ProtectedDesign {
    let mut b = NetlistBuilder::new("bank");
    for i in 0..flops {
        let d = b.input(&format!("d[{i}]"));
        let (q, _) = b.dff(&format!("r{i}"), d);
        b.output(&format!("q[{i}]"), q);
    }
    Synthesizer::new(b.finish().expect("valid netlist"))
        .chains(chains)
        .code(code)
        .build()
        .expect("synthesis")
}

fn deep_rules() -> RuleSet {
    RuleSet::select(&["SG205", "SG206"]).expect("deep rules exist")
}

#[test]
fn clean_designs_verify_exhaustively_across_codes() {
    for code in [
        CodeChoice::hamming7_4(),
        CodeChoice::ExtendedHamming { m: 3 },
        CodeChoice::Parity { group_width: 4 },
        CodeChoice::Crc16,
    ] {
        let design = fifo_design(code);
        let ctx = LintContext::with_design(&design.netlist, &design.library, design.lint_view());
        let rep = ctx
            .upset_report()
            .expect("synthesized designs carry a monitor view")
            .as_ref()
            .expect("engine runs");
        assert!(
            rep.is_clean(),
            "{} must verify clean: {:?} {:?}",
            rep.code,
            rep.clean_failures,
            rep.failures
        );
        assert_eq!(
            rep.singles_swept,
            8 * design.chain_len(),
            "{}: every single upset swept",
            rep.code
        );
        assert!(
            rep.bursts_swept > 0,
            "{}: claimable bursts are swept, not skipped",
            rep.code
        );
        assert!(rep.cycles > 2 * design.chain_len(), "full pass unrolled");
        let report = design.lint(&deep_rules(), None);
        assert_eq!(report.error_count(), 0, "{}:\n{report}", rep.code);
        assert_eq!(report.rules_run, 2);
    }
}

#[test]
fn fast_rule_set_never_runs_the_deep_engine() {
    let design = fifo_design(CodeChoice::hamming7_4());
    let ctx = LintContext::with_design(&design.netlist, &design.library, design.lint_view());
    let report = scanguard_lint::run(&ctx, &RuleSet::all(), None);
    assert!(ctx.upset_report_if_run().is_none(), "all() stays shallow");
    assert!(report.rules_run > 0);
}

#[test]
fn hamming_prunes_wide_bursts_with_counted_reasons() {
    let design = fifo_design(CodeChoice::hamming7_4());
    let ctx = LintContext::with_design(&design.netlist, &design.library, design.lint_view());
    let rep = ctx.upset_report().unwrap().as_ref().unwrap();
    assert!(
        rep.pruned.iter().any(|p| p.reason == "hamming-span-gt-2"),
        "wide bursts are out of the Hamming claim: {:?}",
        rep.pruned
    );
    assert!(rep.pruned_total() > 0);
}

#[test]
fn drop_correction_yields_missed_correct_with_counterexample() {
    let mut design = bank_design(16, 4, CodeChoice::hamming7_4());
    apply_sabotage(&mut design, Sabotage::DropCorrection).unwrap();
    let ctx = LintContext::with_design(&design.netlist, &design.library, design.lint_view());
    let rep = ctx.upset_report().unwrap().as_ref().unwrap();
    assert!(rep.clean_failures.is_empty(), "golden pass still sound");
    let fails: Vec<_> = rep.single_failures().collect();
    assert_eq!(
        fails.len(),
        design.chain_len(),
        "every depth of chain 0 goes uncorrected"
    );
    for f in &fails {
        assert_eq!(f.kind, FailKind::MissedCorrect);
        assert!(f.first_err_cycle.is_some(), "still detected");
        assert!(matches!(
            f.pattern,
            scanguard_dft::ErrorPattern::Single { chain: 0, .. }
        ));
    }

    // Replay the first failure: witness + trace.
    let view = design.lint_view();
    let ce = counterexample(&ctx, &view, Some(&fails[0].pattern)).expect("replayable");
    assert!(
        !ce.witness.is_empty(),
        "divergent cells form a witness path"
    );
    let (_, phase) = ce.first_divergence().expect("mon_err diverges");
    assert!(
        phase.starts_with("decode"),
        "divergence during decode: {phase}"
    );
    // Golden trace shape: one sample per settle point of the non-CRC
    // schedule (clear + l encode + 3 + clear + l decode + check).
    assert_eq!(ce.samples.len(), 2 * design.chain_len() + 5);

    let vcd = ce.to_vcd();
    for needle in [
        "$timescale 1ns $end",
        "$scope module golden $end",
        "$scope module faulty $end",
        "$var wire 1 ! mon_en $end",
        "mon_err",
        "chain0_0_q",
        "$enddefinitions $end",
    ] {
        assert!(vcd.contains(needle), "VCD lacks {needle:?}:\n{vcd}");
    }

    // And the rule reports it, with a witness path on the first diag.
    let report = design.lint(&deep_rules(), None);
    assert!(report.error_count() > 0);
    let first = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "SG205")
        .unwrap();
    assert!(first.message.contains("not restored"), "{}", first.message);
    assert!(!first.path.is_empty(), "witness path attached");
}

#[test]
fn swap_groups_breaks_the_golden_pass_and_marks_bursts_unsound() {
    let mut design = fifo_design(CodeChoice::hamming7_4());
    apply_sabotage(&mut design, Sabotage::SwapGroups).unwrap();
    let ctx = LintContext::with_design(&design.netlist, &design.library, design.lint_view());
    let rep = ctx.upset_report().unwrap().as_ref().unwrap();
    assert!(
        !rep.clean_failures.is_empty(),
        "swapped membership corrupts even the upset-free pass"
    );
    let report = design.lint(&deep_rules(), None);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == "SG205" && d.message.contains("golden monitor pass failed")));
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == "SG206" && d.message.contains("unsound")));

    // The golden-pass counterexample names the mis-restored latches.
    let view = design.lint_view();
    let ce = counterexample(&ctx, &view, None).expect("replayable");
    assert!(ce.pattern.is_none());
    assert!(
        ce.witness.iter().any(|w| w.contains("want")),
        "witness shows got/want per latch: {:?}",
        ce.witness
    );
}

#[test]
fn early_store_enable_raises_spurious_golden_err() {
    let mut design = bank_design(16, 4, CodeChoice::hamming7_4());
    apply_sabotage(&mut design, Sabotage::EarlyStore).unwrap();
    let ctx = LintContext::with_design(&design.netlist, &design.library, design.lint_view());
    let rep = ctx.upset_report().unwrap().as_ref().unwrap();
    assert!(
        rep.clean_failures
            .iter()
            .any(|m| m.contains("spurious mon_err")),
        "early store enable must fire mon_err on the clean pass: {:?}",
        rep.clean_failures
    );
    let report = design.lint(&deep_rules(), None);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == "SG205" && d.message.contains("spurious mon_err")));
}

#[test]
fn crc_schedule_includes_signature_capture_in_traces() {
    let design = fifo_design(CodeChoice::Crc16);
    let ctx = LintContext::with_design(&design.netlist, &design.library, design.lint_view());
    let view = design.lint_view();
    // A clean design has no failure to replay, but the golden replay
    // still documents the schedule (pattern: a real fault, any one).
    let f = scanguard_dft::ErrorPattern::Single { chain: 0, depth: 0 };
    let ce = counterexample(&ctx, &view, Some(&f)).expect("replayable");
    assert!(ce.signals.iter().any(|s| s == "mon_sig_cap"));
    // Non-CRC schedule + one signature-capture point.
    assert_eq!(ce.samples.len(), 2 * design.chain_len() + 6);
    assert!(ce.samples.iter().any(|s| s.phase == "sig-capture"));
}
