//! Static 3-valued X-propagation analysis over the always-on cone.
//!
//! The paper's monitor is only trustworthy if the unknown state of a
//! collapsed power domain can never leak into it while monitoring is
//! idle. This module answers that question *statically*: every net is
//! assigned a [`LogicSet`] — the set of levels it can take while the
//! gated domain is powered off and `mon_en` is held low — and the sets
//! are propagated through the always-on combinational cone with the
//! exact ternary gate semantics of the simulator ([`GateKind::eval_set`]
//! is the image of `eval` over the input sets, so controlling values
//! kill X and a mux with a defined select passes only the selected arm).
//!
//! The abstraction mirrors the simulator's power model:
//!
//! * every cell below the gated watermark — sequential *and*
//!   combinational — outputs X when the domain rail is down;
//! * `mon_en` and `mon_clear` are pinned to 0 (monitoring idle), all
//!   other primary inputs range over `{0, 1}`;
//! * always-on sequential outputs are assumed defined (`{0, 1}`) — the
//!   inductive hypothesis that rule SG204 then discharges by proving
//!   every always-on flop *captures* a defined value, so no X ever
//!   enters always-on state in the first place.
//!
//! Propagation runs as a chaotic-iteration fixpoint (sets only grow and
//! `eval_set` is monotone, so it terminates), which keeps the analysis
//! robust on broken or cyclic netlists: nets still empty at the fixpoint
//! (floating inputs, combinational loops) conservatively read as
//! "any level, including X".

use crate::LintContext;
use scanguard_netlist::{CellId, Logic, LogicSet, NetId};
use std::collections::HashSet;

/// Input-port names pinned low during the analysis: the domain is
/// asleep and the monitor idle, the very window SG204 reasons about.
const PINNED_LOW_PORTS: [&str; 2] = ["mon_en", "mon_clear"];

/// The per-net result of the static X-propagation pass.
#[derive(Debug, Clone)]
pub struct XPropContext {
    nets: Vec<LogicSet>,
    watermark: usize,
}

impl XPropContext {
    /// Runs the analysis. Cells with index below `gated_watermark` are
    /// in the collapsed power domain and source X; everything at or
    /// above it is always-on.
    #[must_use]
    pub fn build(ctx: &LintContext<'_>, gated_watermark: usize) -> Self {
        let nl = ctx.netlist();
        let mut nets = vec![LogicSet::EMPTY; nl.net_count()];
        for (name, net) in nl.input_ports() {
            nets[net.index()] = if PINNED_LOW_PORTS.contains(&name.as_str()) {
                LogicSet::ZERO
            } else {
                LogicSet::KNOWN
            };
        }
        for (id, cell) in nl.cells() {
            let out = cell.output().index();
            if id.index() < gated_watermark {
                // The simulator reports X for *every* cell of a
                // powered-off domain, tie cells and gates included.
                nets[out] = nets[out].union(LogicSet::X);
            } else if cell.kind().is_sequential() {
                // Inductive hypothesis: always-on state is defined.
                nets[out] = nets[out].union(LogicSet::KNOWN);
            }
        }
        let mut xp = XPropContext {
            nets,
            watermark: gated_watermark,
        };
        // Chaotic iteration to a fixpoint. Cells are created in rough
        // dataflow order, so an index-order sweep converges in a couple
        // of passes; each net can only widen at most twice, bounding
        // the loop even on adversarial netlists.
        loop {
            let mut changed = false;
            for (id, cell) in nl.cells() {
                if id.index() < gated_watermark || cell.kind().is_sequential() {
                    continue;
                }
                let ins: Vec<LogicSet> = cell.inputs().iter().map(|n| xp.nets[n.index()]).collect();
                let new = cell.kind().eval_set(&ins);
                let out = cell.output().index();
                let merged = xp.nets[out].union(new);
                if merged != xp.nets[out] {
                    xp.nets[out] = merged;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        xp
    }

    /// The levels `net` can take while the gated domain is collapsed
    /// and `mon_en` is low. Nets the fixpoint never reached (floating
    /// inputs, combinational loops) conservatively report
    /// [`LogicSet::ANY`].
    #[must_use]
    pub fn net_set(&self, net: NetId) -> LogicSet {
        let s = self.nets[net.index()];
        if s.is_empty() {
            LogicSet::ANY
        } else {
            s
        }
    }

    /// The values `cell` can *capture* at a clock edge: its kind's
    /// ternary evaluation over the input-net sets. For scan flops this
    /// respects the internal `se` mux, so a pinned-low scan enable
    /// provably masks an X-carrying scan-in.
    #[must_use]
    pub fn capture_set(&self, ctx: &LintContext<'_>, cell: CellId) -> LogicSet {
        let c = ctx.netlist().cell(cell);
        let ins: Vec<LogicSet> = c.inputs().iter().map(|&n| self.net_set(n)).collect();
        c.kind().eval_set(&ins)
    }

    /// Picks an input pin of `cell` that can actually drive its output
    /// (or, for flops, its capture value) to X: a pin holding X in some
    /// concrete input combination that evaluates to X. `None` when no
    /// such combination exists.
    #[must_use]
    pub fn x_input(&self, ctx: &LintContext<'_>, cell: CellId) -> Option<usize> {
        let c = ctx.netlist().cell(cell);
        let kind = c.kind();
        let n = c.inputs().len();
        let sets: Vec<LogicSet> = c.inputs().iter().map(|&i| self.net_set(i)).collect();
        let mut combo = [Logic::Zero; 3];
        for idx in 0..3usize.pow(n as u32) {
            let mut rem = idx;
            let mut live = true;
            for pin in 0..n {
                let level = Logic::ALL[rem % 3];
                rem /= 3;
                if !sets[pin].contains(level) {
                    live = false;
                    break;
                }
                combo[pin] = level;
            }
            if live && kind.eval(&combo[..n]) == Logic::X {
                if let Some(pin) = (0..n).find(|&p| combo[p] == Logic::X) {
                    return Some(pin);
                }
            }
        }
        None
    }

    /// Walks an X-carrying net backwards to its source, one responsible
    /// cell per hop, and returns the cell labels ordered source →
    /// consumer. The walk stops at the gated domain (the X origin), at
    /// sequential cells, and on revisits (cycles).
    #[must_use]
    pub fn witness(&self, ctx: &LintContext<'_>, start: NetId) -> Vec<String> {
        let nl = ctx.netlist();
        let mut path = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        let mut net = start;
        loop {
            if !seen.insert(net.index()) {
                break;
            }
            let Some(&d) = ctx.drivers(net).first() else {
                path.push(format!("floating net {}", ctx.net_label(net)));
                break;
            };
            path.push(ctx.cell_label(d));
            let cell = nl.cell(d);
            if d.index() < self.watermark || cell.kind().is_sequential() {
                break; // the gated domain (or stored state) is the source
            }
            match self.x_input(ctx, d) {
                Some(pin) => net = cell.inputs()[pin],
                None => break,
            }
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanguard_netlist::{CellLibrary, GateKind, NetlistBuilder};

    #[test]
    fn controlling_and_kills_gated_x_but_xor_passes_it() {
        let mut b = NetlistBuilder::new("t");
        let d = b.input("d");
        let (gq, _) = b.dff("gated_ff", d); // below the watermark
        let tie = b.tie_lo();
        let killed = b.and2(gq, tie);
        let leaked = b.xor2(gq, d);
        b.output("killed", killed);
        b.output("leaked", leaked);
        let nl = b.finish().unwrap();
        let lib = CellLibrary::st120nm();
        let ctx = LintContext::new(&nl, &lib);
        // Watermark after the flop: the flop is gated, the gates are not.
        // Cell order: dff, tie, and, xor → watermark 1.
        let xp = XPropContext::build(&ctx, 1);
        assert_eq!(xp.net_set(gq), LogicSet::X);
        assert_eq!(xp.net_set(killed), LogicSet::ZERO, "AND-0 masks the X");
        assert!(xp.net_set(leaked).may_be_x(), "XOR propagates the X");
    }

    #[test]
    fn pinned_ports_and_mux_select_semantics() {
        let mut b = NetlistBuilder::new("t");
        let en = b.input("mon_en");
        let d = b.input("d");
        let (gq, _) = b.dff("gated_ff", d);
        let (m, mux_cell) = b.named_cell("pick", GateKind::Mux2, vec![en, d, gq]);
        b.output("m", m);
        let nl = b.finish().unwrap();
        let lib = CellLibrary::st120nm();
        let ctx = LintContext::new(&nl, &lib);
        let xp = XPropContext::build(&ctx, 1);
        assert_eq!(xp.net_set(en), LogicSet::ZERO, "mon_en is pinned low");
        // sel=0 selects the defined arm; the X arm is dead.
        assert_eq!(xp.net_set(m), LogicSet::KNOWN);
        assert_eq!(xp.x_input(&ctx, mux_cell), None, "no combo reaches X");
    }

    #[test]
    fn witness_traces_back_to_the_gated_source() {
        let mut b = NetlistBuilder::new("t");
        let d = b.input("d");
        let (gq, gated) = b.dff("gated_ff", d);
        let (inv, inv_cell) = b.named_cell("inv", GateKind::Not, vec![gq]);
        let (leak, leak_cell) = b.named_cell("leak", GateKind::Xor2, vec![inv, d]);
        b.output("y", leak);
        let nl = b.finish().unwrap();
        let lib = CellLibrary::st120nm();
        let ctx = LintContext::new(&nl, &lib);
        let xp = XPropContext::build(&ctx, 1);
        assert!(xp.net_set(leak).may_be_x());
        let path = xp.witness(&ctx, leak);
        assert_eq!(
            path,
            vec![
                ctx.cell_label(gated),
                ctx.cell_label(inv_cell),
                ctx.cell_label(leak_cell),
            ],
            "path runs source → consumer"
        );
    }

    #[test]
    fn unreached_nets_read_conservatively() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let (x, and_cell) = b.named_cell("g_and", GateKind::And2, vec![a, a]);
        let (y, _) = b.named_cell("g_not", GateKind::Not, vec![x]);
        b.output("y", y);
        let mut nl = b.finish().unwrap();
        nl.set_cell_input(and_cell, 1, y); // combinational loop
        let lib = CellLibrary::st120nm();
        let ctx = LintContext::new(&nl, &lib);
        let xp = XPropContext::build(&ctx, 0);
        assert_eq!(xp.net_set(y), LogicSet::ANY, "cyclic nets stay unknown");
    }
}
