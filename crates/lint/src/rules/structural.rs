//! `SG0xx` — structural well-formedness of the bare netlist.

use crate::{Diagnostic, LintContext, Rule, Severity};
use scanguard_netlist::NetId;

fn all_nets(ctx: &LintContext<'_>) -> impl Iterator<Item = NetId> {
    (0..ctx.netlist().net_count()).map(NetId::from_index)
}

/// SG001: a net with no driver is consumed by a cell or exported as an
/// output port.
pub struct FloatingNet;

impl Rule for FloatingNet {
    fn id(&self) -> &'static str {
        "SG001"
    }
    fn title(&self) -> &'static str {
        "floating-net"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for net in all_nets(ctx) {
            if ctx.drivers(net).is_empty() && !ctx.is_input_port(net) {
                let consumed = !ctx.consumers(net).is_empty();
                let exported = ctx.is_output_port(net);
                if consumed || exported {
                    let sink = if consumed {
                        format!("cell {}", ctx.cell_label(ctx.consumers(net)[0]))
                    } else {
                        "an output port".to_owned()
                    };
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: self.severity(),
                        message: format!(
                            "net {} has no driver but feeds {sink}",
                            ctx.net_label(net)
                        ),
                        cell: ctx.consumers(net).first().map(|&c| ctx.cell_label(c)),
                        net: Some(ctx.net_label(net)),
                        hint: "drive the net with a cell or declare it a primary input".into(),
                        path: Vec::new(),
                    });
                }
            }
        }
        out
    }
}

/// SG002: a net has two or more drivers, or a primary input is also
/// driven by a cell.
pub struct MultiDrivenNet;

impl Rule for MultiDrivenNet {
    fn id(&self) -> &'static str {
        "SG002"
    }
    fn title(&self) -> &'static str {
        "multi-driven-net"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for net in all_nets(ctx) {
            let drivers = ctx.drivers(net);
            if drivers.len() > 1 {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.severity(),
                    message: format!(
                        "net {} is driven by {} cells ({} and {})",
                        ctx.net_label(net),
                        drivers.len(),
                        ctx.cell_label(drivers[0]),
                        ctx.cell_label(drivers[1]),
                    ),
                    cell: Some(ctx.cell_label(drivers[1])),
                    net: Some(ctx.net_label(net)),
                    hint: "keep exactly one driver per net; mux or gate the sources".into(),
                    path: Vec::new(),
                });
            } else if ctx.is_input_port(net) && !drivers.is_empty() {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.severity(),
                    message: format!(
                        "primary input {} is also driven by cell {}",
                        ctx.net_label(net),
                        ctx.cell_label(drivers[0]),
                    ),
                    cell: Some(ctx.cell_label(drivers[0])),
                    net: Some(ctx.net_label(net)),
                    hint: "an input port must not have an internal driver".into(),
                    path: Vec::new(),
                });
            }
        }
        out
    }
}

/// SG003: a cell's output drives nothing and is not exported — dead
/// logic that silently inflates area and leakage reports.
pub struct UnobservableCell;

impl Rule for UnobservableCell {
    fn id(&self) -> &'static str {
        "SG003"
    }
    fn title(&self) -> &'static str {
        "unobservable-cell"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (id, cell) in ctx.netlist().cells() {
            let net = cell.output();
            if ctx.consumers(net).is_empty() && !ctx.is_output_port(net) {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.severity(),
                    message: format!("cell {} drives nothing observable", ctx.cell_label(id)),
                    cell: Some(ctx.cell_label(id)),
                    net: Some(ctx.net_label(net)),
                    hint: "remove the dead cell or export/consume its output".into(),
                    path: Vec::new(),
                });
            }
        }
        out
    }
}

/// SG004: the combinational part of the netlist contains a cycle.
pub struct CombinationalLoop;

impl Rule for CombinationalLoop {
    fn id(&self) -> &'static str {
        "SG004"
    }
    fn title(&self) -> &'static str {
        "combinational-loop"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        match ctx.loop_cells() {
            None => Vec::new(),
            Some(stuck) => vec![Diagnostic {
                rule: self.id(),
                severity: self.severity(),
                message: format!(
                    "combinational loop through {} cell(s), e.g. {}",
                    stuck.len(),
                    ctx.cell_label(stuck[0]),
                ),
                cell: Some(ctx.cell_label(stuck[0])),
                net: None,
                hint: "break the cycle with a flip-flop or re-route the feedback".into(),
                path: Vec::new(),
            }],
        }
    }
}

/// SG005: a primary input port drives no logic. Info-severity because
/// correct protected designs exhibit it: the monitor feedback replaces
/// the raw per-chain `si` ports, which remain as (unused) pins.
pub struct UnusedInputPort;

impl Rule for UnusedInputPort {
    fn id(&self) -> &'static str {
        "SG005"
    }
    fn title(&self) -> &'static str {
        "unused-input-port"
    }
    fn severity(&self) -> Severity {
        Severity::Info
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for (name, net) in ctx.netlist().input_ports() {
            if ctx.consumers(*net).is_empty() && !ctx.is_output_port(*net) {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.severity(),
                    message: format!("input port {name:?} drives no logic"),
                    cell: None,
                    net: Some(ctx.net_label(*net)),
                    hint: "drop the port, or wire it where it was meant to go".into(),
                    path: Vec::new(),
                });
            }
        }
        out
    }
}
