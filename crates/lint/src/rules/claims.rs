//! `SG3xx` — the paper's headline claims, checked structurally: the
//! monitor must not touch the functional critical path (Sec. III:
//! "no impact on power gated circuits' performance").

use crate::{Diagnostic, LintContext, Rule, Severity};

/// Slack tolerance in ps for floating-point arrival comparison.
const EPS_PS: f64 = 1e-6;

/// SG301: the worst arrival at any *gated* flop's functional `d` pin is
/// unchanged versus the pre-monitor baseline recorded at synthesis time.
pub struct FunctionalCriticalPathUnchanged;

impl Rule for FunctionalCriticalPathUnchanged {
    fn id(&self) -> &'static str {
        "SG301"
    }
    fn title(&self) -> &'static str {
        "critical-path-unchanged"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn needs_design(&self) -> bool {
        true
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(view) = ctx.design() else {
            return Vec::new();
        };
        let Some(baseline) = view.baseline_functional_ps else {
            return Vec::new(); // no baseline recorded: nothing to compare
        };
        let Some(arrival) = ctx.arrivals() else {
            return Vec::new(); // loops; SG004 reports them
        };
        let wm = view.gated_watermark;
        let mut worst = 0.0f64;
        let mut worst_cell = None;
        for (id, cell) in ctx.netlist().cells() {
            if id.index() >= wm || !cell.kind().is_sequential() {
                continue;
            }
            let at = arrival[cell.inputs()[0].index()];
            if at > worst {
                worst = at;
                worst_cell = Some(id);
            }
        }
        if worst > baseline + EPS_PS {
            let cell = worst_cell.map(|c| ctx.cell_label(c));
            return vec![Diagnostic {
                rule: self.id(),
                severity: self.severity(),
                message: format!(
                    "functional critical path grew from {baseline:.1} ps to {worst:.1} \
                     ps after monitor insertion"
                ),
                cell,
                net: None,
                hint: "monitor logic must attach to scan pins only; keep functional \
                       `d` cones untouched"
                    .into(),
                path: Vec::new(),
            }];
        }
        Vec::new()
    }
}

/// SG302: no always-on (monitor/overlay) cell output reaches any gated
/// flop's functional `d` pin combinationally — the structural form of
/// SG301, independent of library delays.
pub struct MonitorOffFunctionalPaths;

impl Rule for MonitorOffFunctionalPaths {
    fn id(&self) -> &'static str {
        "SG302"
    }
    fn title(&self) -> &'static str {
        "monitor-off-functional-paths"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn needs_design(&self) -> bool {
        true
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(view) = ctx.design() else {
            return Vec::new();
        };
        let wm = view.gated_watermark;
        let reach = ctx.alwayson_reach(wm);
        let mut out = Vec::new();
        for (id, cell) in ctx.netlist().cells() {
            if id.index() >= wm || !cell.kind().is_sequential() {
                continue;
            }
            let d_pin = cell.inputs()[0];
            if reach[d_pin.index()] {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.severity(),
                    message: format!(
                        "monitor/overlay logic reaches the functional d pin of gated \
                         flop {}",
                        ctx.cell_label(id)
                    ),
                    cell: Some(ctx.cell_label(id)),
                    net: Some(ctx.net_label(d_pin)),
                    hint: "always-on logic may feed scan pins (pin 1) only; functional \
                           data paths must stay inside the gated domain"
                        .into(),
                    path: Vec::new(),
                });
            }
        }
        out
    }
}
