//! The rule trait, the registry of shipped rules, and rule selection.

mod claims;
mod power;
mod scan;
mod structural;
mod upset;

use crate::{Diagnostic, LintContext, Severity};
use std::fmt;

/// One design-rule check.
///
/// Rules are stateless: everything they need is on the shared
/// [`LintContext`]. A rule with `needs_design() == true` is skipped
/// (not failed) when the context carries no
/// [`DesignView`](crate::DesignView).
pub trait Rule {
    /// Stable ID (`SG001`…); never reused across versions.
    fn id(&self) -> &'static str;
    /// Short name for tables and `--rules` listings.
    fn title(&self) -> &'static str;
    /// Severity every diagnostic of this rule carries.
    fn severity(&self) -> Severity;
    /// `true` when the rule needs chain/monitor/domain metadata.
    fn needs_design(&self) -> bool {
        false
    }
    /// `true` for *deep* rules — bounded sequential proofs (SG205/
    /// SG206) that simulate the design instead of inspecting its
    /// structure. Deep rules are excluded from [`RuleSet::all`] so
    /// routine lint gates stay fast; reach them with
    /// [`RuleSet::select`] or [`RuleSet::full`].
    fn deep(&self) -> bool {
        false
    }
    /// Runs the check; an empty vector means the rule passed.
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic>;
}

impl fmt::Debug for dyn Rule + Send + Sync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rule({})", self.id())
    }
}

/// Every shipped rule, in ID order.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule + Send + Sync>> {
    vec![
        Box::new(structural::FloatingNet),
        Box::new(structural::MultiDrivenNet),
        Box::new(structural::UnobservableCell),
        Box::new(structural::CombinationalLoop),
        Box::new(structural::UnusedInputPort),
        Box::new(scan::ChainMembership),
        Box::new(scan::ChainConnectivity),
        Box::new(scan::ChainBalance),
        Box::new(scan::TestModeConcatenation),
        Box::new(power::DomainCrossingIsolation),
        Box::new(power::MonitorInAlwaysOnDomain),
        Box::new(power::CorrectionFeedbackReachesChains),
        Box::new(power::StoreXPropagation),
        Box::new(upset::UpsetSingleVerified),
        Box::new(upset::UpsetBurstVerified),
        Box::new(claims::FunctionalCriticalPathUnchanged),
        Box::new(claims::MonitorOffFunctionalPaths),
    ]
}

/// The stable IDs of every shipped rule, in registry order.
#[must_use]
pub fn rule_ids() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.id()).collect()
}

/// A requested rule ID that no shipped rule carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownRule {
    /// The ID that failed to resolve.
    pub requested: String,
    /// Every valid ID, for the error message.
    pub valid: Vec<&'static str>,
}

impl fmt::Display for UnknownRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown lint rule {:?} (valid: {})",
            self.requested,
            self.valid.join(", ")
        )
    }
}

impl std::error::Error for UnknownRule {}

/// An ordered selection of rules to run.
pub struct RuleSet {
    rules: Vec<Box<dyn Rule + Send + Sync>>,
}

impl fmt::Debug for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.rules.iter().map(|r| r.id()))
            .finish()
    }
}

impl RuleSet {
    /// Every shipped rule *except* the deep sequential ones — the fast
    /// set every routine gate (CLI lint default, explore pruning, the
    /// synthesis gate) runs.
    #[must_use]
    pub fn all() -> Self {
        RuleSet {
            rules: all_rules().into_iter().filter(|r| !r.deep()).collect(),
        }
    }

    /// Every shipped rule including the deep sequential proofs — what
    /// `scanguard verify` runs when asked for everything.
    #[must_use]
    pub fn full() -> Self {
        RuleSet { rules: all_rules() }
    }

    /// Only the rules whose IDs appear in `ids` (registry order is
    /// preserved regardless of the order of `ids`).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownRule`] — listing every valid ID — for the first
    /// requested ID that no rule carries.
    pub fn select(ids: &[&str]) -> Result<Self, UnknownRule> {
        let valid = rule_ids();
        for &id in ids {
            if !valid.contains(&id) {
                return Err(UnknownRule {
                    requested: id.to_owned(),
                    valid,
                });
            }
        }
        let rules = all_rules()
            .into_iter()
            .filter(|r| ids.contains(&r.id()))
            .collect();
        Ok(RuleSet { rules })
    }

    /// The selected rules, in registry order.
    #[must_use]
    pub fn rules(&self) -> &[Box<dyn Rule + Send + Sync>] {
        &self.rules
    }

    /// Number of selected rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when no rules are selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_stable_prefixed() {
        let ids = rule_ids();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate rule ID");
        assert!(ids.iter().all(|id| id.starts_with("SG")));
    }

    #[test]
    fn deep_rules_are_selectable_but_excluded_from_all() {
        let all = RuleSet::all();
        assert!(all.rules().iter().all(|r| !r.deep()));
        assert_eq!(RuleSet::full().len(), all.len() + 2);
        let rs = RuleSet::select(&["SG205", "SG206"]).unwrap();
        let picked: Vec<&str> = rs.rules().iter().map(|r| r.id()).collect();
        assert_eq!(picked, vec!["SG205", "SG206"]);
    }

    #[test]
    fn select_keeps_registry_order_and_rejects_unknowns() {
        let rs = RuleSet::select(&["SG004", "SG001"]).unwrap();
        let picked: Vec<&str> = rs.rules().iter().map(|r| r.id()).collect();
        assert_eq!(picked, vec!["SG001", "SG004"]);
        let err = RuleSet::select(&["SG999"]).unwrap_err();
        assert_eq!(err.requested, "SG999");
        assert!(err.to_string().contains("SG001"));
    }
}
