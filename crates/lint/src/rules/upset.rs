//! Deep sequential rules: exhaustive upset verification (SG205/SG206).
//!
//! Both rules share one sweep of the symbolic engine, cached on the
//! [`LintContext`]; they slice the same [`UpsetReport`] into the
//! single-upset obligations (SG205: detect **and** correct, plus the
//! golden-pass soundness obligations) and the in-group burst
//! obligations (SG206: detect). They are `deep()` rules: excluded from
//! [`RuleSet::all`](crate::RuleSet::all) so ordinary lint gates stay
//! fast, and reached through `RuleSet::select`/`full` — which is what
//! `scanguard verify` does.

use crate::upset::{counterexample, FailKind, FaultFailure, UpsetReport};
use crate::{Diagnostic, LintContext, Rule, Severity};
use scanguard_dft::ErrorPattern;

/// Diagnostics emitted per failure kind before collapsing into a count.
const DIAG_CAP: usize = 5;

/// SG205: every single retention-latch upset is detected — and, under a
/// correcting code, corrected — by the monitor pass; the golden pass
/// itself is lossless and X-free at every sample point.
pub struct UpsetSingleVerified;

/// SG206: every claimable in-group burst is detected by the monitor
/// pass (spans outside the code's claim are pruned and counted, never
/// silently dropped).
pub struct UpsetBurstVerified;

fn pattern_label(p: &ErrorPattern) -> String {
    match *p {
        ErrorPattern::Single { chain, depth } => {
            format!("single upset chain {chain} depth {depth}")
        }
        ErrorPattern::Burst {
            first_chain,
            span,
            depth,
        } => format!(
            "burst upset chains {first_chain}..{} depth {depth}",
            first_chain + span - 1
        ),
    }
}

fn victim_cell_label(ctx: &LintContext<'_>, p: &ErrorPattern) -> Option<String> {
    let view = ctx.design()?;
    let (c, d) = *p.flip_positions().first()?;
    Some(ctx.cell_label(view.chains.chains.get(c)?.cells.get(d).copied()?))
}

fn fail_message(f: &FaultFailure, rep: &UpsetReport) -> String {
    let what = pattern_label(&f.pattern);
    match f.kind {
        FailKind::MissedDetect => {
            format!("{what} never raised mon_err across the full {}-cycle pass", rep.cycles)
        }
        FailKind::MissedCorrect => match f.first_err_cycle {
            Some(c) => format!(
                "{what} was detected (mon_err at cycle {c}) but not restored by the correction feedback"
            ),
            None => format!("{what} was not restored by the correction feedback"),
        },
        FailKind::XAtSample => {
            format!("{what} left mon_err/mon_done unknown (X) at a sample point — the verdict is unsound")
        }
    }
}

/// Shared diagnostic assembly over a slice of failures: at most
/// [`DIAG_CAP`] per failure kind, the first of each kind carrying a
/// replayed witness path.
fn failure_diags<'f>(
    ctx: &LintContext<'_>,
    rule: &'static str,
    rep: &UpsetReport,
    failures: impl Iterator<Item = &'f FaultFailure>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut counts = [0usize; 3];
    let mut totals = [0usize; 3];
    let slot = |k: FailKind| match k {
        FailKind::MissedDetect => 0,
        FailKind::MissedCorrect => 1,
        FailKind::XAtSample => 2,
    };
    let failures: Vec<&FaultFailure> = failures.collect();
    for f in &failures {
        totals[slot(f.kind)] += 1;
    }
    for f in &failures {
        let s = slot(f.kind);
        counts[s] += 1;
        if counts[s] > DIAG_CAP {
            continue;
        }
        let mut message = fail_message(f, rep);
        if counts[s] == DIAG_CAP && totals[s] > DIAG_CAP {
            message.push_str(&format!(" (+{} more like this)", totals[s] - DIAG_CAP));
        }
        let path = if counts[s] == 1 {
            ctx.design()
                .and_then(|view| counterexample(ctx, view, Some(&f.pattern)))
                .map(|ce| ce.witness)
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        out.push(Diagnostic {
            rule,
            severity: Severity::Error,
            message,
            cell: victim_cell_label(ctx, &f.pattern),
            net: None,
            hint: "replay with `scanguard verify --trace-out ce.vcd` for the full waveform"
                .to_owned(),
            path,
        });
    }
    out
}

fn engine_error_diag(rule: &'static str, err: &crate::upset::UpsetError) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Error,
        message: format!("upset verification could not run: {err}"),
        cell: None,
        net: None,
        hint: "fix the structural findings (SG002/SG004) or shrink the configuration".to_owned(),
        path: Vec::new(),
    }
}

impl Rule for UpsetSingleVerified {
    fn id(&self) -> &'static str {
        "SG205"
    }

    fn title(&self) -> &'static str {
        "exhaustive single-upset detect/correct proof"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn needs_design(&self) -> bool {
        true
    }

    fn deep(&self) -> bool {
        true
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(result) = ctx.upset_report() else {
            return Vec::new(); // no monitor metadata: nothing to verify
        };
        let rep = match result {
            Err(e) => return vec![engine_error_diag(self.id(), e)],
            Ok(rep) => rep,
        };
        let mut out: Vec<Diagnostic> = Vec::new();
        for (i, msg) in rep.clean_failures.iter().enumerate() {
            if i >= DIAG_CAP {
                out.last_mut()
                    .expect("pushed above")
                    .message
                    .push_str(&format!(
                        " (+{} more golden-pass failures)",
                        rep.clean_failures.len() - DIAG_CAP
                    ));
                break;
            }
            let path = if i == 0 {
                ctx.design()
                    .and_then(|view| counterexample(ctx, view, None))
                    .map(|ce| ce.witness)
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Error,
                message: format!("golden monitor pass failed: {msg}"),
                cell: None,
                net: None,
                hint: "the pass must circulate losslessly and keep mon_err/mon_done known"
                    .to_owned(),
                path,
            });
        }
        out.extend(failure_diags(ctx, self.id(), rep, rep.single_failures()));
        out
    }
}

impl Rule for UpsetBurstVerified {
    fn id(&self) -> &'static str {
        "SG206"
    }

    fn title(&self) -> &'static str {
        "exhaustive in-group burst detection proof"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn needs_design(&self) -> bool {
        true
    }

    fn deep(&self) -> bool {
        true
    }

    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(result) = ctx.upset_report() else {
            return Vec::new();
        };
        let rep = match result {
            Err(e) => return vec![engine_error_diag(self.id(), e)],
            Ok(rep) => rep,
        };
        let mut out = Vec::new();
        if !rep.clean_failures.is_empty() {
            out.push(Diagnostic {
                rule: self.id(),
                severity: Severity::Error,
                message: format!(
                    "burst verification is unsound: the golden monitor pass failed {} obligation(s) (see SG205)",
                    rep.clean_failures.len()
                ),
                cell: None,
                net: None,
                hint: "fix the golden-pass failures first; burst verdicts assume a sound pass"
                    .to_owned(),
                path: Vec::new(),
            });
        }
        out.extend(failure_diags(ctx, self.id(), rep, rep.burst_failures()));
        out
    }
}
