//! `SG1xx` — scan DRC: chain membership, static chain tracing,
//! balance, and the Fig. 5(b) test-mode concatenation.

use crate::{Diagnostic, LintContext, Rule, Severity};
use std::collections::HashMap;

/// SG101: every retention flop sits on exactly one chain, and every
/// chain member is a scan-capable flop.
pub struct ChainMembership;

impl Rule for ChainMembership {
    fn id(&self) -> &'static str {
        "SG101"
    }
    fn title(&self) -> &'static str {
        "chain-membership"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn needs_design(&self) -> bool {
        true
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(view) = ctx.design() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut owner: HashMap<usize, Vec<usize>> = HashMap::new();
        for (k, chain) in view.chains.chains.iter().enumerate() {
            for &c in &chain.cells {
                owner.entry(c.index()).or_default().push(k);
                if !ctx.netlist().cell(c).kind().is_scan() {
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: self.severity(),
                        message: format!(
                            "chain {k} lists cell {} which is not a scan flop ({:?})",
                            ctx.cell_label(c),
                            ctx.netlist().cell(c).kind(),
                        ),
                        cell: Some(ctx.cell_label(c)),
                        net: None,
                        hint: "scan insertion must morph every chained flop to Sdff/Rsdff".into(),
                        path: Vec::new(),
                    });
                }
            }
        }
        for (cell_idx, chains) in &owner {
            if chains.len() > 1 {
                let c = scanguard_netlist::CellId::from_index(*cell_idx);
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.severity(),
                    message: format!(
                        "flop {} appears on {} chains (e.g. {} and {})",
                        ctx.cell_label(c),
                        chains.len(),
                        chains[0],
                        chains[1],
                    ),
                    cell: Some(ctx.cell_label(c)),
                    net: None,
                    hint: "each flop must shift through exactly one chain".into(),
                    path: Vec::new(),
                });
            }
        }
        for (id, cell) in ctx.netlist().cells() {
            if cell.kind().is_retention() && !owner.contains_key(&id.index()) {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.severity(),
                    message: format!(
                        "retention flop {} is on no scan chain: its state never \
                         circulates through the monitor",
                        ctx.cell_label(id)
                    ),
                    cell: Some(ctx.cell_label(id)),
                    net: None,
                    hint: "stitch the flop into a chain or demote it to a plain Dff".into(),
                    path: Vec::new(),
                });
            }
        }
        out.sort_by(|a, b| a.message.cmp(&b.message));
        out
    }
}

/// SG102: each chain is statically traceable — flop `i`'s scan pin is
/// combinationally fed (through any muxes/XORs overlays add) by flop
/// `i-1`'s output, the first flop by the chain's scan-in port or the
/// circulation feedback, and the chain's `so` is the last flop's output.
pub struct ChainConnectivity;

impl Rule for ChainConnectivity {
    fn id(&self) -> &'static str {
        "SG102"
    }
    fn title(&self) -> &'static str {
        "chain-connectivity"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn needs_design(&self) -> bool {
        true
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(view) = ctx.design() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (k, chain) in view.chains.chains.iter().enumerate() {
            if chain.cells.is_empty() {
                continue;
            }
            let last = *chain.cells.last().expect("non-empty");
            if ctx.netlist().cell(last).output() != chain.so {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.severity(),
                    message: format!(
                        "chain {k} scan-out {} is not the last flop's output",
                        ctx.net_label(chain.so)
                    ),
                    cell: Some(ctx.cell_label(last)),
                    net: Some(ctx.net_label(chain.so)),
                    hint: "chain metadata and netlist disagree; re-run scan insertion".into(),
                    path: Vec::new(),
                });
            }
            for (i, &c) in chain.cells.iter().enumerate() {
                let cell = ctx.netlist().cell(c);
                if !cell.kind().is_scan() {
                    continue; // SG101 reports the kind problem.
                }
                let si_pin = cell.inputs()[1];
                let cone = ctx.comb_cone(si_pin);
                let ok = if i == 0 {
                    // First flop: fed by the chain's si port, or (after
                    // monitor insertion) by the circulation feedback from
                    // the chain's own scan-out.
                    cone.ports.contains(&chain.si) || cone.seq_sources.contains(&last)
                } else {
                    cone.seq_sources.contains(&chain.cells[i - 1])
                };
                if !ok {
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: self.severity(),
                        message: format!(
                            "chain {k} breaks at position {i}: flop {} scan pin is not \
                             reachable from its upstream stitch",
                            ctx.cell_label(c)
                        ),
                        cell: Some(ctx.cell_label(c)),
                        net: Some(ctx.net_label(si_pin)),
                        hint: "restitch the chain: the scan pin must trace back to the \
                               previous flop (or the scan-in/feedback for position 0)"
                            .into(),
                        path: Vec::new(),
                    });
                    break; // One break per chain; downstream errors cascade.
                }
            }
        }
        out
    }
}

/// SG103: all chains have the same length `l`. Unbalanced chains make
/// the encode/decode latency `l x T` of the *longest* chain while the
/// monitor sequencer counts a single shared `l` — the synthesizer pads
/// precisely to avoid this.
pub struct ChainBalance;

impl Rule for ChainBalance {
    fn id(&self) -> &'static str {
        "SG103"
    }
    fn title(&self) -> &'static str {
        "chain-balance"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn needs_design(&self) -> bool {
        true
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(view) = ctx.design() else {
            return Vec::new();
        };
        let lens: Vec<usize> = view.chains.chains.iter().map(|c| c.len()).collect();
        let (min, max) = match (lens.iter().min(), lens.iter().max()) {
            (Some(&a), Some(&b)) => (a, b),
            _ => return Vec::new(),
        };
        if min == max {
            return Vec::new();
        }
        vec![Diagnostic {
            rule: self.id(),
            severity: self.severity(),
            message: format!("chain lengths are unbalanced (min {min}, max {max}): {lens:?}"),
            cell: None,
            net: None,
            hint: "pad shorter chains with dummy retention flops (Synthesizer does)".into(),
            path: Vec::new(),
        }]
    }
}

/// SG104: Fig. 5(b) test-mode concatenation — chain `j >= T` is fed from
/// chain `j-T`'s scan-out, the per-pin concatenated lengths match the
/// metadata, and their sum equals the total flop count.
pub struct TestModeConcatenation;

impl Rule for TestModeConcatenation {
    fn id(&self) -> &'static str {
        "SG104"
    }
    fn title(&self) -> &'static str {
        "testmode-concatenation"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn needs_design(&self) -> bool {
        true
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(view) = ctx.design() else {
            return Vec::new();
        };
        let Some(tm) = view.test_mode else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let w = view.chains.width();
        let t = tm.test_width;
        if t == 0 || w % t != 0 {
            return vec![Diagnostic {
                rule: self.id(),
                severity: self.severity(),
                message: format!("test width {t} does not divide the chain count {w}"),
                cell: None,
                net: None,
                hint: "choose T | W so chains concatenate into whole test chains".into(),
                path: Vec::new(),
            }];
        }
        // Structure: chain j's first scan pin must trace to chain j-T's
        // scan-out flop.
        for j in t..w {
            let first = view.chains.chains[j].cells[0];
            let feeder = *view.chains.chains[j - t]
                .cells
                .last()
                .expect("chains are non-empty");
            let cone = ctx.comb_cone(ctx.netlist().cell(first).inputs()[1]);
            if !cone.seq_sources.contains(&feeder) {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.severity(),
                    message: format!(
                        "test-mode concatenation broken: chain {j} is not fed from \
                         chain {}'s scan-out",
                        j - t
                    ),
                    cell: Some(ctx.cell_label(first)),
                    net: None,
                    hint: "the concat mux must select chain j-T's so in test mode".into(),
                    path: Vec::new(),
                });
            }
        }
        // Metadata: per-pin lengths are the sums of the concatenated
        // chains, and together they cover every flop exactly once.
        let expect: Vec<usize> = (0..t)
            .map(|p| (p..w).step_by(t).map(|j| view.chains.chains[j].len()).sum())
            .collect();
        if tm.test_chain_lens != expect {
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.severity(),
                message: format!(
                    "test chain length metadata {:?} does not match the chains {:?}",
                    tm.test_chain_lens, expect
                ),
                cell: None,
                net: None,
                hint: "regenerate the TestModeConfig after editing chains".into(),
                path: Vec::new(),
            });
        }
        let total: usize = expect.iter().sum();
        if total != view.chains.ff_count() {
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.severity(),
                message: format!(
                    "test chains cover {total} flops but the chains hold {}",
                    view.chains.ff_count()
                ),
                cell: None,
                net: None,
                hint: "every scanned flop must be behind exactly one test pin".into(),
                path: Vec::new(),
            });
        }
        out
    }
}
