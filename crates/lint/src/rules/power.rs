//! `SG2xx` — power-domain rules: isolation at the gated/always-on
//! boundary, monitor placement, and correction feedback coverage.

use crate::{Diagnostic, LintContext, Rule, Severity, XPropContext};
use std::collections::HashSet;

/// SG201: every always-on cell input that crosses from the gated domain
/// comes directly from a retention flop's output. Anything else —
/// combinational gates, plain flops, tie cells — floats when the gated
/// rail collapses, feeding X into the monitor.
pub struct DomainCrossingIsolation;

impl Rule for DomainCrossingIsolation {
    fn id(&self) -> &'static str {
        "SG201"
    }
    fn title(&self) -> &'static str {
        "domain-crossing-isolation"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn needs_design(&self) -> bool {
        true
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(view) = ctx.design() else {
            return Vec::new();
        };
        let wm = view.gated_watermark;
        let mut out = Vec::new();
        for (id, cell) in ctx.netlist().cells() {
            if id.index() < wm {
                continue; // gated consumers may read anything
            }
            for &inp in cell.inputs() {
                let Some(&d) = ctx.drivers(inp).first() else {
                    continue; // floating; SG001 reports it
                };
                if d.index() >= wm {
                    continue; // always-on to always-on
                }
                let kind = ctx.netlist().cell(d).kind();
                if !kind.is_retention() {
                    out.push(Diagnostic {
                        rule: self.id(),
                        severity: self.severity(),
                        message: format!(
                            "always-on cell {} reads gated net {} driven by a \
                             non-retention {kind:?} cell {}",
                            ctx.cell_label(id),
                            ctx.net_label(inp),
                            ctx.cell_label(d),
                        ),
                        cell: Some(ctx.cell_label(id)),
                        net: Some(ctx.net_label(inp)),
                        hint: "route gated->always-on crossings through retention flop \
                               outputs (or add isolation cells)"
                            .into(),
                        path: Vec::new(),
                    });
                }
            }
        }
        out
    }
}

/// SG202: the monitor hardware — parity trees, store rows, syndrome
/// decoder, correction logic, sequencers — lives entirely in the
/// always-on domain; a single gated monitor cell loses the very state
/// the methodology is supposed to retain.
pub struct MonitorInAlwaysOnDomain;

impl Rule for MonitorInAlwaysOnDomain {
    fn id(&self) -> &'static str {
        "SG202"
    }
    fn title(&self) -> &'static str {
        "monitor-always-on"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn needs_design(&self) -> bool {
        true
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(view) = ctx.design() else {
            return Vec::new();
        };
        let wm = view.gated_watermark;
        let mut out = Vec::new();
        for &c in view.monitor_cells {
            if c.index() < wm {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.severity(),
                    message: format!(
                        "monitor cell {} sits in the power-gated domain (index {} < \
                         watermark {wm})",
                        ctx.cell_label(c),
                        c.index(),
                    ),
                    cell: Some(ctx.cell_label(c)),
                    net: None,
                    hint: "generate monitor hardware only after the gated-domain \
                           watermark is recorded"
                        .into(),
                    path: Vec::new(),
                });
            }
        }
        out
    }
}

/// SG204: no X from the collapsed power domain can reach always-on
/// state while monitoring is idle. A static 3-valued reachability pass
/// ([`XPropContext`]) assigns X to every gated-domain output, pins
/// `mon_en`/`mon_clear` low, propagates through the always-on cone with
/// exact ternary gate semantics, and then proves every always-on
/// sequential cell — parity/signature store bits and sequencer state
/// alike — can only *capture* defined values. A violation carries the
/// cell-by-cell X path from the gated source to the corrupted flop.
pub struct StoreXPropagation;

impl Rule for StoreXPropagation {
    fn id(&self) -> &'static str {
        "SG204"
    }
    fn title(&self) -> &'static str {
        "store-x-propagation"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn needs_design(&self) -> bool {
        true
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(view) = ctx.design() else {
            return Vec::new();
        };
        let wm = view.gated_watermark;
        let xp = XPropContext::build(ctx, wm);
        let mut out = Vec::new();
        for (id, cell) in ctx.netlist().cells() {
            if id.index() < wm || !cell.kind().is_sequential() {
                continue;
            }
            if !xp.capture_set(ctx, id).may_be_x() {
                continue;
            }
            // Name the input pin that can actually carry the X into the
            // capture, and trace it back to its gated source.
            let (pin_net, mut path) = match xp.x_input(ctx, id) {
                Some(pin) => {
                    let net = cell.inputs()[pin];
                    (Some(net), xp.witness(ctx, net))
                }
                None => (None, Vec::new()),
            };
            path.push(ctx.cell_label(id));
            out.push(Diagnostic {
                rule: self.id(),
                severity: self.severity(),
                message: format!(
                    "always-on flop {} can capture X from the collapsed power \
                     domain while mon_en is low",
                    ctx.cell_label(id),
                ),
                cell: Some(ctx.cell_label(id)),
                net: pin_net.map(|n| ctx.net_label(n)),
                hint: "mask the gated-domain X before always-on state: gate it \
                       with a pinned-low enable or route it through the scan \
                       mux (se held low in sleep)"
                    .into(),
                path,
            });
        }
        out
    }
}

/// SG203: the correction feedback statically reaches every chain's
/// scan-in — flop 0's scan pin traces back through monitor logic. A
/// chain outside the feedback circulates uncorrected (for detect-only
/// codes the buffer tap still counts: the stream must pass the monitor).
pub struct CorrectionFeedbackReachesChains;

impl Rule for CorrectionFeedbackReachesChains {
    fn id(&self) -> &'static str {
        "SG203"
    }
    fn title(&self) -> &'static str {
        "correction-feedback-coverage"
    }
    fn severity(&self) -> Severity {
        Severity::Error
    }
    fn needs_design(&self) -> bool {
        true
    }
    fn check(&self, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
        let Some(view) = ctx.design() else {
            return Vec::new();
        };
        if view.monitor_cells.is_empty() {
            return Vec::new(); // plain scanned design: nothing to cover
        }
        let monitor: HashSet<usize> = view.monitor_cells.iter().map(|c| c.index()).collect();
        let mut out = Vec::new();
        for (k, chain) in view.chains.chains.iter().enumerate() {
            let Some(&first) = chain.cells.first() else {
                continue;
            };
            let cell = ctx.netlist().cell(first);
            if !cell.kind().is_scan() {
                continue; // SG101 reports it
            }
            let cone = ctx.comb_cone(cell.inputs()[1]);
            let touched = cone
                .comb_cells
                .iter()
                .chain(cone.seq_sources.iter())
                .any(|c| monitor.contains(&c.index()));
            if !touched {
                out.push(Diagnostic {
                    rule: self.id(),
                    severity: self.severity(),
                    message: format!(
                        "chain {k}'s scan-in is not fed through the monitor: upsets on \
                         it are never observed or corrected"
                    ),
                    cell: Some(ctx.cell_label(first)),
                    net: Some(ctx.net_label(cell.inputs()[1])),
                    hint: "wire the monitor feedback (corrected or buffered scan-out) \
                           into the chain's first scan pin"
                        .into(),
                    path: Vec::new(),
                });
            }
        }
        out
    }
}
