//! Diagnostics: severities, individual findings and the lint report.

use std::fmt;
use std::str::FromStr;

/// How serious a rule violation is.
///
/// The ordering is `Info < Warn < Error`, so `severity >= deny` expresses
/// a deny threshold the way `scanguard lint --deny warn` uses it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Severity {
    /// Advisory; expected on some correct designs (e.g. scan-in ports
    /// made redundant by the monitor feedback).
    Info,
    /// Suspicious structure that simulates fine but usually indicates a
    /// generator bug (dead logic, unbalanced chains).
    Warn,
    /// A violated invariant of the paper's methodology or of netlist
    /// well-formedness.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

impl FromStr for Severity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "info" => Ok(Severity::Info),
            "warn" | "warning" => Ok(Severity::Warn),
            "error" => Ok(Severity::Error),
            other => Err(format!(
                "unknown severity {other:?} (valid: info, warn, error)"
            )),
        }
    }
}

/// One finding: a rule, where it fired, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Diagnostic {
    /// Stable rule ID (`SG001`…).
    pub rule: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Human-readable statement of what is wrong.
    pub message: String,
    /// The cell involved, as a `c<idx> (<name>)` label, when one exists.
    pub cell: Option<String>,
    /// The net involved, as an `n<idx> (<name>)` label, when one exists.
    pub net: Option<String>,
    /// A one-line suggestion for repairing the violation.
    pub hint: String,
    /// A structural witness for path-based findings: cell labels ordered
    /// source → sink (e.g. the X-propagation trace of SG204). Empty for
    /// point findings.
    pub path: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:5} {}", self.rule, self.severity, self.message)?;
        if let Some(cell) = &self.cell {
            write!(f, " [cell {cell}]")?;
        }
        if let Some(net) = &self.net {
            write!(f, " [net {net}]")?;
        }
        if !self.path.is_empty() {
            write!(f, " [path {}]", self.path.join(" -> "))?;
        }
        write!(f, " — hint: {}", self.hint)
    }
}

/// The result of running a rule set over one design.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct LintReport {
    /// Design name (from the netlist).
    pub design: String,
    /// Number of rules that actually executed (design-level rules are
    /// skipped when no design metadata is provided).
    pub rules_run: usize,
    /// Cells in the linted netlist.
    pub cells: usize,
    /// Nets in the linted netlist.
    pub nets: usize,
    /// Every finding, in rule-registry order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of findings at exactly `sev`.
    #[must_use]
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Number of Error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// `true` when no finding is at or above the `deny` threshold.
    #[must_use]
    pub fn is_clean_at(&self, deny: Severity) -> bool {
        self.diagnostics.iter().all(|d| d.severity < deny)
    }

    /// The most severe finding, or `None` for a fully clean report.
    #[must_use]
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Serializes the report as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns the encoder's message on failure (practically
    /// unreachable for this tree shape).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    /// One-line human summary (`N errors, M warnings, K infos`).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} rules on {} ({} cells): {} errors, {} warnings, {} infos",
            self.rules_run,
            self.design,
            self.cells,
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        )
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(f, "{}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_parses() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!("warn".parse::<Severity>().unwrap(), Severity::Warn);
        assert_eq!("error".parse::<Severity>().unwrap(), Severity::Error);
        assert!("fatal".parse::<Severity>().is_err());
    }

    #[test]
    fn deny_threshold_semantics() {
        let report = LintReport {
            design: "t".into(),
            rules_run: 1,
            cells: 0,
            nets: 0,
            diagnostics: vec![Diagnostic {
                rule: "SG005",
                severity: Severity::Info,
                message: "m".into(),
                cell: None,
                net: None,
                hint: "h".into(),
                path: Vec::new(),
            }],
        };
        assert!(report.is_clean_at(Severity::Warn));
        assert!(!report.is_clean_at(Severity::Info));
        assert_eq!(report.worst(), Some(Severity::Info));
        assert!(report.to_json().unwrap().contains("SG005"));
    }
}
