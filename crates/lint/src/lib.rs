//! # scanguard-lint
//!
//! Rule-based static design-rule checker for the `scanguard`
//! reproduction of *"Scan Based Methodology for Reliable State
//! Retention Power Gating Designs"* (Yang et al., DATE 2010).
//!
//! The paper's guarantees are *structural*: every retention flop must
//! circulate through a scan chain into the always-on monitor, the
//! parity store and correction block must survive power gating,
//! test mode must re-concatenate the `W` chains (Fig. 5(b)), and the
//! monitor must have zero impact on the functional critical path. This
//! crate checks all of that statically, the way a pre-scan DRC pass
//! would, over:
//!
//! * a bare [`Netlist`](scanguard_netlist::Netlist) — structural rules
//!   (`SG0xx`: floating/multi-driven nets, dead cells, combinational
//!   loops);
//! * a netlist plus a [`DesignView`] (chains, monitor cells, domain
//!   watermark, timing baseline) — scan DRC (`SG1xx`), power-domain
//!   rules (`SG2xx`) and paper-claim rules (`SG3xx`).
//!
//! Analyses are recomputed from the raw cell array (drivers, fanout,
//! levelization), so the linter works on *broken* netlists that
//! `revalidate()` would reject — the inputs a linter exists for.
//!
//! # Examples
//!
//! ```
//! use scanguard_lint::{lint_netlist, RuleSet, Severity};
//! use scanguard_netlist::{CellLibrary, NetlistBuilder};
//!
//! let mut b = NetlistBuilder::new("t");
//! let a = b.input("a");
//! let x = b.not(a);
//! let _dead = b.not(x); // never consumed
//! b.output("y", x);
//! let nl = b.finish().unwrap();
//!
//! let report = lint_netlist(&nl, &CellLibrary::st120nm(), &RuleSet::all(), None);
//! assert_eq!(report.error_count(), 0);
//! assert_eq!(report.count(Severity::Warn), 1); // SG003 dead cell
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod context;
mod diag;
mod rules;
pub mod upset;
mod xprop;

pub use context::{Cone, DesignView, LintContext, MonitorKind, MonitorView};
pub use diag::{Diagnostic, LintReport, Severity};
pub use rules::{all_rules, rule_ids, Rule, RuleSet, UnknownRule};
pub use upset::{UpsetError, UpsetOptions, UpsetReport};
pub use xprop::XPropContext;

use scanguard_netlist::{CellLibrary, Netlist};
use scanguard_obs::{arg, Lane, Recorder};

/// Runs `rules` over a prepared context.
///
/// Design-level rules are skipped (not failed) when the context has no
/// [`DesignView`]; `report.rules_run` counts only the rules that
/// executed. With a [`Recorder`], the run emits a `lint` span, one
/// nested span per executed rule (with a
/// `lint.rule.<ID>.violations` counter each), the `lint.rules_run` /
/// `lint.violations` totals, and — when a deep rule ran the upset
/// engine — the `lint.upset.lanes` / `lint.upset.cycles` /
/// `lint.upset.pruned.<reason>` fault-space statistics.
#[must_use]
pub fn run(ctx: &LintContext<'_>, rules: &RuleSet, rec: Option<&Recorder>) -> LintReport {
    if let Some(rec) = rec {
        rec.begin(Lane::Main, "lint", 0);
    }
    let mut diagnostics = Vec::new();
    let mut rules_run = 0usize;
    for rule in rules.rules() {
        if rule.needs_design() && ctx.design().is_none() {
            continue;
        }
        rules_run += 1;
        if let Some(rec) = rec {
            rec.begin(Lane::Main, rule.id(), 0);
        }
        let found = rule.check(ctx);
        if let Some(rec) = rec {
            rec.counter(&format!("lint.rule.{}.violations", rule.id()))
                .add(found.len() as u64);
            rec.end(
                Lane::Main,
                rule.id(),
                0,
                vec![arg("violations", found.len() as u64)],
            );
        }
        diagnostics.extend(found);
    }
    if let Some(rec) = rec {
        rec.counter("lint.rules_run").add(rules_run as u64);
        rec.counter("lint.violations").add(diagnostics.len() as u64);
        if let Some(Ok(rep)) = ctx.upset_report_if_run() {
            rec.counter("lint.upset.lanes")
                .add((rep.singles_swept + rep.bursts_swept) as u64);
            rec.counter("lint.upset.cycles").add(rep.cycles as u64);
            for p in &rep.pruned {
                rec.counter(&format!("lint.upset.pruned.{}", p.reason))
                    .add(p.skipped as u64);
            }
        }
        rec.end(
            Lane::Main,
            "lint",
            0,
            vec![
                arg("rules", rules_run as u64),
                arg("violations", diagnostics.len() as u64),
            ],
        );
    }
    LintReport {
        design: ctx.netlist().name().to_owned(),
        rules_run,
        cells: ctx.netlist().cell_count(),
        nets: ctx.netlist().net_count(),
        diagnostics,
    }
}

/// Lints a bare netlist: structural rules only.
#[must_use]
pub fn lint_netlist(
    netlist: &Netlist,
    library: &CellLibrary,
    rules: &RuleSet,
    rec: Option<&Recorder>,
) -> LintReport {
    let ctx = LintContext::new(netlist, library);
    run(&ctx, rules, rec)
}

/// Lints a netlist with full design metadata: every rule family runs.
#[must_use]
pub fn lint_design(
    netlist: &Netlist,
    library: &CellLibrary,
    view: DesignView<'_>,
    rules: &RuleSet,
    rec: Option<&Recorder>,
) -> LintReport {
    let ctx = LintContext::with_design(netlist, library, view);
    run(&ctx, rules, rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scanguard_netlist::NetlistBuilder;
    use scanguard_obs::RecorderConfig;

    #[test]
    fn obs_counters_record_rules_and_violations() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        let x = b.not(a);
        let _dead = b.not(x);
        b.output("y", x);
        let nl = b.finish().unwrap();
        let rec = Recorder::new(RecorderConfig {
            trace: true,
            metrics: true,
            ..RecorderConfig::default()
        });
        let report = lint_netlist(&nl, &CellLibrary::st120nm(), &RuleSet::all(), Some(&rec));
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counters["lint.rules_run"], report.rules_run as u64);
        assert_eq!(
            snap.counters["lint.violations"],
            report.diagnostics.len() as u64
        );
        assert!(report.rules_run >= 5, "structural family runs");
    }

    #[test]
    fn design_rules_are_skipped_without_a_view() {
        let mut b = NetlistBuilder::new("t");
        let a = b.input("a");
        b.output("y", a);
        let nl = b.finish().unwrap();
        let all = RuleSet::all();
        let report = lint_netlist(&nl, &CellLibrary::st120nm(), &all, None);
        let design_rules = all.rules().iter().filter(|r| r.needs_design()).count();
        assert_eq!(report.rules_run, all.len() - design_rules);
    }
}
